//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of proptest's API that the workspace's property tests
//! actually use: the `proptest!` macro, `prop_assert*` macros, range/tuple/
//! `any`/`prop::collection::vec` strategies and `ProptestConfig`.
//!
//! Semantics: each test runs `ProptestConfig::cases` times with inputs drawn
//! from a deterministic per-test RNG (seeded from the test's module path and
//! case index), so failures are reproducible run-to-run. There is no
//! shrinking — the failing inputs are printed instead.

use std::ops::{Range, RangeInclusive};

/// Test-runner types (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A test-case failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Alias of [`TestCaseError::fail`] kept for API compatibility.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of one property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Per-test configuration (mirrors `proptest::prelude::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps simulation-heavy suites usable
        // in constrained CI while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 — the same generator family the simulator uses; good enough
/// for input generation and fully deterministic.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (n > 0), via 128-bit multiply.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Derive the RNG for one test case from the test's identity and case index.
pub fn test_rng(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the path, mixed with the case index.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h ^ ((case as u64) << 32 | 0x5EED))
}

/// A generator of test inputs (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A0) (A0, A1) (A0, A1, A2) (A0, A1, A2, A3) (A0, A1, A2, A3, A4)
    (A0, A1, A2, A3, A4, A5)
}

/// Types with a canonical whole-domain strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only — the common expectation in property tests.
        f64::from_bits(rng.next_u64() % (0x7FF0u64 << 48))
    }
}

/// Whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy namespace (mirrors the `proptest::prop` re-export module).
pub mod prop {
    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`: `None` one time in four,
        /// `Some` drawn from the inner strategy otherwise (the real
        /// crate's default weighting).
        pub struct OptionStrategy<S>(S);

        /// `Option` strategy over `inner`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `Vec` strategy: elements from `element`, length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Fail the current case unless `cond` holds (early-returns
/// `Err(TestCaseError)` like the real crate, so it works in helper
/// functions returning [`test_runner::TestCaseResult`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Define property tests: each `fn name(arg in strategy, …) { body }` becomes
/// a `#[test]` that runs the body over `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg),+
                );
                let __outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property failed at case {}/{}: {}\ninputs:\n{}",
                        __case + 1,
                        __cfg.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_rng("x", 0);
        let mut b = crate::test_rng("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
            let n = (3usize..=3).generate(&mut rng);
            assert_eq!(n, 3);
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::test_rng("vec", 0);
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(a in 0u32..100, pair in (0.0f64..1.0, any::<bool>())) {
            prop_assert!(a < 100);
            let (f, _b) = pair;
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    fn helper(x: u64) -> TestCaseResult {
        prop_assert_ne!(x, u64::MAX);
        Ok(())
    }

    proptest! {
        #[test]
        fn question_mark_works(x in 0u64..10) {
            helper(x)?;
            prop_assert_eq!(x.min(9), x);
        }
    }
}
