//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the subset of criterion's API the workspace's benches use —
//! `Criterion`, `bench_function`, `benchmark_group`/`sample_size`/`finish`,
//! `Bencher::iter`/`iter_batched`, `BatchSize` and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! harness.
//!
//! Each benchmark is measured over `sample_size` samples; a sample times a
//! batch of iterations sized so one batch takes ≳5 ms (one iteration for
//! slow benches). The mean ns/iteration is printed in a stable,
//! grep-friendly format:
//!
//! ```text
//! bench: <name>  mean <ns> ns/iter  (<samples> samples x <iters> iters)
//! ```
//!
//! When the `BENCH_JSON` environment variable names a file, one JSON object
//! per benchmark is appended to it (`scripts/bench_baseline.sh` assembles
//! those records into the `BENCH_<date>.json` perf-trajectory file).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` inputs are grouped. Only a hint in the real crate;
/// ignored here beyond API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// (mean ns/iter, samples, iters per sample) of the last run.
    result: Option<(f64, usize, u64)>,
}

/// Target wall time for one measured sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(5);

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: one untimed warm-up iteration sizes the batches.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let iters = if once >= SAMPLE_BUDGET {
            1
        } else {
            (SAMPLE_BUDGET.as_nanos() as u64 / once.as_nanos().max(1) as u64).clamp(1, 10_000_000)
        };
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += t.elapsed();
        }
        let mean = total.as_nanos() as f64 / (self.samples as u64 * iters) as f64;
        self.result = Some((mean, self.samples, iters));
    }

    /// Measure `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let t0 = Instant::now();
        black_box(routine(setup()));
        let once = t0.elapsed(); // Includes setup: a conservative calibration.
        let iters = if once >= SAMPLE_BUDGET {
            1
        } else {
            (SAMPLE_BUDGET.as_nanos() as u64 / once.as_nanos().max(1) as u64).clamp(1, 1_000_000)
        };
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            total += t.elapsed();
        }
        let mean = total.as_nanos() as f64 / (self.samples as u64 * iters) as f64;
        self.result = Some((mean, self.samples, iters));
    }
}

fn report(name: &str, mean_ns: f64, samples: usize, iters: u64) {
    println!("bench: {name}  mean {mean_ns:.1} ns/iter  ({samples} samples x {iters} iters)");
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let line = format!(
                "{{\"kind\":\"criterion\",\"name\":\"{name}\",\"mean_ns\":{mean_ns:.1},\
                 \"samples\":{samples},\"iters\":{iters}}}\n"
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
        }
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let (mean, samples, iters) = b.result.unwrap_or((f64::NAN, 0, 0));
        report(name, mean, samples, iters);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group (reported as `group/name`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let (mean, samples, iters) = b.result.unwrap_or((f64::NAN, 0, 0));
        report(&format!("{}/{}", self.prefix, name), mean, samples, iters);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_a_mean() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
