//! `wmn` — the workspace façade crate.
//!
//! Re-exports the full CNLR reproduction stack under one roof so that
//! downstream users (and this repository's own `examples/` and `tests/`)
//! depend on a single crate:
//!
//! * [`cnlr`] — the paper's contribution and the scenario API,
//! * the substrate crates under their short names
//!   ([`sim`], [`topology`], [`radio`], [`mac`], [`mobility`], [`routing`],
//!   [`traffic`], [`metrics`], [`telemetry`]).
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the system
//! inventory.

pub use cnlr;
pub use cnlr::{
    BuildError, ChurnModel, CnlrConfig, CnlrPolicy, DropCounters, Event, FaultCounters, FaultKind,
    FaultPlan, LinkFlapModel, Medium, MediumEffect, MediumStats, Network, Node, NoiseStormModel,
    ParMesh, ParMeshOutcome, ParMeshReport, RunResults, ScenarioBuilder, Scheme, Simulation,
    TimedFault, VapCnlr, VapConfig,
};

pub use cnlr::faults;
pub use wmn_mac as mac;
pub use wmn_metrics as metrics;
pub use wmn_mobility as mobility;
pub use wmn_radio as radio;
pub use wmn_routing as routing;
pub use wmn_sim as sim;
pub use wmn_telemetry as telemetry;
pub use wmn_topology as topology;
pub use wmn_traffic as traffic;

/// Evaluation presets (the reconstructed Table 1 and standard scenarios).
pub mod presets {
    pub use cnlr::presets::*;
}
