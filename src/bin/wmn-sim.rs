//! `wmn-sim` — command-line scenario runner.
//!
//! Runs a single mesh scenario and prints the full result record. Example:
//!
//! ```sh
//! wmn-sim --grid 8 --pitch 180 --scheme cnlr --flows 30 --pps 8 \
//!         --duration 60 --warmup 10 --seed 1
//! ```
//!
//! Arguments are hand-parsed (no CLI dependency); `--help` lists them.

use wmn::mobility::MobilityConfig;
use wmn::sim::{SimDuration, SimTime};
use wmn::telemetry::{ConsoleSink, SharedSink, TelemetryConfig};
use wmn::{CnlrConfig, FaultPlan, ScenarioBuilder, Scheme};

/// Parsed CLI options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    pub grid: usize,
    pub pitch: f64,
    /// Large-scale preset: overrides `--grid` with ~N nodes at standard
    /// density (`grid` placement or `random`).
    pub nodes: Option<usize>,
    pub random_placement: bool,
    pub scheme: Scheme,
    pub flows: usize,
    pub pps: f64,
    pub payload: usize,
    pub duration_s: f64,
    pub warmup_s: f64,
    pub seed: u64,
    pub clients: usize,
    pub client_speed: f64,
    pub csv: bool,
    pub trace: bool,
    /// Run the shard-parallel ParMesh scale model instead of the classic
    /// full-MAC stack (requires `--nodes`).
    pub parmesh: bool,
    /// Worker threads for the sharded engine (ParMesh only).
    pub threads: usize,
    /// Work stealing between epoch barriers (ParMesh only; `None` keeps
    /// the engine default, which is on). Never changes results.
    pub steal: Option<bool>,
    /// Fold telemetry into O(1)-memory per-region fingerprints instead of
    /// a trace (ParMesh only; the scale alternative to --trace-out).
    pub trace_hash: bool,
    /// Region-count override for the sharded engine (ParMesh only).
    pub regions: Option<usize>,
    /// Write the merged telemetry trace as JSONL to this path (ParMesh only).
    pub trace_out: Option<String>,
    /// Write the engine execution profile as JSON to this path (ParMesh only).
    pub profile_out: Option<String>,
    /// Scripted crashes: `(node, down_s, Some(up_s))` reboots, `None` stays down.
    pub fails: Vec<(u32, f64, Option<f64>)>,
    /// Stochastic churn `(mtbf_s, mttr_s)` applied to every node.
    pub churn: Option<(f64, f64)>,
    /// Write epoch-barrier checkpoints to this directory (ParMesh only).
    pub checkpoint_dir: Option<String>,
    /// Simulated seconds between checkpoints (requires `--checkpoint-dir`).
    pub checkpoint_every_s: Option<f64>,
    /// Resume from the newest checkpoint in `--checkpoint-dir`.
    pub resume: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            grid: 8,
            pitch: 180.0,
            nodes: None,
            random_placement: false,
            scheme: Scheme::Cnlr(CnlrConfig::default()),
            flows: 20,
            pps: 4.0,
            payload: 512,
            duration_s: 60.0,
            warmup_s: 10.0,
            seed: 1,
            clients: 0,
            client_speed: 10.0,
            csv: false,
            trace: false,
            parmesh: false,
            threads: 1,
            steal: None,
            trace_hash: false,
            regions: None,
            trace_out: None,
            profile_out: None,
            fails: Vec::new(),
            churn: None,
            checkpoint_dir: None,
            checkpoint_every_s: None,
            resume: false,
        }
    }
}

const HELP: &str = "\
wmn-sim — run one wireless-mesh scenario

OPTIONS (defaults in brackets):
  --grid N          N×N router grid [8]
  --pitch M         grid pitch in metres [180]
  --nodes N         large-scale preset: ~N routers at standard density
                    (overrides --grid/--pitch; up to 10000 for the classic
                    stack, 1000000 with --parmesh)
  --random          with --nodes: uniform-random placement instead of grid
  --scheme S        flooding | gossip:P[:K] | counter:C[:RAD_MS] |
                    distance:DBM | cnlr | vap [cnlr]
  --flows N         random CBR flows [20]
  --pps R           packets per second per flow [4]
  --payload B       payload bytes [512]
  --duration S      simulated seconds [60]
  --warmup S        statistics warm-up seconds [10]
  --seed N          master seed [1]
  --clients N       mobile RWP clients [0]
  --client-speed V  client max speed m/s [10]
  --fail N@T[:U]    crash node N at T s; reboot at U s if given (repeatable)
  --churn MTBF,MTTR every node crashes/reboots stochastically (seconds)
  --csv             emit one CSV line instead of the report
  --trace           print every telemetry event to stderr as it happens
  --parmesh         shard-parallel scale model (requires --nodes; results
                    are identical for any --threads value)
  --threads N       worker threads for the sharded engine [1]
  --steal on|off    work stealing between epoch barriers (with --parmesh)
                    [on]; rebalances regions across workers from measured
                    busy times — results are bit-identical either way
  --regions N       region-count override for the sharded engine; the
                    auto-tuner warns and grants the nearest geometry-legal
                    grid when a request cannot be honoured
  --trace-out PATH  write the merged JSONL trace (with --parmesh)
  --trace-hash      fold telemetry into an O(1)-memory fingerprint and
                    print it (with --parmesh; the million-node alternative
                    to --trace-out, incompatible with --checkpoint-dir)
  --profile-out PATH  write the engine execution profile as JSON (with
                    --parmesh; inspect with `wmn-trace profile`)
  --checkpoint-dir DIR  write epoch-barrier checkpoints (with --parmesh;
                    inspect with `wmn-trace ckpt`); Ctrl-C checkpoints and
                    exits with code 130
  --checkpoint-every S  simulated seconds between checkpoints [1]
  --resume          continue from the newest checkpoint in --checkpoint-dir;
                    the finished run is byte-identical to an uninterrupted one
  --help            this text

Set WMN_TELEMETRY=1 (and optionally WMN_TRACE_PATH, WMN_PROBE_MS) to
record a JSONL trace instead; inspect it with wmn-trace.
Set WMN_CRASH_AT=epoch:region[,…] or WMN_CRASH_RATE=p:seed[:max] to inject
harness-level worker crashes (supervisor exercise; ParMesh only).
";

/// Parse a scheme spec like `gossip:0.65` or `counter:3` — one grammar,
/// shared with the daemon and the figure binaries via [`Scheme::parse`].
pub fn parse_scheme(s: &str) -> Result<Scheme, String> {
    Scheme::parse(s)
}

/// Parse a `--fail` spec: `N@T` (permanent) or `N@T:U` (reboot at `U`).
pub fn parse_fail(s: &str) -> Result<(u32, f64, Option<f64>), String> {
    let (node, times) = s.split_once('@').ok_or("--fail needs N@T[:U]")?;
    let node: u32 = node.parse().map_err(|e| format!("bad --fail node: {e}"))?;
    let (down, up) = match times.split_once(':') {
        Some((d, u)) => {
            let u: f64 = u.parse().map_err(|e| format!("bad --fail up time: {e}"))?;
            (d, Some(u))
        }
        None => (times, None),
    };
    let down: f64 = down
        .parse()
        .map_err(|e| format!("bad --fail down time: {e}"))?;
    if let Some(u) = up {
        if u <= down {
            return Err("--fail reboot time must be after the crash".into());
        }
    }
    Ok((node, down, up))
}

/// Parse a `--churn` spec: `MTBF,MTTR` in seconds.
pub fn parse_churn(s: &str) -> Result<(f64, f64), String> {
    let (mtbf, mttr) = s.split_once(',').ok_or("--churn needs MTBF,MTTR")?;
    let mtbf: f64 = mtbf.parse().map_err(|e| format!("bad --churn mtbf: {e}"))?;
    let mttr: f64 = mttr.parse().map_err(|e| format!("bad --churn mttr: {e}"))?;
    if mtbf <= 0.0 || mttr <= 0.0 {
        return Err("--churn times must be positive".into());
    }
    Ok((mtbf, mttr))
}

/// What an argument vector parses to: a runnable scenario, or an explicit
/// help request (which exits 0 — asking for usage is not an error).
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    Run(Box<Options>),
    Help,
}

/// Parse an argument vector (without the program name). Unknown flags and
/// missing values are errors (exit 2 in `main`), never ignored.
pub fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--grid" => o.grid = val("--grid")?.parse().map_err(|e| format!("--grid: {e}"))?,
            "--pitch" => {
                o.pitch = val("--pitch")?
                    .parse()
                    .map_err(|e| format!("--pitch: {e}"))?
            }
            "--nodes" => {
                o.nodes = Some(
                    val("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?,
                )
            }
            "--random" => o.random_placement = true,
            "--scheme" => o.scheme = parse_scheme(val("--scheme")?)?,
            "--flows" => {
                o.flows = val("--flows")?
                    .parse()
                    .map_err(|e| format!("--flows: {e}"))?
            }
            "--pps" => o.pps = val("--pps")?.parse().map_err(|e| format!("--pps: {e}"))?,
            "--payload" => {
                o.payload = val("--payload")?
                    .parse()
                    .map_err(|e| format!("--payload: {e}"))?
            }
            "--duration" => {
                o.duration_s = val("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--warmup" => {
                o.warmup_s = val("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?
            }
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--clients" => {
                o.clients = val("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--client-speed" => {
                o.client_speed = val("--client-speed")?
                    .parse()
                    .map_err(|e| format!("--client-speed: {e}"))?
            }
            "--fail" => o.fails.push(parse_fail(val("--fail")?)?),
            "--churn" => o.churn = Some(parse_churn(val("--churn")?)?),
            "--csv" => o.csv = true,
            "--trace" => o.trace = true,
            "--parmesh" => o.parmesh = true,
            "--threads" => {
                o.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--steal" => {
                o.steal = Some(match val("--steal")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--steal takes on|off, got '{other}'")),
                })
            }
            "--trace-hash" => o.trace_hash = true,
            "--regions" => {
                o.regions = Some(
                    val("--regions")?
                        .parse()
                        .map_err(|e| format!("--regions: {e}"))?,
                )
            }
            "--trace-out" => o.trace_out = Some(val("--trace-out")?.clone()),
            "--profile-out" => o.profile_out = Some(val("--profile-out")?.clone()),
            "--checkpoint-dir" => o.checkpoint_dir = Some(val("--checkpoint-dir")?.clone()),
            "--checkpoint-every" => {
                o.checkpoint_every_s = Some(
                    val("--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every: {e}"))?,
                )
            }
            "--resume" => o.resume = true,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if o.grid < 2 {
        return Err("--grid must be ≥ 2".into());
    }
    if let Some(n) = o.nodes {
        if n < 4 {
            return Err("--nodes must be ≥ 4".into());
        }
        let cap = if o.parmesh { 1_000_000 } else { 10_000 };
        if n > cap {
            return Err(format!("--nodes is supported up to {cap}"));
        }
    }
    if o.parmesh && o.nodes.is_none() {
        return Err("--parmesh requires --nodes".into());
    }
    if o.threads < 1 {
        return Err("--threads must be ≥ 1".into());
    }
    if !o.parmesh
        && (o.threads > 1
            || o.steal.is_some()
            || o.trace_hash
            || o.regions.is_some()
            || o.trace_out.is_some()
            || o.profile_out.is_some()
            || o.checkpoint_dir.is_some()
            || o.checkpoint_every_s.is_some()
            || o.resume)
    {
        return Err(
            "--threads/--steal/--trace-hash/--regions/--trace-out/--profile-out/\
             --checkpoint-dir/--checkpoint-every/--resume apply only with --parmesh"
                .into(),
        );
    }
    if (o.checkpoint_every_s.is_some() || o.resume) && o.checkpoint_dir.is_none() {
        return Err("--checkpoint-every/--resume need --checkpoint-dir".into());
    }
    if o.trace_hash && o.checkpoint_dir.is_some() {
        return Err(
            "--trace-hash folds events away as they happen; checkpoints need \
             the buffered trace, so it cannot combine with --checkpoint-dir"
                .into(),
        );
    }
    if o.checkpoint_every_s.is_some_and(|s| s <= 0.0) {
        return Err("--checkpoint-every must be positive".into());
    }
    if o.random_placement && o.nodes.is_none() {
        return Err("--random requires --nodes".into());
    }
    if o.warmup_s >= o.duration_s {
        return Err("--warmup must be below --duration".into());
    }
    Ok(Parsed::Run(Box::new(o)))
}

/// Exit code for an interrupted (SIGINT, checkpointed) run, matching the
/// shell convention for `128 + SIGINT`.
const EXIT_INTERRUPTED: i32 = 130;

/// SIGINT → cooperative interrupt flag, installed without a libc
/// dependency: `signal(2)` is in every libc the workspace links anyway.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe work here: one relaxed load + one store.
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Install the handler; every SIGINT afterwards sets the returned flag.
    pub fn install() -> Arc<AtomicBool> {
        let flag = FLAG
            .get_or_init(|| Arc::new(AtomicBool::new(false)))
            .clone();
        const SIGINT: i32 = 2;
        unsafe {
            signal(
                SIGINT,
                on_sigint as extern "C" fn(i32) as *const () as usize,
            );
        }
        flag
    }
}

/// Extract the `"lineage": [...]` entries from a previously written run
/// manifest, so a resumed run extends the chain rather than restarting it.
fn read_lineage(path: &std::path::Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(line) = text
        .lines()
        .find(|l| l.trim_start().starts_with("\"lineage\""))
    else {
        return Vec::new();
    };
    let Some(open) = line.find('[') else {
        return Vec::new();
    };
    let Some(close) = line.rfind(']') else {
        return Vec::new();
    };
    line[open + 1..close]
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Run the shard-parallel ParMesh scale model and print its report.
fn run_parmesh(opts: &Options) {
    let Some(n) = opts.nodes else {
        eprintln!("--parmesh requires --nodes");
        std::process::exit(2);
    };
    let mut pm = wmn::ParMesh::new(n)
        .seed(opts.seed)
        .flows(opts.flows)
        .duration(SimDuration::from_secs_f64(opts.duration_s))
        .threads(opts.threads)
        .steal(opts.steal.unwrap_or(true))
        .telemetry(opts.trace_out.is_some())
        .trace_hash(opts.trace_hash)
        .profile(opts.profile_out.is_some())
        .crash_plan(wmn::sim::shard::CrashPlan::from_env());
    if opts.pps > 0.0 {
        pm = pm.interval(SimDuration::from_secs_f64(1.0 / opts.pps));
    }
    if let Some(r) = opts.regions {
        pm = pm.regions(r);
    }
    if let Some(dir) = &opts.checkpoint_dir {
        pm = pm.checkpoint_dir(dir).resume(opts.resume);
        if let Some(s) = opts.checkpoint_every_s {
            pm = pm.checkpoint_every(SimDuration::from_secs_f64(s));
        }
        #[cfg(unix)]
        {
            pm = pm.interrupt(sigint::install());
        }
    }
    // Checkpointed runs carry their provenance: a run manifest in the
    // checkpoint dir whose lineage records every fresh start and resume.
    // It is written *before* the run starts (and refreshed with real
    // stats after), so the chain survives a kill -9 mid-run.
    let write_manifest = |lineage: Vec<String>, wall: f64, events: u64| {
        let Some(dir) = &opts.checkpoint_dir else {
            return;
        };
        let manifest = wmn::telemetry::RunManifest {
            id: "run".into(),
            title: "parmesh checkpointed run".into(),
            git_rev: wmn::telemetry::git_rev(),
            seeds: vec![opts.seed],
            params: vec![
                ("nodes".into(), n.to_string()),
                ("flows".into(), opts.flows.to_string()),
                ("duration_s".into(), format!("{}", opts.duration_s)),
                ("threads".into(), opts.threads.to_string()),
                (
                    "scenario_fingerprint".into(),
                    format!("{:016x}", pm.scenario_fingerprint()),
                ),
            ],
            wall_s: wall,
            events_processed: events,
            lineage,
            ..wmn::telemetry::RunManifest::default()
        };
        if let Err(e) = manifest.write(std::path::Path::new(dir)) {
            eprintln!("could not write run manifest: {e}");
        }
    };
    let prior_lineage = opts.checkpoint_dir.as_ref().map(|dir| {
        let dir = std::path::Path::new(dir);
        let prior = read_lineage(&dir.join("run_manifest.json"));
        // Provisional entry: what this leg is about to do. The post-run
        // rewrite replaces it with the supervisor's ground truth.
        let entry = if opts.resume {
            wmn::sim::checkpoint::list_dir(dir)
                .ok()
                .and_then(|files| files.into_iter().filter_map(|(e, _)| e).max())
                .map(|e| format!("resumed from epoch {e}"))
                .unwrap_or_else(|| "fresh".to_string())
        } else {
            "fresh".to_string()
        };
        let mut provisional = prior.clone();
        provisional.push(entry);
        write_manifest(provisional, 0.0, 0);
        prior
    });
    let t0 = std::time::Instant::now();
    let out = match pm.try_run() {
        Ok(out) => out,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = t0.elapsed().as_secs_f64();
    let r = &out.report;
    let interrupted = out.supervisor.as_ref().is_some_and(|sup| sup.interrupted);

    if let Some(path) = &opts.trace_out {
        let mut body = String::new();
        for ev in &out.trace {
            body.push_str(&ev.to_jsonl());
            body.push('\n');
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} events to {path}", out.trace.len());
    }

    if let Some((count, fp)) = out.trace_fp {
        // The fingerprint is invariant to --threads and --steal; compare it
        // across runs instead of diffing traces that would not fit.
        eprintln!("trace fingerprint: {count} events, {fp:016x}");
    }

    if let Some(path) = &opts.profile_out {
        let Some(p) = out.profile.as_ref() else {
            eprintln!("profile missing from outcome despite --profile-out");
            std::process::exit(1);
        };
        if let Err(e) = std::fs::write(path, p.to_json()) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote profile to {path} (imbalance {:.2}, barrier-wait share {:.3}, \
             {:.1} regions moved/epoch)",
            p.imbalance_factor(),
            p.barrier_wait_share(),
            p.regions_moved_per_epoch()
        );
    }

    // Refresh the provisional manifest with the supervisor's ground truth
    // and the finished run's stats.
    if let Some(sup) = out.supervisor.as_ref() {
        let mut lineage = prior_lineage.clone().unwrap_or_default();
        lineage.push(match sup.resumed_from_epoch {
            Some(e) => format!("resumed from epoch {e}"),
            None => "fresh".to_string(),
        });
        if sup.interrupted {
            lineage.push(format!("interrupted at epoch {}", r.epochs));
        }
        write_manifest(lineage, wall, r.events);
        eprintln!(
            "checkpoints: {} written, {} recoveries{}",
            sup.checkpoints_written,
            sup.recoveries,
            match sup.resumed_from_epoch {
                Some(e) => format!(", resumed from epoch {e}"),
                None => String::new(),
            }
        );
    }

    if opts.csv {
        println!("nodes,regions,threads,seed,pdr,mean_delay_ms,mean_hops,originated,delivered,forwards,events,epochs,cross_region,wall_s");
        println!(
            "{},{},{},{},{:.4},{:.2},{:.2},{},{},{},{},{},{},{:.3}",
            r.nodes,
            r.regions,
            opts.threads,
            opts.seed,
            r.pdr(),
            r.mean_delay_s * 1e3,
            r.mean_hops,
            r.originated,
            r.delivered,
            r.forwards,
            r.events,
            r.epochs,
            r.cross_region,
            wall,
        );
        if interrupted {
            std::process::exit(EXIT_INTERRUPTED);
        }
        return;
    }

    println!("model                   : parmesh (shard-parallel)");
    println!(
        "nodes / regions / threads: {} / {} / {}",
        r.nodes, r.regions, opts.threads
    );
    println!(
        "originated / delivered  : {} / {}",
        r.originated, r.delivered
    );
    println!("delivery ratio          : {:.4}", r.pdr());
    println!(
        "mean delay / hops       : {:.1} ms / {:.2}",
        r.mean_delay_s * 1e3,
        r.mean_hops
    );
    println!(
        "drops (nr/exp/down)     : {}/{}/{}",
        r.dropped_no_route, r.dropped_expired, r.dropped_node_down
    );
    println!(
        "events / epochs / cross : {} / {} / {}",
        r.events, r.epochs, r.cross_region
    );
    println!("wall-clock              : {wall:.3} s");
    if interrupted {
        eprintln!("interrupted — state checkpointed; rerun with --resume to continue");
        std::process::exit(EXIT_INTERRUPTED);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Parsed::Run(o)) => *o,
        Ok(Parsed::Help) => {
            print!("{HELP}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg} (run wmn-sim --help for usage)");
            std::process::exit(2);
        }
    };

    if opts.parmesh {
        run_parmesh(&opts);
        return;
    }

    let mut builder = match opts.nodes {
        // The scale presets pin placement density; everything else on the
        // command line still applies.
        Some(n) if opts.random_placement => wmn::presets::scale_random(n, opts.flows, opts.seed),
        Some(n) => wmn::presets::scale_grid(n, opts.flows, opts.seed),
        None => ScenarioBuilder::new()
            .seed(opts.seed)
            .grid(opts.grid, opts.grid, opts.pitch),
    }
    .scheme(opts.scheme.clone())
    .flows(opts.flows, opts.pps, opts.payload)
    .duration(SimDuration::from_secs_f64(opts.duration_s))
    .warmup(SimDuration::from_secs_f64(opts.warmup_s));
    if opts.trace {
        // Console tracing: typed events rendered human-readably on stderr
        // (what the old string-ring tracer used to do).
        let sink: SharedSink = std::sync::Arc::new(std::sync::Mutex::new(ConsoleSink));
        builder = builder
            .telemetry(TelemetryConfig::enabled())
            .telemetry_sink(sink);
    }
    if !opts.fails.is_empty() || opts.churn.is_some() {
        let mut plan = FaultPlan::new();
        for &(node, down_s, up_s) in &opts.fails {
            plan = match up_s {
                Some(u) => plan.fail_node_for(
                    node,
                    SimTime::from_secs_f64(down_s),
                    SimDuration::from_secs_f64(u - down_s),
                ),
                None => plan.fail_node(node, SimTime::from_secs_f64(down_s)),
            };
        }
        if let Some((mtbf, mttr)) = opts.churn {
            plan = plan.churn(
                SimDuration::from_secs_f64(mtbf),
                SimDuration::from_secs_f64(mttr),
            );
        }
        builder = builder.faults(plan);
    }
    if opts.clients > 0 {
        builder = builder.mobile_clients(
            opts.clients,
            MobilityConfig::RandomWaypoint {
                v_min: 1.0,
                v_max: opts.client_speed.max(1.0),
                pause_s: 2.0,
            },
        );
    }

    let r = match builder.build() {
        Ok(sim) => sim.run(),
        Err(e) => {
            eprintln!("scenario rejected: {e}");
            std::process::exit(1);
        }
    };

    if opts.csv {
        println!(
            "scheme,nodes,flows,seed,pdr,mean_delay_ms,p95_delay_ms,goodput_kbps,rreq_per_disc,srb,nrl,jain,collisions,energy_mj_per_pkt"
        );
        println!(
            "{},{},{},{},{:.4},{:.2},{:.2},{:.1},{:.2},{:.3},{:.3},{:.3},{},{:.2}",
            r.scheme,
            r.nodes,
            r.flows,
            opts.seed,
            r.pdr(),
            r.mean_delay_ms(),
            r.summary.p95_delay_s * 1e3,
            r.goodput_kbps,
            r.rreq_tx_per_discovery,
            r.saved_rebroadcast,
            r.normalized_routing_load,
            r.jain_forwarding,
            r.medium.collisions,
            r.comm_energy_per_delivered_mj,
        );
        return;
    }

    println!("scheme                  : {}", r.scheme);
    println!(
        "nodes / flows / seed    : {} / {} / {}",
        r.nodes, r.flows, opts.seed
    );
    println!(
        "sent / delivered        : {} / {}",
        r.summary.sent, r.summary.delivered
    );
    println!("delivery ratio          : {:.4}", r.pdr());
    println!(
        "mean / p95 delay        : {:.1} / {:.1} ms",
        r.mean_delay_ms(),
        r.summary.p95_delay_s * 1e3
    );
    println!("goodput                 : {:.1} kb/s", r.goodput_kbps);
    println!("RREQ tx / discovery     : {:.1}", r.rreq_tx_per_discovery);
    println!(
        "saved rebroadcasts      : {:.1} %",
        r.saved_rebroadcast * 100.0
    );
    println!("normalized routing load : {:.3}", r.normalized_routing_load);
    println!("discovery success       : {:.3}", r.discovery_success);
    println!(
        "Jain fairness / hotspot : {:.3} / {:.1}",
        r.jain_forwarding, r.hotspot
    );
    println!(
        "collisions / noise loss : {} / {}",
        r.medium.collisions, r.medium.noise_losses
    );
    println!(
        "drops (q/nr/bo/df/lf/ex): {}/{}/{}/{}/{}/{}",
        r.drops.queue_full,
        r.drops.no_route,
        r.drops.buffer_overflow,
        r.drops.discovery_failed,
        r.drops.link_failure,
        r.drops.expired
    );
    println!("ctrl drops (queue full) : {}", r.drops.ctrl_queue_full);
    println!(
        "comm energy / delivered : {:.2} mJ",
        r.comm_energy_per_delivered_mj
    );
    if r.faults.node_down + r.faults.injected > 0 {
        println!(
            "faults (down/up/other)  : {}/{}/{}",
            r.faults.node_down, r.faults.node_up, r.faults.injected
        );
        let repair = if r.repair_latency_s.is_empty() {
            "-".to_string()
        } else {
            let mean = r.repair_latency_s.iter().sum::<f64>() / r.repair_latency_s.len() as f64;
            format!("{mean:.2} s")
        };
        println!("mean route repair       : {repair}");
        match r.pdr_during_outage {
            Some(p) => println!("PDR during outages      : {p:.4}"),
            None => println!("PDR during outages      : -"),
        }
    }
    println!("events processed        : {}", r.events);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// Parse and unwrap to runnable options (panics on Help or error).
    fn opts(s: &str) -> Options {
        match parse_args(&argv(s)).unwrap() {
            Parsed::Run(o) => *o,
            Parsed::Help => panic!("unexpected help request"),
        }
    }

    #[test]
    fn defaults_when_empty() {
        let o = opts("");
        assert_eq!(o, Options::default());
    }

    #[test]
    fn full_parse() {
        let o = opts(
            "--grid 6 --pitch 200 --scheme gossip:0.7 --flows 12 --pps 6 \
             --payload 256 --duration 30 --warmup 5 --seed 9 --clients 4 \
             --client-speed 15 --csv",
        );
        assert_eq!(o.grid, 6);
        assert_eq!(o.pitch, 200.0);
        assert_eq!(o.scheme, Scheme::Gossip { p: 0.7 });
        assert_eq!(o.flows, 12);
        assert_eq!(o.payload, 256);
        assert_eq!(o.seed, 9);
        assert_eq!(o.clients, 4);
        assert!(o.csv);
    }

    #[test]
    fn scheme_parsing() {
        assert_eq!(parse_scheme("flooding").unwrap(), Scheme::Flooding);
        assert_eq!(
            parse_scheme("gossip:0.5").unwrap(),
            Scheme::Gossip { p: 0.5 }
        );
        assert_eq!(
            parse_scheme("gossip:0.5:2").unwrap(),
            Scheme::GossipK { p: 0.5, k: 2 }
        );
        assert!(matches!(
            parse_scheme("counter:4").unwrap(),
            Scheme::Counter { threshold: 4, .. }
        ));
        assert!(matches!(
            parse_scheme("distance:-75").unwrap(),
            Scheme::Distance { .. }
        ));
        assert!(parse_scheme("distance").is_err());
        assert!(matches!(parse_scheme("cnlr").unwrap(), Scheme::Cnlr(_)));
        assert!(matches!(parse_scheme("vap").unwrap(), Scheme::VapCnlr(..)));
        assert!(parse_scheme("nope").is_err());
        assert!(parse_scheme("gossip").is_err());
        assert!(parse_scheme("gossip:x").is_err());
    }

    #[test]
    fn fault_flags() {
        let o = opts("--fail 5@10 --fail 7@12:20 --churn 120,8");
        assert_eq!(o.fails, vec![(5, 10.0, None), (7, 12.0, Some(20.0))]);
        assert_eq!(o.churn, Some((120.0, 8.0)));
        assert!(parse_fail("5").is_err());
        assert!(parse_fail("x@10").is_err());
        assert!(parse_fail("5@10:9").is_err());
        assert!(parse_churn("120").is_err());
        assert!(parse_churn("0,8").is_err());
        assert!(parse_churn("120,-1").is_err());
    }

    #[test]
    fn scale_flags() {
        let o = opts("--nodes 1000 --random --flows 50");
        assert_eq!(o.nodes, Some(1000));
        assert!(o.random_placement);
        assert_eq!(o.flows, 50);
        assert!(parse_args(&argv("--nodes 2")).is_err());
        assert!(parse_args(&argv("--nodes 20000")).is_err());
        assert!(parse_args(&argv("--random")).is_err(), "--random alone");
    }

    #[test]
    fn parmesh_flags() {
        let o = opts(
            "--parmesh --nodes 100000 --threads 8 --regions 64 --trace-out /tmp/t.jsonl \
             --profile-out /tmp/p.json",
        );
        assert!(o.parmesh);
        assert_eq!(o.nodes, Some(100_000));
        assert_eq!(o.threads, 8);
        assert_eq!(o.regions, Some(64));
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(o.profile_out.as_deref(), Some("/tmp/p.json"));
        assert!(parse_args(&argv("--parmesh")).is_err(), "needs --nodes");
        assert!(
            parse_args(&argv("--nodes 1000 --threads 2")).is_err(),
            "--threads without --parmesh"
        );
        assert!(
            parse_args(&argv("--nodes 1000 --profile-out /tmp/p.json")).is_err(),
            "--profile-out without --parmesh"
        );
        assert!(
            parse_args(&argv("--nodes 100000")).is_err(),
            "classic stack caps at 10000"
        );
        assert!(parse_args(&argv("--parmesh --nodes 100000 --threads 0")).is_err());
    }

    #[test]
    fn million_node_cap_and_steal_flags() {
        let o = opts("--parmesh --nodes 1000000 --steal off --trace-hash");
        assert_eq!(o.nodes, Some(1_000_000));
        assert_eq!(o.steal, Some(false));
        assert!(o.trace_hash);
        assert_eq!(opts("--parmesh --nodes 1000 --steal on").steal, Some(true));
        assert_eq!(opts("--parmesh --nodes 1000").steal, None, "engine default");
        assert!(
            parse_args(&argv("--parmesh --nodes 1000001")).is_err(),
            "parmesh caps at one million nodes"
        );
        assert!(
            parse_args(&argv("--nodes 200000")).is_err(),
            "classic stack still caps at 10000"
        );
        assert!(parse_args(&argv("--parmesh --nodes 1000 --steal maybe")).is_err());
        assert!(parse_args(&argv("--nodes 1000 --steal off")).is_err());
        assert!(parse_args(&argv("--trace-hash")).is_err());
        assert!(
            parse_args(&argv(
                "--parmesh --nodes 1000 --trace-hash --checkpoint-dir /tmp/ck"
            ))
            .is_err(),
            "--trace-hash cannot combine with checkpoints"
        );
    }

    #[test]
    fn errors() {
        assert!(parse_args(&argv("--grid")).is_err());
        assert!(parse_args(&argv("--bogus 1")).is_err());
        assert!(parse_args(&argv("--grid 1")).is_err());
        assert!(parse_args(&argv("--duration 5 --warmup 9")).is_err());
    }

    #[test]
    fn help_is_not_an_error() {
        assert_eq!(parse_args(&argv("--help")).unwrap(), Parsed::Help);
        assert_eq!(parse_args(&argv("-h")).unwrap(), Parsed::Help);
        // --help wins even mid-line: the user asked for usage, print it.
        assert_eq!(parse_args(&argv("--grid 6 --help")).unwrap(), Parsed::Help);
    }

    #[test]
    fn checkpoint_flags() {
        let o =
            opts("--parmesh --nodes 1000 --checkpoint-dir /tmp/ck --checkpoint-every 2.5 --resume");
        assert_eq!(o.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!(o.checkpoint_every_s, Some(2.5));
        assert!(o.resume);
        // Parmesh-only and dependency validation.
        assert!(
            parse_args(&argv("--nodes 1000 --checkpoint-dir /tmp/ck")).is_err(),
            "--checkpoint-dir without --parmesh"
        );
        assert!(
            parse_args(&argv("--parmesh --nodes 1000 --resume")).is_err(),
            "--resume without --checkpoint-dir"
        );
        assert!(
            parse_args(&argv("--parmesh --nodes 1000 --checkpoint-every 1")).is_err(),
            "--checkpoint-every without --checkpoint-dir"
        );
        assert!(parse_args(&argv(
            "--parmesh --nodes 1000 --checkpoint-dir /tmp/ck --checkpoint-every 0"
        ))
        .is_err());
        // Strict parsing: missing values exit through the error path.
        assert!(parse_args(&argv("--checkpoint-dir")).is_err());
        assert!(parse_args(&argv("--checkpoint-every")).is_err());
    }
}
