//! `wmn-submit` — thin client for the scenario-service daemon.
//!
//! ```text
//! wmn-submit --socket PATH [scenario flags] [--priority P] [--stream] [--json]
//! wmn-submit --socket PATH --status [--json]
//! wmn-submit --socket PATH --cancel JOB
//! wmn-submit --socket PATH --shutdown
//! wmn-submit --socket PATH --ping
//! ```
//!
//! Default action submits one job and waits for its result. `--stream`
//! additionally prints the daemon's 1 Hz probe lines and the job manifest
//! as they arrive. Exit codes: 0 success, 1 job failed/cancelled or
//! connection error, 2 usage, 3 daemon busy.

use std::time::Duration;
use wmn_served::{Client, ClientError, ScenarioSpec};

fn usage() -> ! {
    eprintln!(
        "usage: wmn-submit --socket PATH [options]\n\
         \n\
         actions (default: submit one job and wait)\n\
         --status            print daemon status\n\
         --jobs              print per-job listing\n\
         --cancel JOB        cancel a job by id\n\
         --shutdown          ask the daemon to drain and exit\n\
         --ping              liveness check\n\
         \n\
         scenario (defaults in parentheses)\n\
         --scheme S          flooding|gossip:P[:K]|counter:C[:RAD_MS]|distance:DBM|cnlr|vap (cnlr)\n\
         --seed N            master seed (1)\n\
         --grid R[xC]        backbone grid (8x8)\n\
         --pitch M           grid pitch, metres (180)\n\
         --flows N           CBR flow count (20)\n\
         --pps F             packets/s per flow (4)\n\
         --payload B         payload bytes (512)\n\
         --duration S        simulated seconds (60)\n\
         --warmup S          warm-up seconds (10)\n\
         --clients N         mobile clients (0)\n\
         --client-speed V    client max speed m/s (10)\n\
         --churn MTBF,MTTR   node churn, seconds (off)\n\
         \n\
         submission\n\
         --priority P        higher runs first (0)\n\
         --stream            stream 1 Hz probes + manifest to stdout\n\
         --retry-busy S      retry on busy for up to S seconds (0)\n\
         --json              raw JSON output instead of a summary"
    );
    std::process::exit(2);
}

fn bail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `wmn-submit --help` for usage");
    std::process::exit(2);
}

enum Action {
    Submit,
    Status,
    Jobs,
    Cancel(u64),
    Shutdown,
    Ping,
}

fn main() {
    let mut socket: Option<String> = None;
    let mut action = Action::Submit;
    let mut spec = ScenarioSpec::default();
    let mut priority: i64 = 0;
    let mut stream = false;
    let mut json = false;
    let mut retry_busy = Duration::ZERO;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> String {
            match args.next() {
                Some(v) => v,
                None => bail(&format!("{name} requires a value")),
            }
        };
        match a.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--status" => action = Action::Status,
            "--jobs" => action = Action::Jobs,
            "--cancel" => {
                let id = value("--cancel");
                match id.parse() {
                    Ok(id) => action = Action::Cancel(id),
                    Err(_) => bail(&format!("bad job id '{id}'")),
                }
            }
            "--shutdown" => action = Action::Shutdown,
            "--ping" => action = Action::Ping,
            "--scheme" => spec.scheme = value("--scheme"),
            "--seed" => {
                spec.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --seed"))
            }
            "--grid" => {
                let g = value("--grid");
                let (r, c) = match g.split_once('x') {
                    Some((r, c)) => (r.parse(), c.parse()),
                    None => (g.parse(), g.parse()),
                };
                match (r, c) {
                    (Ok(r), Ok(c)) => {
                        spec.grid_rows = r;
                        spec.grid_cols = c;
                    }
                    _ => bail(&format!("bad --grid '{g}' (expect R or RxC)")),
                }
            }
            "--pitch" => {
                spec.pitch_m = value("--pitch")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --pitch"))
            }
            "--flows" => {
                spec.flows = value("--flows")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --flows"))
            }
            "--pps" => spec.pps = value("--pps").parse().unwrap_or_else(|_| bail("bad --pps")),
            "--payload" => {
                spec.payload = value("--payload")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --payload"))
            }
            "--duration" => {
                spec.duration_s = value("--duration")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --duration"))
            }
            "--warmup" => {
                spec.warmup_s = value("--warmup")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --warmup"))
            }
            "--clients" => {
                spec.clients = value("--clients")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --clients"))
            }
            "--client-speed" => {
                spec.client_speed = value("--client-speed")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --client-speed"))
            }
            "--churn" => {
                let v = value("--churn");
                let parts: Option<(f64, f64)> = v
                    .split_once(',')
                    .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)));
                match parts {
                    Some(pair) => spec.churn = Some(pair),
                    None => bail(&format!("bad --churn '{v}' (expect MTBF,MTTR seconds)")),
                }
            }
            "--priority" => {
                priority = value("--priority")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --priority"))
            }
            "--stream" => stream = true,
            "--retry-busy" => {
                let s: f64 = value("--retry-busy")
                    .parse()
                    .unwrap_or_else(|_| bail("bad --retry-busy"));
                retry_busy = Duration::from_secs_f64(s.max(0.0));
            }
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => bail(&format!("unknown argument '{other}'")),
        }
    }
    let Some(socket) = socket else {
        bail("--socket is required");
    };
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {socket}: {e}");
            std::process::exit(1);
        }
    };
    let outcome = match action {
        Action::Ping => client.ping().map(|()| println!("pong")),
        Action::Shutdown => client.shutdown().map(|()| println!("draining")),
        Action::Cancel(id) => client.cancel(id).map(|o| println!("job {id}: {o}")),
        Action::Status => {
            if json {
                client.status_raw().map(|s| println!("{s}"))
            } else {
                client.status().map(|s| {
                    println!(
                        "queued {} | running {} | done {} | cancelled {} | failed {} | \
                         busy-rejected {} | capacity {} | workers {}{}",
                        s.queued,
                        s.running,
                        s.done,
                        s.cancelled,
                        s.failed,
                        s.rejected_busy,
                        s.capacity,
                        s.workers,
                        if s.draining { " | DRAINING" } else { "" }
                    );
                    println!(
                        "prefix cache: {} hits / {} builds; warm link cache: {} imports / {} exports",
                        s.prefix_hits, s.prefix_builds, s.warm_imports, s.warm_exports
                    );
                })
            }
        }
        Action::Jobs => {
            if json {
                client.jobs_raw().map(|s| println!("{s}"))
            } else {
                client.jobs().map(|jobs| {
                    println!(
                        "{:>5}  {:<10} {:<16} {:>6}  seed",
                        "job", "state", "scheme", "prio"
                    );
                    for j in jobs {
                        println!(
                            "{:>5}  {:<10} {:<16} {:>6}  {}",
                            j.id, j.state, j.scheme, j.priority, j.seed
                        );
                    }
                })
            }
        }
        Action::Submit => {
            let run = if retry_busy.is_zero() {
                client.run_streamed(&spec, priority, stream)
            } else {
                // Bounded busy-retry wraps the whole submit.
                let deadline = std::time::Instant::now() + retry_busy;
                loop {
                    match client.run_streamed(&spec, priority, stream) {
                        Err(ClientError::Busy) if std::time::Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(100));
                        }
                        other => break other,
                    }
                }
            };
            match run {
                Ok(result) if result.ok => {
                    if json {
                        println!("{}", result.to_line());
                    } else {
                        println!(
                            "job {}: done in {:.2}s ({} events, prefix {}, warm cache {})",
                            result.job,
                            result.wall_s,
                            result.events,
                            if result.prefix_reused {
                                "reused"
                            } else {
                                "built"
                            },
                            if result.warm_import {
                                "imported"
                            } else {
                                "cold"
                            },
                        );
                        for (k, v) in &result.metrics {
                            println!("  {k:<20} {v}");
                        }
                    }
                    Ok(())
                }
                Ok(result) => {
                    eprintln!(
                        "job {}: {}",
                        result.job,
                        result.error.as_deref().unwrap_or("failed")
                    );
                    std::process::exit(1);
                }
                Err(e) => Err(e),
            }
        }
    };
    match outcome {
        Ok(()) => {}
        Err(ClientError::Busy) => {
            eprintln!("error: daemon busy (queue full)");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

trait RunStreamed {
    fn run_streamed(
        &mut self,
        spec: &ScenarioSpec,
        priority: i64,
        stream: bool,
    ) -> Result<wmn_served::JobResult, ClientError>;
}

impl RunStreamed for Client {
    fn run_streamed(
        &mut self,
        spec: &ScenarioSpec,
        priority: i64,
        stream: bool,
    ) -> Result<wmn_served::JobResult, ClientError> {
        let job = self.submit(spec, priority, stream)?;
        self.wait(job, |line| println!("{line}"))
    }
}
