//! `wmn-served` — the scenario-service daemon.
//!
//! ```text
//! wmn-served --socket PATH [--workers N] [--queue-cap N]
//! ```
//!
//! Listens on a Unix-domain socket for newline-delimited JSON job requests
//! (protocol v1, DESIGN.md §4.6). SIGTERM or SIGINT begins a graceful
//! drain: in-flight jobs finish, queued jobs run, new submissions are
//! refused with `draining`, then the process exits 0. The `shutdown` op
//! does the same over the wire.

use std::sync::atomic::Ordering;
use std::time::Duration;
use wmn_served::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wmn-served --socket PATH [--workers N] [--queue-cap N]\n\
         \n\
         --socket PATH    Unix-domain socket to listen on (required)\n\
         --workers N      worker threads (default: WMN_THREADS or all cores)\n\
         --queue-cap N    max queued jobs before `busy` (default 64)"
    );
    std::process::exit(2);
}

mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one store.
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Install SIGTERM + SIGINT handlers; either sets the returned flag.
    pub fn install() -> Arc<AtomicBool> {
        let flag = FLAG
            .get_or_init(|| Arc::new(AtomicBool::new(false)))
            .clone();
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        flag
    }
}

fn main() {
    let mut socket: Option<std::path::PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--socket" => socket = Some(value("--socket").into()),
            "--workers" => match value("--workers").parse() {
                Ok(n) => workers = Some(n),
                Err(_) => {
                    eprintln!("error: --workers needs an integer");
                    std::process::exit(2);
                }
            },
            "--queue-cap" => match value("--queue-cap").parse() {
                Ok(n) => queue_cap = Some(n),
                Err(_) => {
                    eprintln!("error: --queue-cap needs an integer");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument '{other}'");
                usage();
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!("error: --socket is required");
        usage();
    };
    let mut cfg = ServerConfig::new(socket);
    if let Some(w) = workers {
        cfg.workers = w;
    }
    if let Some(c) = queue_cap {
        cfg.queue_cap = c;
    }
    let socket_display = cfg.socket.display().to_string();
    let (workers, cap) = (cfg.workers, cfg.queue_cap);
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot listen on {socket_display}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("wmn-served: listening on {socket_display} ({workers} workers, queue cap {cap})");
    let term = signals::install();
    while !server.shutdown_requested() {
        if term.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("wmn-served: draining (in-flight jobs finish, new submissions refused)");
    let stats = server.join();
    eprintln!(
        "wmn-served: drained; {} submitted, {} done, {} cancelled, {} failed, \
         {} busy-rejected; prefix cache {} hits / {} builds, warm link cache \
         {} imports / {} exports",
        stats.submitted,
        stats.done,
        stats.cancelled,
        stats.failed,
        stats.rejected_busy,
        stats.prefix_hits,
        stats.prefix_builds,
        stats.warm_imports,
        stats.warm_exports,
    );
}
