//! The newline-delimited request/response protocol (versioned, flat JSON).
//!
//! Every line is one flat JSON object — the shape
//! [`wmn_telemetry::parse_object`] reads. Requests carry `"v":1` and an
//! `"op"`; responses to a `run` are an immediate ack followed, on the same
//! connection, by `"stream"`-tagged lines (`probe`, `manifest`, `result`)
//! until the terminal `result` line. 64-bit seeds travel as strings (the
//! parser's number path is `f64`); metric values travel as shortest-
//! roundtrip decimals, which Rust's `{}` formatting guarantees re-parse to
//! the identical bits — the byte-identity of served figure CSVs rests on
//! that.

use crate::spec::ScenarioSpec;
use cnlr::RunResults;
use wmn_telemetry::json::{get, JsonValue};
use wmn_telemetry::{escape_json, parse_object};

/// Wire-protocol version; bumped on any incompatible change.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job.
    Run {
        /// The scenario to run.
        spec: ScenarioSpec,
        /// Scheduling priority (higher runs first; FIFO within a level).
        priority: i64,
        /// Stream 1 Hz telemetry probes back over the connection.
        stream: bool,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id from the `run` ack.
        job: u64,
    },
    /// Service-level counters and queue depth.
    Status,
    /// Per-job status listing.
    Jobs,
    /// Liveness check.
    Ping,
    /// Begin a graceful drain (equivalent to SIGTERM).
    Shutdown,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let pairs =
            parse_object(line.trim()).ok_or("malformed request (not a flat JSON object)")?;
        let v = get(&pairs, "v")
            .and_then(JsonValue::as_u64)
            .ok_or("missing protocol version \"v\"")?;
        if v != PROTOCOL_VERSION {
            return Err(format!(
                "unsupported protocol version {v} (daemon speaks {PROTOCOL_VERSION})"
            ));
        }
        let op = get(&pairs, "op")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"op\"")?;
        match op {
            "run" => {
                let spec = ScenarioSpec::from_pairs(&pairs)?;
                let priority = get(&pairs, "priority")
                    .map(|v| v.as_f64().ok_or("bad priority"))
                    .transpose()?
                    .unwrap_or(0.0) as i64;
                let stream = matches!(get(&pairs, "stream"), Some(JsonValue::Bool(true)));
                Ok(Request::Run {
                    spec,
                    priority,
                    stream,
                })
            }
            "cancel" => {
                let job = get(&pairs, "job")
                    .and_then(JsonValue::as_u64)
                    .ok_or("cancel needs a \"job\" id")?;
                Ok(Request::Cancel { job })
            }
            "status" => Ok(Request::Status),
            "jobs" => Ok(Request::Jobs),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op '{other}'")),
        }
    }

    /// Serialise for sending (the client side of [`Request::parse`]).
    pub fn to_line(&self) -> String {
        match self {
            Request::Run {
                spec,
                priority,
                stream,
            } => format!(
                "{{\"v\":{PROTOCOL_VERSION},\"op\":\"run\",{},\"priority\":{priority},\"stream\":{stream}}}",
                spec.json_fields()
            ),
            Request::Cancel { job } => {
                format!("{{\"v\":{PROTOCOL_VERSION},\"op\":\"cancel\",\"job\":{job}}}")
            }
            Request::Status => format!("{{\"v\":{PROTOCOL_VERSION},\"op\":\"status\"}}"),
            Request::Jobs => format!("{{\"v\":{PROTOCOL_VERSION},\"op\":\"jobs\"}}"),
            Request::Ping => format!("{{\"v\":{PROTOCOL_VERSION},\"op\":\"ping\"}}"),
            Request::Shutdown => format!("{{\"v\":{PROTOCOL_VERSION},\"op\":\"shutdown\"}}"),
        }
    }
}

/// Format an `f64` for the wire: shortest-roundtrip decimal, or `null`
/// for non-finite values (JSON has no NaN/Inf). The client maps `null`
/// back to NaN.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn f64_array(values: impl Iterator<Item = f64>) -> String {
    let items: Vec<String> = values.map(fmt_f64).collect();
    format!("[{}]", items.join(","))
}

fn str_array<'a>(items: impl Iterator<Item = &'a str>) -> String {
    let items: Vec<String> = items.map(|s| format!("\"{}\"", escape_json(s))).collect();
    format!("[{}]", items.join(","))
}

fn u64_array(values: impl Iterator<Item = u64>) -> String {
    let items: Vec<String> = values.map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// The metric set the daemon extracts from every completed run, keyed for
/// the wire. Definitions are copied *exactly* from the figure binaries
/// (fig3 reads `pdr`; fig11 reads `pdr`, `pdr_outage`, `repair_latency_s`,
/// `reconverge_s`) — a drifted definition here would silently break the
/// served-vs-one-shot byte-identity guarantee.
pub fn standard_metrics(r: &RunResults) -> Vec<(&'static str, f64)> {
    let repair = if r.repair_latency_s.is_empty() {
        0.0
    } else {
        r.repair_latency_s.iter().sum::<f64>() / r.repair_latency_s.len() as f64
    };
    vec![
        ("pdr", r.pdr()),
        ("pdr_outage", r.pdr_during_outage.unwrap_or(0.0)),
        ("repair_latency_s", repair),
        ("reconverge_s", r.reconverge_s.unwrap_or(0.0)),
        ("mean_delay_ms", r.mean_delay_ms()),
        ("goodput_kbps", r.goodput_kbps),
        ("rreq_per_discovery", r.rreq_tx_per_discovery),
        ("saved_rebroadcast", r.saved_rebroadcast),
        ("discovery_success", r.discovery_success),
        ("nrl", r.normalized_routing_load),
        ("jain_forwarding", r.jain_forwarding),
    ]
}

/// The terminal per-job response, as both sides see it.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Job id.
    pub job: u64,
    /// Whether the run completed (false: cancelled or failed).
    pub ok: bool,
    /// Failure/cancellation reason when `ok` is false.
    pub error: Option<String>,
    /// Wall-clock seconds the run took on its worker.
    pub wall_s: f64,
    /// Engine events processed.
    pub events: u64,
    /// `(key, value)` pairs from [`standard_metrics`].
    pub metrics: Vec<(String, f64)>,
    /// The run's aggregated counter registry.
    pub counters: Vec<(String, u64)>,
    /// Medium pathloss evaluations (cache perf).
    pub pathloss_evals: u64,
    /// Medium link-cache hits (cache perf).
    pub link_cache_hits: u64,
    /// Link budgets evaluated (cache perf).
    pub link_budgets: u64,
    /// Whether the scenario prefix came from the dedup cache.
    pub prefix_reused: bool,
    /// Whether a warm link-budget cache was imported.
    pub warm_import: bool,
}

impl JobResult {
    /// A failed/cancelled result.
    pub fn failure(job: u64, error: impl Into<String>) -> JobResult {
        JobResult {
            job,
            ok: false,
            error: Some(error.into()),
            wall_s: 0.0,
            events: 0,
            metrics: Vec::new(),
            counters: Vec::new(),
            pathloss_evals: 0,
            link_cache_hits: 0,
            link_budgets: 0,
            prefix_reused: false,
            warm_import: false,
        }
    }

    /// Look up a metric by wire key (NaN when absent).
    pub fn metric(&self, key: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(k, _)| k == key)
            .map_or(f64::NAN, |(_, v)| *v)
    }

    /// Serialise as the terminal `result` stream line.
    pub fn to_line(&self) -> String {
        if !self.ok {
            return format!(
                "{{\"stream\":\"result\",\"job\":{},\"ok\":false,\"error\":\"{}\"}}",
                self.job,
                escape_json(self.error.as_deref().unwrap_or("failed"))
            );
        }
        format!(
            "{{\"stream\":\"result\",\"job\":{},\"ok\":true,\"wall_s\":{},\"events\":{},\
             \"metric_names\":{},\"metric_values\":{},\
             \"counter_names\":{},\"counter_values\":{},\
             \"pathloss_evals\":{},\"link_cache_hits\":{},\"link_budgets\":{},\
             \"prefix_reused\":{},\"warm_import\":{}}}",
            self.job,
            fmt_f64(self.wall_s),
            self.events,
            str_array(self.metrics.iter().map(|(k, _)| k.as_str())),
            f64_array(self.metrics.iter().map(|(_, v)| *v)),
            str_array(self.counters.iter().map(|(k, _)| k.as_str())),
            u64_array(self.counters.iter().map(|(_, v)| *v)),
            self.pathloss_evals,
            self.link_cache_hits,
            self.link_budgets,
            self.prefix_reused,
            self.warm_import,
        )
    }

    /// Parse a `result` stream line back (client side).
    pub fn from_pairs(pairs: &[(String, JsonValue)]) -> Result<JobResult, String> {
        let job = get(pairs, "job")
            .and_then(JsonValue::as_u64)
            .ok_or("result missing job id")?;
        let ok = matches!(get(pairs, "ok"), Some(JsonValue::Bool(true)));
        if !ok {
            let error = get(pairs, "error")
                .and_then(JsonValue::as_str)
                .unwrap_or("failed")
                .to_string();
            return Ok(JobResult::failure(job, error));
        }
        let names = |key: &str| -> Result<Vec<String>, String> {
            match get(pairs, key) {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("non-string in {key}"))
                    })
                    .collect(),
                _ => Err(format!("result missing {key}")),
            }
        };
        let metric_names = names("metric_names")?;
        let counter_names = names("counter_names")?;
        let metric_values: Vec<f64> = match get(pairs, "metric_values") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|v| match v {
                    JsonValue::Null => f64::NAN,
                    other => other.as_f64().unwrap_or(f64::NAN),
                })
                .collect(),
            _ => return Err("result missing metric_values".into()),
        };
        let counter_values: Vec<u64> = match get(pairs, "counter_values") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|v| v.as_u64().ok_or("non-integer counter value"))
                .collect::<Result<_, _>>()?,
            _ => return Err("result missing counter_values".into()),
        };
        if metric_names.len() != metric_values.len() || counter_names.len() != counter_values.len()
        {
            return Err("mismatched name/value array lengths".into());
        }
        let u64_field = |key: &str| get(pairs, key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok(JobResult {
            job,
            ok,
            error: None,
            wall_s: get(pairs, "wall_s")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            events: u64_field("events"),
            metrics: metric_names.into_iter().zip(metric_values).collect(),
            counters: counter_names.into_iter().zip(counter_values).collect(),
            pathloss_evals: u64_field("pathloss_evals"),
            link_cache_hits: u64_field("link_cache_hits"),
            link_budgets: u64_field("link_budgets"),
            prefix_reused: matches!(get(pairs, "prefix_reused"), Some(JsonValue::Bool(true))),
            warm_import: matches!(get(pairs, "warm_import"), Some(JsonValue::Bool(true))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_roundtrip() {
        let reqs = [
            Request::Run {
                spec: ScenarioSpec {
                    seed: u64::MAX - 7,
                    ..ScenarioSpec::default()
                },
                priority: -3,
                stream: true,
            },
            Request::Cancel { job: 12 },
            Request::Status,
            Request::Jobs,
            Request::Ping,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_line();
            assert_eq!(Request::parse(&line).unwrap(), r, "roundtrip of {line}");
        }
    }

    #[test]
    fn version_is_enforced() {
        assert!(Request::parse("{\"op\":\"ping\"}").is_err());
        assert!(Request::parse("{\"v\":2,\"op\":\"ping\"}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"v\":1,\"op\":\"fly\"}").is_err());
    }

    #[test]
    fn result_roundtrip_is_bit_exact() {
        let jr = JobResult {
            job: 5,
            ok: true,
            error: None,
            wall_s: 1.25,
            events: 123_456,
            metrics: vec![
                ("pdr".into(), 0.1 + 0.2), // classic non-terminating decimal
                ("mean_delay_ms".into(), f64::NAN),
            ],
            counters: vec![("rreq_originated".into(), 42)],
            pathloss_evals: 9,
            link_cache_hits: 1000,
            link_budgets: 1009,
            prefix_reused: true,
            warm_import: false,
        };
        let pairs = parse_object(&jr.to_line()).expect("result line parses");
        let back = JobResult::from_pairs(&pairs).unwrap();
        assert_eq!(back.job, jr.job);
        assert_eq!(back.metrics[0].1.to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(back.metrics[1].1.is_nan());
        assert_eq!(back.counters, jr.counters);
        assert!(back.prefix_reused && !back.warm_import);
    }

    #[test]
    fn failure_lines_carry_the_reason() {
        let jr = JobResult::failure(3, "cancelled");
        let pairs = parse_object(&jr.to_line()).unwrap();
        let back = JobResult::from_pairs(&pairs).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("cancelled"));
    }
}
