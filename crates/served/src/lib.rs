//! `wmn-served` — the scenario-service subsystem (DESIGN.md §4.6).
//!
//! A long-running daemon accepts scenario jobs as newline-delimited JSON
//! over a Unix-domain socket, validates them into [`ScenarioSpec`]s, and
//! runs them on a bounded-worker scheduler that dedupes shared scenario
//! prefixes: jobs that agree on every prefix-relevant setting (same
//! [`cnlr::ScenarioBuilder::prefix_fingerprint`]) share one built topology
//! and flow draw and, when static and fault-free, a warm link-budget
//! cache. Both hand-offs are pure performance — results are bit-identical to
//! independent one-shot runs, and the figure-sweep byte-identity tests
//! hold the subsystem to exactly that.
//!
//! The crate ships three faces:
//! - [`Server`] — the embeddable service core (the `wmn-served` binary and
//!   the integration tests both drive this),
//! - [`Client`] — a blocking line-protocol client (the `wmn-submit` binary
//!   and the `--served` figure sweeps are thin wrappers over it),
//! - [`ScenarioSpec`] — the shared wire-level scenario description.

pub mod client;
pub mod proto;
pub mod server;
pub mod spec;

pub use client::{Client, ClientError, JobInfo, ServiceStatus};
pub use proto::{standard_metrics, JobResult, Request, PROTOCOL_VERSION};
pub use server::{JobState, Server, ServerConfig, ServiceStats};
pub use spec::ScenarioSpec;
