//! Blocking line-protocol client — the substrate under `wmn-submit`,
//! `wmn-trace jobs` and the `--served` figure sweeps.

use crate::proto::{JobResult, Request};
use crate::spec::ScenarioSpec;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};
use wmn_telemetry::json::{get, JsonValue};
use wmn_telemetry::parse_object;

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The daemon refused with `busy` (bounded queue full).
    Busy,
    /// The daemon is draining and refuses new jobs.
    Draining,
    /// The daemon rejected the request (bad spec, unknown job, …).
    Rejected(String),
    /// The daemon answered something unparseable.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Busy => write!(f, "daemon busy (queue full)"),
            ClientError::Draining => write!(f, "daemon draining"),
            ClientError::Rejected(e) => write!(f, "rejected: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Daemon-level counters as returned by the `status` op.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStatus {
    /// Jobs waiting for a worker.
    pub queued: u64,
    /// Jobs currently on a worker.
    pub running: u64,
    /// Jobs accepted over the daemon's life.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub done: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Submissions refused with `busy`.
    pub rejected_busy: u64,
    /// Queue capacity.
    pub capacity: u64,
    /// Worker-pool size.
    pub workers: u64,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Scenario prefixes built from scratch.
    pub prefix_builds: u64,
    /// Jobs that reused a cached prefix.
    pub prefix_hits: u64,
    /// Jobs that imported a warm link-budget cache.
    pub warm_imports: u64,
    /// Warm caches exported into the dedup slot.
    pub warm_exports: u64,
}

/// One row of the `jobs` listing.
#[derive(Clone, Debug)]
pub struct JobInfo {
    /// Job id.
    pub id: u64,
    /// Lifecycle state name.
    pub state: String,
    /// Scheme spec string.
    pub scheme: String,
    /// Master seed.
    pub seed: u64,
    /// Scheduling priority.
    pub priority: i64,
}

/// A connected protocol client (one request/response in flight at a time).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connect to a daemon socket.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        writeln!(self.writer, "{}", req.to_line())?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("daemon closed the connection".into()));
        }
        Ok(line)
    }

    fn read_pairs(&mut self) -> Result<Vec<(String, JsonValue)>, ClientError> {
        let line = self.read_line()?;
        parse_object(line.trim())
            .ok_or_else(|| ClientError::Protocol(format!("unparseable response: {}", line.trim())))
    }

    /// Map a `{"ok":false,...}` response to the matching error.
    fn check_ok(pairs: &[(String, JsonValue)]) -> Result<(), ClientError> {
        if matches!(get(pairs, "ok"), Some(JsonValue::Bool(true))) {
            return Ok(());
        }
        let err = get(pairs, "error")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown error");
        Err(match err {
            "busy" => ClientError::Busy,
            "draining" => ClientError::Draining,
            other => ClientError::Rejected(other.to_string()),
        })
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        Self::check_ok(&self.read_pairs()?)
    }

    /// Begin a graceful drain.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        Self::check_ok(&self.read_pairs()?)
    }

    /// Cancel a job; returns the daemon's outcome word
    /// (`cancelled` / `cancelling` / `finished`).
    pub fn cancel(&mut self, job: u64) -> Result<String, ClientError> {
        self.send(&Request::Cancel { job })?;
        let pairs = self.read_pairs()?;
        Self::check_ok(&pairs).map_err(|e| match e {
            ClientError::Rejected(_) => ClientError::Rejected(format!("unknown job {job}")),
            other => other,
        })?;
        Ok(get(&pairs, "outcome")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_string())
    }

    /// The raw one-line JSON `status` response (for `--json` passthrough).
    pub fn status_raw(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Status)?;
        Ok(self.read_line()?.trim().to_string())
    }

    /// Parsed daemon status.
    pub fn status(&mut self) -> Result<ServiceStatus, ClientError> {
        self.send(&Request::Status)?;
        let pairs = self.read_pairs()?;
        Self::check_ok(&pairs)?;
        let n = |key: &str| get(&pairs, key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok(ServiceStatus {
            queued: n("queued"),
            running: n("running"),
            submitted: n("submitted"),
            done: n("done"),
            cancelled: n("cancelled"),
            failed: n("failed"),
            rejected_busy: n("rejected_busy"),
            capacity: n("capacity"),
            workers: n("workers"),
            draining: matches!(get(&pairs, "draining"), Some(JsonValue::Bool(true))),
            prefix_builds: n("prefix_builds"),
            prefix_hits: n("prefix_hits"),
            warm_imports: n("warm_imports"),
            warm_exports: n("warm_exports"),
        })
    }

    /// The raw one-line JSON `jobs` response.
    pub fn jobs_raw(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Jobs)?;
        Ok(self.read_line()?.trim().to_string())
    }

    /// Parsed per-job listing.
    pub fn jobs(&mut self) -> Result<Vec<JobInfo>, ClientError> {
        self.send(&Request::Jobs)?;
        let pairs = self.read_pairs()?;
        Self::check_ok(&pairs)?;
        let arr = |key: &str| -> Vec<JsonValue> {
            match get(&pairs, key) {
                Some(JsonValue::Arr(items)) => items.clone(),
                _ => Vec::new(),
            }
        };
        let (ids, states, schemes, seeds, priorities) = (
            arr("ids"),
            arr("states"),
            arr("schemes"),
            arr("seeds"),
            arr("priorities"),
        );
        let mut out = Vec::with_capacity(ids.len());
        for (i, id) in ids.iter().enumerate() {
            out.push(JobInfo {
                id: id.as_u64().unwrap_or(0),
                state: states
                    .get(i)
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string(),
                scheme: schemes
                    .get(i)
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string(),
                seed: seeds
                    .get(i)
                    .and_then(|v| v.as_str())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0),
                priority: priorities.get(i).and_then(|v| v.as_f64()).unwrap_or(0.0) as i64,
            });
        }
        Ok(out)
    }

    /// Submit a job; returns its id once the daemon acks. The connection
    /// then carries that job's stream lines — follow with
    /// [`Client::wait`].
    pub fn submit(
        &mut self,
        spec: &ScenarioSpec,
        priority: i64,
        stream: bool,
    ) -> Result<u64, ClientError> {
        self.send(&Request::Run {
            spec: spec.clone(),
            priority,
            stream,
        })?;
        let pairs = self.read_pairs()?;
        Self::check_ok(&pairs)?;
        get(&pairs, "job")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ClientError::Protocol("run ack missing job id".into()))
    }

    /// Pump stream lines for a submitted job until its terminal result.
    /// Every non-terminal line (probes, the manifest) is handed to
    /// `on_line` verbatim.
    pub fn wait(
        &mut self,
        job: u64,
        mut on_line: impl FnMut(&str),
    ) -> Result<JobResult, ClientError> {
        loop {
            let line = self.read_line()?;
            let trimmed = line.trim();
            let Some(pairs) = parse_object(trimmed) else {
                return Err(ClientError::Protocol(format!(
                    "unparseable stream line: {trimmed}"
                )));
            };
            match get(&pairs, "stream").and_then(JsonValue::as_str) {
                Some("result") => {
                    let result = JobResult::from_pairs(&pairs).map_err(ClientError::Protocol)?;
                    if result.job != job {
                        return Err(ClientError::Protocol(format!(
                            "result for job {} while waiting on {job}",
                            result.job
                        )));
                    }
                    return Ok(result);
                }
                Some(_) => on_line(trimmed),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected line while streaming: {trimmed}"
                    )))
                }
            }
        }
    }

    /// Submit and wait, no streaming.
    pub fn run(&mut self, spec: &ScenarioSpec, priority: i64) -> Result<JobResult, ClientError> {
        let job = self.submit(spec, priority, false)?;
        self.wait(job, |_| {})
    }

    /// [`Client::run`] with bounded retry on `busy`: backpressure from the
    /// daemon's bounded queue is an invitation to resubmit, not an error,
    /// so sweep drivers sleep (25 ms doubling to 400 ms) and retry until
    /// `max_wait` is spent.
    pub fn run_retrying(
        &mut self,
        spec: &ScenarioSpec,
        priority: i64,
        max_wait: Duration,
    ) -> Result<JobResult, ClientError> {
        let deadline = Instant::now() + max_wait;
        let mut backoff = Duration::from_millis(25);
        loop {
            match self.run(spec, priority) {
                Err(ClientError::Busy) => {
                    if Instant::now() + backoff > deadline {
                        return Err(ClientError::Busy);
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(400));
                }
                other => return other,
            }
        }
    }
}
