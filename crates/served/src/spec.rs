//! The wire-level scenario description shared by daemon, client and the
//! `--served` figure sweeps.

use cnlr::{FaultPlan, ScenarioBuilder, Scheme};
use wmn_mobility::MobilityConfig;
use wmn_sim::SimDuration;
use wmn_telemetry::escape_json;
use wmn_telemetry::json::{get, JsonValue};

/// A scenario job as it travels over the socket. Field set mirrors the
/// `wmn-sim` CLI: enough to express every served figure sweep (fig3's 8×8
/// load sweep, fig11's 6×6 churn sweep) exactly, while staying a flat JSON
/// object the hand-rolled parser can read.
///
/// Seeds are serialised as JSON *strings*: replication seeds are raw
/// 64-bit values that would lose precision through the parser's `f64`
/// number path.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Master seed.
    pub seed: u64,
    /// Scheme spec string ([`Scheme::parse`] grammar).
    pub scheme: String,
    /// Backbone grid rows.
    pub grid_rows: usize,
    /// Backbone grid columns.
    pub grid_cols: usize,
    /// Grid pitch, metres.
    pub pitch_m: f64,
    /// Number of random CBR flows.
    pub flows: usize,
    /// Per-flow packet rate, packets/s.
    pub pps: f64,
    /// Payload size, bytes.
    pub payload: usize,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Statistics warm-up, seconds.
    pub warmup_s: f64,
    /// Mobile client count (0 = static mesh).
    pub clients: usize,
    /// Mobile client max speed, m/s.
    pub client_speed: f64,
    /// Node churn as `(mtbf_s, mttr_s)`, absent for fault-free runs.
    pub churn: Option<(f64, f64)>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            seed: 1,
            scheme: "cnlr".into(),
            grid_rows: 8,
            grid_cols: 8,
            pitch_m: 180.0,
            flows: 20,
            pps: 4.0,
            payload: 512,
            duration_s: 60.0,
            warmup_s: 10.0,
            clients: 0,
            client_speed: 10.0,
            churn: None,
        }
    }
}

impl ScenarioSpec {
    /// Validate every field, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        Scheme::parse(&self.scheme)?;
        if self.grid_rows < 2 || self.grid_cols < 2 {
            return Err("grid must be at least 2x2".into());
        }
        if self.grid_rows * self.grid_cols + self.clients > 10_000 {
            return Err("more than 10000 nodes".into());
        }
        if !(self.pitch_m > 0.0 && self.pitch_m.is_finite()) {
            return Err("pitch_m must be positive".into());
        }
        if !(self.pps > 0.0 && self.pps.is_finite()) {
            return Err("pps must be positive".into());
        }
        if self.payload == 0 {
            return Err("payload must be positive".into());
        }
        if !(self.duration_s > 0.0 && self.duration_s.is_finite()) {
            return Err("duration_s must be positive".into());
        }
        if !(self.warmup_s >= 0.0 && self.warmup_s < self.duration_s) {
            return Err("warmup_s must be in [0, duration_s)".into());
        }
        if !(self.client_speed > 0.0 && self.client_speed.is_finite()) {
            return Err("client_speed must be positive".into());
        }
        if let Some((mtbf, mttr)) = self.churn {
            if !(mtbf > 0.0 && mtbf.is_finite() && mttr > 0.0 && mttr.is_finite()) {
                return Err("churn mtbf/mttr must be positive".into());
            }
        }
        Ok(())
    }

    /// Lower into a [`ScenarioBuilder`]. The mapping is fixed so that a
    /// spec submitted over the socket builds the *same* scenario as the
    /// equivalent one-shot figure binary — the byte-identity guarantee
    /// depends on it.
    pub fn to_builder(&self) -> Result<ScenarioBuilder, String> {
        self.validate()?;
        let scheme = Scheme::parse(&self.scheme)?;
        let mut b = ScenarioBuilder::new()
            .seed(self.seed)
            .grid(self.grid_rows, self.grid_cols, self.pitch_m)
            .scheme(scheme)
            .flows(self.flows, self.pps, self.payload)
            .duration(SimDuration::from_secs_f64(self.duration_s))
            .warmup(SimDuration::from_secs_f64(self.warmup_s));
        if self.clients > 0 {
            b = b.mobile_clients(
                self.clients,
                MobilityConfig::RandomWaypoint {
                    v_min: 1.0,
                    v_max: self.client_speed.max(1.0),
                    pause_s: 2.0,
                },
            );
        }
        if let Some((mtbf, mttr)) = self.churn {
            b = b.faults(FaultPlan::new().churn(
                SimDuration::from_secs_f64(mtbf),
                SimDuration::from_secs_f64(mttr),
            ));
        }
        Ok(b)
    }

    /// Whether a warm link-budget cache may be handed between runs of this
    /// spec's prefix. Mobility and faults bump the medium's position epoch
    /// / gain state mid-run, so only static fault-free worlds qualify (the
    /// medium re-checks on both export and import).
    pub fn warm_cache_eligible(&self) -> bool {
        self.clients == 0 && self.churn.is_none()
    }

    /// The spec's fields as a JSON fragment (no surrounding braces), for
    /// embedding in a request line.
    pub fn json_fields(&self) -> String {
        let mut s = format!(
            "\"seed\":\"{}\",\"scheme\":\"{}\",\"grid_rows\":{},\"grid_cols\":{},\
             \"pitch_m\":{},\"flows\":{},\"pps\":{},\"payload\":{},\
             \"duration_s\":{},\"warmup_s\":{}",
            self.seed,
            escape_json(&self.scheme),
            self.grid_rows,
            self.grid_cols,
            self.pitch_m,
            self.flows,
            self.pps,
            self.payload,
            self.duration_s,
            self.warmup_s,
        );
        if self.clients > 0 {
            s.push_str(&format!(
                ",\"clients\":{},\"client_speed\":{}",
                self.clients, self.client_speed
            ));
        }
        if let Some((mtbf, mttr)) = self.churn {
            s.push_str(&format!(",\"churn_mtbf_s\":{mtbf},\"churn_mttr_s\":{mttr}"));
        }
        s
    }

    /// Reconstruct a spec from parsed request pairs. Missing fields take
    /// their defaults; present fields must have the right shape.
    pub fn from_pairs(pairs: &[(String, JsonValue)]) -> Result<ScenarioSpec, String> {
        let mut spec = ScenarioSpec::default();
        if let Some(v) = get(pairs, "seed") {
            spec.seed = match v {
                JsonValue::Str(s) => s.parse::<u64>().map_err(|_| format!("bad seed '{s}'"))?,
                other => other.as_u64().ok_or("bad seed")?,
            };
        }
        if let Some(v) = get(pairs, "scheme") {
            spec.scheme = v.as_str().ok_or("scheme must be a string")?.to_string();
        }
        let usize_field = |key: &str, slot: &mut usize| -> Result<(), String> {
            if let Some(v) = get(pairs, key) {
                *slot = v.as_u64().ok_or_else(|| format!("bad {key}"))? as usize;
            }
            Ok(())
        };
        usize_field("grid_rows", &mut spec.grid_rows)?;
        usize_field("grid_cols", &mut spec.grid_cols)?;
        usize_field("flows", &mut spec.flows)?;
        usize_field("payload", &mut spec.payload)?;
        usize_field("clients", &mut spec.clients)?;
        let f64_field = |key: &str, slot: &mut f64| -> Result<(), String> {
            if let Some(v) = get(pairs, key) {
                *slot = v.as_f64().ok_or_else(|| format!("bad {key}"))?;
            }
            Ok(())
        };
        f64_field("pitch_m", &mut spec.pitch_m)?;
        f64_field("pps", &mut spec.pps)?;
        f64_field("duration_s", &mut spec.duration_s)?;
        f64_field("warmup_s", &mut spec.warmup_s)?;
        f64_field("client_speed", &mut spec.client_speed)?;
        let mtbf = get(pairs, "churn_mtbf_s").map(|v| v.as_f64().ok_or("bad churn_mtbf_s"));
        let mttr = get(pairs, "churn_mttr_s").map(|v| v.as_f64().ok_or("bad churn_mttr_s"));
        spec.churn = match (mtbf, mttr) {
            (Some(a), Some(b)) => Some((a?, b?)),
            (None, None) => None,
            _ => return Err("churn needs both churn_mtbf_s and churn_mttr_s".into()),
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_telemetry::parse_object;

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let spec = ScenarioSpec {
            // A seed above 2^53 would corrupt through an f64 number path.
            seed: 0xDEAD_BEEF_CAFE_F00D,
            scheme: "gossip:0.65".into(),
            grid_rows: 6,
            grid_cols: 7,
            pitch_m: 170.5,
            flows: 12,
            pps: 4.25,
            payload: 256,
            duration_s: 20.5,
            warmup_s: 5.25,
            clients: 3,
            client_speed: 12.5,
            churn: Some((30.0, 10.0)),
        };
        let line = format!("{{{}}}", spec.json_fields());
        let pairs = parse_object(&line).expect("parses");
        let back = ScenarioSpec::from_pairs(&pairs).expect("valid");
        assert_eq!(back, spec);
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let pairs = parse_object("{\"seed\":\"7\",\"flows\":3}").unwrap();
        let spec = ScenarioSpec::from_pairs(&pairs).unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.flows, 3);
        assert_eq!(spec.scheme, "cnlr");
        assert_eq!(spec.churn, None);
    }

    #[test]
    fn validation_rejects_nonsense() {
        for bad in [
            "{\"scheme\":\"nope\"}",
            "{\"grid_rows\":1}",
            "{\"pps\":0}",
            "{\"payload\":0}",
            "{\"duration_s\":0}",
            "{\"warmup_s\":99,\"duration_s\":10}",
            "{\"churn_mtbf_s\":30}",
            "{\"churn_mtbf_s\":0,\"churn_mttr_s\":10}",
        ] {
            let pairs = parse_object(bad).unwrap();
            assert!(ScenarioSpec::from_pairs(&pairs).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn builder_mapping_matches_fig3_preset() {
        // The served fig3 sweep must build the same scenario as
        // `presets::backbone(8, 0, seed).flows(x, 8.0, 512)`.
        let spec = ScenarioSpec {
            seed: 42,
            scheme: "flooding".into(),
            flows: 10,
            pps: 8.0,
            duration_s: 20.0,
            warmup_s: 5.0,
            ..ScenarioSpec::default()
        };
        let via_spec = spec.to_builder().unwrap();
        let direct = cnlr::presets::backbone(8, 0, 42)
            .scheme(Scheme::Flooding)
            .flows(10, 8.0, 512)
            .duration(SimDuration::from_secs(20))
            .warmup(SimDuration::from_secs(5));
        assert_eq!(
            via_spec.prefix_fingerprint(),
            direct.prefix_fingerprint(),
            "spec lowering drifted from the one-shot preset"
        );
    }

    #[test]
    fn warm_cache_eligibility() {
        let mut spec = ScenarioSpec::default();
        assert!(spec.warm_cache_eligible());
        spec.clients = 2;
        assert!(!spec.warm_cache_eligible());
        spec.clients = 0;
        spec.churn = Some((30.0, 10.0));
        assert!(!spec.warm_cache_eligible());
    }
}
