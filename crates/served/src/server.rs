//! The service core: Unix-socket listener, bounded priority queue, worker
//! pool, prefix-dedup cache and graceful drain.
//!
//! Correctness stance: the daemon never writes result files — it streams
//! metrics, counters and a per-job `RunManifest` back over the socket and
//! lets the *client* persist them, so a cancelled job can never leave a
//! partial CSV or manifest on disk. Dedup and warm-cache hand-offs are
//! pure performance; every guarantee is re-checked at the `cnlr` layer
//! (`prefix_fingerprint` equality on build, position bit-equality on
//! cache import).

use crate::proto::{fmt_f64, standard_metrics, JobResult, Request, PROTOCOL_VERSION};
use crate::spec::ScenarioSpec;
use cnlr::{LinkCacheSnapshot, ScenarioPrefix, Scheme};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use wmn_sim::{SimDuration, StopReason};
use wmn_telemetry::{
    escape_json, git_rev, sample_host, EventKind, EventSink, RunManifest, SharedSink,
    TelemetryConfig, TelemetryEvent,
};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix-domain socket path (removed and re-bound on start).
    pub socket: PathBuf,
    /// Worker threads. `0` is permitted (jobs queue but never run) — the
    /// backpressure tests use it to pin queue states deterministically.
    pub workers: usize,
    /// Maximum *queued* (not yet running) jobs before `run` is refused
    /// with `busy`.
    pub queue_cap: usize,
}

impl ServerConfig {
    /// Defaults: `WMN_THREADS`-derived worker count, queue capacity 64.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket: socket.into(),
            workers: wmn_metrics::default_threads(),
            queue_cap: 64,
        }
    }
}

/// Lifecycle of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// On a worker.
    Running,
    /// Completed successfully.
    Done,
    /// Cancelled (queued-cancel or mid-run interrupt).
    Cancelled,
    /// Build or validation failure.
    Failed,
}

impl JobState {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// Service-level counters (monotonic over the daemon's life).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub done: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs failed (bad spec / build error).
    pub failed: u64,
    /// `run` requests refused with `busy`.
    pub rejected_busy: u64,
    /// Scenario prefixes built from scratch.
    pub prefix_builds: u64,
    /// Jobs that reused a cached prefix.
    pub prefix_hits: u64,
    /// Jobs that imported a warm link-budget cache.
    pub warm_imports: u64,
    /// Warm link-budget caches exported into the dedup slot.
    pub warm_exports: u64,
}

/// One line streamed back to the submitting connection.
struct JobLine {
    text: String,
    /// True for the terminal `result` line.
    last: bool,
}

struct JobEntry {
    spec: ScenarioSpec,
    priority: i64,
    stream: bool,
    state: JobState,
    interrupt: Arc<AtomicBool>,
    reply: mpsc::Sender<JobLine>,
}

struct CoreState {
    next_id: u64,
    /// Queued job ids in submission order (selection scans for the best
    /// priority; FIFO within a level).
    queue: Vec<u64>,
    jobs: HashMap<u64, JobEntry>,
    draining: bool,
    stats: ServiceStats,
}

/// Scheme-independent build products shared across a prefix's jobs.
#[derive(Default)]
struct SlotInner {
    prefix: Option<Arc<ScenarioPrefix>>,
    warm: Option<Arc<LinkCacheSnapshot>>,
}

struct Core {
    state: Mutex<CoreState>,
    cv: Condvar,
    /// fingerprint → slot. The slot's own mutex is held across a prefix
    /// build so concurrent same-prefix jobs wait for one build instead of
    /// racing to duplicate it.
    prefixes: Mutex<HashMap<u64, Arc<Mutex<SlotInner>>>>,
    /// External shutdown request (signal handler or `shutdown` op).
    shutdown: AtomicBool,
    workers: usize,
    queue_cap: usize,
    /// Set once the drain has fully completed (workers idle, queue empty);
    /// the accept loop keeps answering status/cancel until then.
    finished: AtomicBool,
}

/// Why a `run` request was refused.
enum SubmitError {
    Busy,
    Draining,
}

impl Core {
    fn submit(
        &self,
        spec: ScenarioSpec,
        priority: i64,
        stream: bool,
        reply: mpsc::Sender<JobLine>,
    ) -> Result<u64, SubmitError> {
        let mut st = self.state.lock().unwrap();
        if st.draining {
            return Err(SubmitError::Draining);
        }
        if st.queue.len() >= self.queue_cap {
            st.stats.rejected_busy += 1;
            return Err(SubmitError::Busy);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobEntry {
                spec,
                priority,
                stream,
                state: JobState::Queued,
                interrupt: Arc::new(AtomicBool::new(false)),
                reply,
            },
        );
        st.queue.push(id);
        st.stats.submitted += 1;
        self.cv.notify_one();
        Ok(id)
    }

    /// Cancel a job in any state; returns the wire outcome string.
    fn cancel(&self, id: u64) -> &'static str {
        let mut st = self.state.lock().unwrap();
        let Some(state) = st.jobs.get(&id).map(|e| e.state) else {
            return "unknown";
        };
        match state {
            JobState::Queued => {
                st.queue.retain(|&q| q != id);
                {
                    let entry = st.jobs.get_mut(&id).unwrap();
                    entry.state = JobState::Cancelled;
                    let _ = entry.reply.send(JobLine {
                        text: JobResult::failure(id, "cancelled").to_line(),
                        last: true,
                    });
                }
                st.stats.cancelled += 1;
                "cancelled"
            }
            JobState::Running => {
                st.jobs[&id].interrupt.store(true, Ordering::SeqCst);
                "cancelling"
            }
            _ => "finished",
        }
    }

    fn begin_drain(&self) {
        let mut st = self.state.lock().unwrap();
        st.draining = true;
        self.cv.notify_all();
    }

    fn status_line(&self) -> String {
        let st = self.state.lock().unwrap();
        let running = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count();
        let s = st.stats;
        format!(
            "{{\"ok\":true,\"v\":{PROTOCOL_VERSION},\"queued\":{},\"running\":{running},\
             \"submitted\":{},\"done\":{},\"cancelled\":{},\"failed\":{},\
             \"rejected_busy\":{},\"capacity\":{},\"workers\":{},\"draining\":{},\
             \"prefix_builds\":{},\"prefix_hits\":{},\"warm_imports\":{},\"warm_exports\":{}}}",
            st.queue.len(),
            s.submitted,
            s.done,
            s.cancelled,
            s.failed,
            s.rejected_busy,
            self.queue_cap,
            self.workers,
            st.draining,
            s.prefix_builds,
            s.prefix_hits,
            s.warm_imports,
            s.warm_exports,
        )
    }

    fn jobs_line(&self) -> String {
        let st = self.state.lock().unwrap();
        let mut ids: Vec<u64> = st.jobs.keys().copied().collect();
        ids.sort_unstable();
        let states: Vec<String> = ids
            .iter()
            .map(|id| format!("\"{}\"", st.jobs[id].state.name()))
            .collect();
        let schemes: Vec<String> = ids
            .iter()
            .map(|id| format!("\"{}\"", escape_json(&st.jobs[id].spec.scheme)))
            .collect();
        let seeds: Vec<String> = ids
            .iter()
            .map(|id| format!("\"{}\"", st.jobs[id].spec.seed))
            .collect();
        let priorities: Vec<String> = ids
            .iter()
            .map(|id| st.jobs[id].priority.to_string())
            .collect();
        let ids_s: Vec<String> = ids.iter().map(u64::to_string).collect();
        format!(
            "{{\"ok\":true,\"ids\":[{}],\"states\":[{}],\"schemes\":[{}],\
             \"seeds\":[{}],\"priorities\":[{}]}}",
            ids_s.join(","),
            states.join(","),
            schemes.join(","),
            seeds.join(","),
            priorities.join(","),
        )
    }

    fn set_state(&self, id: u64, state: JobState) {
        let mut st = self.state.lock().unwrap();
        if let Some(e) = st.jobs.get_mut(&id) {
            e.state = state;
        }
        match state {
            JobState::Done => st.stats.done += 1,
            JobState::Cancelled => st.stats.cancelled += 1,
            JobState::Failed => st.stats.failed += 1,
            _ => {}
        }
    }

    fn bump<F: FnOnce(&mut ServiceStats)>(&self, f: F) {
        f(&mut self.state.lock().unwrap().stats);
    }
}

/// Forwards 1 Hz probe events onto the job's reply channel as `probe`
/// stream lines; everything else is discarded (full traces stay a
/// client-side concern via `wmn-sim`).
struct ProbeForwardSink {
    job: u64,
    reply: mpsc::Sender<JobLine>,
}

impl EventSink for ProbeForwardSink {
    fn record(&mut self, ev: &TelemetryEvent) {
        if !matches!(
            ev.kind,
            EventKind::NodeProbe { .. } | EventKind::EngineProbe { .. }
        ) {
            return;
        }
        // Splice the job tag into the event's own JSON object.
        let body = ev.to_jsonl();
        let _ = self.reply.send(JobLine {
            text: format!("{{\"stream\":\"probe\",\"job\":{},{}", self.job, &body[1..]),
            last: false,
        });
    }
}

/// A running service instance.
pub struct Server {
    core: Arc<Core>,
    socket: PathBuf,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind the socket and start the worker pool and accept loop.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        let core = Arc::new(Core {
            state: Mutex::new(CoreState {
                next_id: 1,
                queue: Vec::new(),
                jobs: HashMap::new(),
                draining: false,
                stats: ServiceStats::default(),
            }),
            cv: Condvar::new(),
            prefixes: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            workers: cfg.workers,
            queue_cap: cfg.queue_cap,
            finished: AtomicBool::new(false),
        });
        let worker_handles: Vec<_> = (0..cfg.workers)
            .map(|_| {
                let core = core.clone();
                std::thread::spawn(move || worker_loop(&core))
            })
            .collect();
        let accept_core = core.clone();
        let accept_handle = std::thread::spawn(move || accept_loop(&accept_core, listener));
        Ok(Server {
            core,
            socket: cfg.socket,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// Ask the service to drain: in-flight jobs finish, new submissions
    /// are refused with `draining`. Idempotent; also triggered by the
    /// `shutdown` op.
    pub fn request_shutdown(&self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        self.core.begin_drain();
    }

    /// Whether a shutdown/drain has been requested (by either side).
    pub fn shutdown_requested(&self) -> bool {
        self.core.shutdown.load(Ordering::SeqCst)
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        self.core.state.lock().unwrap().stats
    }

    /// Drain and wait for every thread; removes the socket file. Returns
    /// the final counters.
    pub fn join(mut self) -> ServiceStats {
        self.request_shutdown();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // Workers are gone: anything still queued (possible only with a
        // zero-worker pool) is cancelled so waiting submitters get their
        // terminal line instead of a silent hang.
        {
            let mut st = self.core.state.lock().unwrap();
            let leftover: Vec<u64> = st.queue.drain(..).collect();
            for id in leftover {
                if let Some(e) = st.jobs.get_mut(&id) {
                    e.state = JobState::Cancelled;
                    let _ = e.reply.send(JobLine {
                        text: JobResult::failure(id, "cancelled").to_line(),
                        last: true,
                    });
                    st.stats.cancelled += 1;
                }
            }
        }
        self.core.finished.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.socket);
        self.core.state.lock().unwrap().stats
    }
}

fn accept_loop(core: &Arc<Core>, listener: UnixListener) {
    // Stays alive through the drain so status/jobs/cancel keep answering;
    // exits only once the drain has fully completed.
    while !core.finished.load(Ordering::SeqCst) {
        if core.shutdown.load(Ordering::SeqCst) {
            core.begin_drain();
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let _ = stream.set_nonblocking(false);
                let core = core.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(&core, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_connection(core: &Arc<Core>, stream: UnixStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF: client closed.
        }
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(e) => {
                writeln!(writer, "{{\"ok\":false,\"error\":\"{}\"}}", escape_json(&e))?;
            }
            Ok(Request::Ping) => {
                writeln!(writer, "{{\"ok\":true,\"pong\":{PROTOCOL_VERSION}}}")?;
            }
            Ok(Request::Status) => {
                writeln!(writer, "{}", core.status_line())?;
            }
            Ok(Request::Jobs) => {
                writeln!(writer, "{}", core.jobs_line())?;
            }
            Ok(Request::Cancel { job }) => {
                let outcome = core.cancel(job);
                let ok = outcome != "unknown";
                writeln!(
                    writer,
                    "{{\"ok\":{ok},\"job\":{job},\"outcome\":\"{outcome}\"}}"
                )?;
            }
            Ok(Request::Shutdown) => {
                writeln!(writer, "{{\"ok\":true,\"draining\":true}}")?;
                core.shutdown.store(true, Ordering::SeqCst);
                core.begin_drain();
            }
            Ok(Request::Run {
                spec,
                priority,
                stream: want_stream,
            }) => {
                let (tx, rx) = mpsc::channel();
                match core.submit(spec, priority, want_stream, tx) {
                    Err(SubmitError::Busy) => {
                        writeln!(writer, "{{\"ok\":false,\"error\":\"busy\"}}")?;
                    }
                    Err(SubmitError::Draining) => {
                        writeln!(writer, "{{\"ok\":false,\"error\":\"draining\"}}")?;
                    }
                    Ok(id) => {
                        writeln!(writer, "{{\"ok\":true,\"job\":{id}}}")?;
                        writer.flush()?;
                        // Pump stream lines until the terminal result. A
                        // write failure means the client vanished: cancel
                        // the job rather than burn a worker for nobody.
                        for jl in rx {
                            if writeln!(writer, "{}", jl.text).is_err() {
                                core.cancel(id);
                                break;
                            }
                            if jl.last {
                                break;
                            }
                            writer.flush()?;
                        }
                    }
                }
            }
        }
        writer.flush()?;
    }
}

fn worker_loop(core: &Arc<Core>) {
    loop {
        let claimed = {
            let mut st = core.state.lock().unwrap();
            loop {
                // Best = highest priority; FIFO (lowest queue index) within
                // a level.
                let best = st
                    .queue
                    .iter()
                    .enumerate()
                    .max_by(|(ai, &a), (bi, &b)| {
                        let (pa, pb) = (st.jobs[&a].priority, st.jobs[&b].priority);
                        pa.cmp(&pb).then(bi.cmp(ai))
                    })
                    .map(|(i, _)| i);
                if let Some(i) = best {
                    let id = st.queue.remove(i);
                    let e = st.jobs.get_mut(&id).unwrap();
                    e.state = JobState::Running;
                    break Some((
                        id,
                        e.spec.clone(),
                        e.stream,
                        e.interrupt.clone(),
                        e.reply.clone(),
                    ));
                }
                if st.draining {
                    break None;
                }
                st = core.cv.wait(st).unwrap();
            }
        };
        match claimed {
            Some((id, spec, stream, interrupt, reply)) => {
                run_job(core, id, &spec, stream, &interrupt, &reply)
            }
            None => return,
        }
    }
}

fn run_job(
    core: &Arc<Core>,
    id: u64,
    spec: &ScenarioSpec,
    stream: bool,
    interrupt: &Arc<AtomicBool>,
    reply: &mpsc::Sender<JobLine>,
) {
    let t0 = std::time::Instant::now();
    let fail = |msg: String| {
        core.set_state(id, JobState::Failed);
        let _ = reply.send(JobLine {
            text: JobResult::failure(id, msg).to_line(),
            last: true,
        });
    };
    let builder = match spec.to_builder() {
        Ok(b) => b,
        Err(e) => return fail(format!("bad spec: {e}")),
    };
    let fp = builder.prefix_fingerprint();
    let slot = {
        let mut map = core.prefixes.lock().unwrap();
        // Crude bound: a figure sweep reuses a handful of prefixes; a
        // pathological stream of distinct ones just flushes the cache.
        if map.len() >= 64 && !map.contains_key(&fp) {
            map.clear();
        }
        map.entry(fp)
            .or_insert_with(|| Arc::new(Mutex::new(SlotInner::default())))
            .clone()
    };
    let (prefix, warm_snap, prefix_reused) = {
        let mut inner = slot.lock().unwrap();
        let (prefix, reused) = match &inner.prefix {
            Some(p) => (p.clone(), true),
            None => match builder.build_prefix() {
                Ok(p) => {
                    let p = Arc::new(p);
                    inner.prefix = Some(p.clone());
                    (p, false)
                }
                Err(e) => return fail(format!("build failed: {e}")),
            },
        };
        let warm = if spec.warm_cache_eligible() {
            inner.warm.clone()
        } else {
            None
        };
        (prefix, warm, reused)
    };
    core.bump(|s| {
        if prefix_reused {
            s.prefix_hits += 1;
        } else {
            s.prefix_builds += 1;
        }
    });
    let mut builder = builder;
    if stream {
        let sink: SharedSink = Arc::new(Mutex::new(ProbeForwardSink {
            job: id,
            reply: reply.clone(),
        }));
        builder = builder
            .telemetry(TelemetryConfig {
                enabled: true,
                trace_path: None,
                probe_interval: Some(SimDuration::from_secs(1)),
                profile: false,
            })
            .telemetry_sink(sink);
    } else {
        // Explicitly disabled (not from_env): a daemon inheriting
        // WMN_TELEMETRY must not change job event counts vs the one-shot
        // binaries run without it.
        builder = builder.telemetry(TelemetryConfig::disabled());
    }
    let mut sim = match builder.build_with_prefix(&prefix) {
        Ok(s) => s,
        Err(e) => return fail(format!("build failed: {e}")),
    };
    let warm_import = warm_snap.as_ref().is_some_and(|s| sim.import_link_cache(s));
    if warm_import {
        core.bump(|s| s.warm_imports += 1);
    }
    let (results, network, reason) = sim.interrupt(interrupt.clone()).run_full();
    let wall_s = t0.elapsed().as_secs_f64();
    if reason == StopReason::Interrupted {
        core.set_state(id, JobState::Cancelled);
        let _ = reply.send(JobLine {
            text: JobResult::failure(id, "cancelled").to_line(),
            last: true,
        });
        return;
    }
    if spec.warm_cache_eligible() && warm_snap.is_none() {
        if let Some(snapshot) = network.medium.export_link_cache() {
            let mut inner = slot.lock().unwrap();
            if inner.warm.is_none() {
                inner.warm = Some(Arc::new(snapshot));
                drop(inner);
                core.bump(|s| s.warm_exports += 1);
            }
        }
    }
    let manifest = job_manifest(id, spec, &results, wall_s, fp, prefix_reused, warm_import);
    let _ = reply.send(JobLine {
        text: format!(
            "{{\"stream\":\"manifest\",\"job\":{id},\"manifest\":\"{}\"}}",
            escape_json(&manifest.to_json())
        ),
        last: false,
    });
    let result = JobResult {
        job: id,
        ok: true,
        error: None,
        wall_s,
        events: results.events,
        metrics: standard_metrics(&results)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        counters: results
            .counters()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        pathloss_evals: results.medium.pathloss_evals,
        link_cache_hits: results.medium.link_cache_hits,
        link_budgets: results.medium.link_budgets,
        prefix_reused,
        warm_import,
    };
    core.set_state(id, JobState::Done);
    let _ = reply.send(JobLine {
        text: result.to_line(),
        last: true,
    });
}

/// The per-job provenance manifest streamed after a successful run. It
/// records the dedup facts (fingerprint, prefix reuse, warm-cache import)
/// next to the run's own counters — "the batch reports link-budget cache
/// reuse in its manifest" lives here and in the aggregated sweep manifest.
fn job_manifest(
    id: u64,
    spec: &ScenarioSpec,
    results: &cnlr::RunResults,
    wall_s: f64,
    fingerprint: u64,
    prefix_reused: bool,
    warm_import: bool,
) -> RunManifest {
    let host = sample_host();
    let scheme_label = Scheme::parse(&spec.scheme)
        .map(|s| s.label())
        .unwrap_or_else(|_| spec.scheme.clone());
    RunManifest {
        id: format!("job{id}"),
        title: "wmn-served job".into(),
        git_rev: git_rev(),
        schemes: vec![scheme_label],
        seeds: vec![spec.seed],
        xs: vec![],
        params: vec![
            ("scheme".into(), spec.scheme.clone()),
            (
                "grid".into(),
                format!("{}x{}", spec.grid_rows, spec.grid_cols),
            ),
            ("flows".into(), spec.flows.to_string()),
            ("pps".into(), fmt_f64(spec.pps)),
            ("duration_s".into(), fmt_f64(spec.duration_s)),
            ("warmup_s".into(), fmt_f64(spec.warmup_s)),
            ("prefix_fingerprint".into(), format!("{fingerprint:016x}")),
            ("prefix_reused".into(), prefix_reused.to_string()),
            ("warm_cache_import".into(), warm_import.to_string()),
            (
                "pathloss_evals".into(),
                results.medium.pathloss_evals.to_string(),
            ),
            (
                "link_cache_hits".into(),
                results.medium.link_cache_hits.to_string(),
            ),
            (
                "link_budgets".into(),
                results.medium.link_budgets.to_string(),
            ),
        ],
        wall_s,
        events_processed: results.events,
        host_cores: host.host_cores,
        peak_rss_bytes: host.peak_rss_bytes,
        counters: results.counters(),
        lineage: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_entry(priority: i64) -> JobEntry {
        let (tx, _rx) = mpsc::channel();
        JobEntry {
            spec: ScenarioSpec::default(),
            priority,
            stream: false,
            state: JobState::Queued,
            interrupt: Arc::new(AtomicBool::new(false)),
            reply: tx,
        }
    }

    #[test]
    fn selection_is_priority_then_fifo() {
        // Mirror of the worker's selection expression, driven directly.
        let mut st = CoreState {
            next_id: 5,
            queue: vec![1, 2, 3, 4],
            jobs: HashMap::new(),
            draining: false,
            stats: ServiceStats::default(),
        };
        for (id, prio) in [(1u64, 0i64), (2, 5), (3, 5), (4, 1)] {
            st.jobs.insert(id, dummy_entry(prio));
        }
        let mut order = Vec::new();
        while !st.queue.is_empty() {
            let i = st
                .queue
                .iter()
                .enumerate()
                .max_by(|(ai, &a), (bi, &b)| {
                    let (pa, pb) = (st.jobs[&a].priority, st.jobs[&b].priority);
                    pa.cmp(&pb).then(bi.cmp(ai))
                })
                .map(|(i, _)| i)
                .unwrap();
            order.push(st.queue.remove(i));
        }
        assert_eq!(order, vec![2, 3, 4, 1], "priority desc, FIFO within level");
    }
}
