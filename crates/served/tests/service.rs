//! End-to-end scheduler semantics over a real Unix socket: submissions,
//! byte-identity vs one-shot runs, prefix dedup accounting, bounded-queue
//! backpressure, cancellation and graceful drain.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use wmn_served::{standard_metrics, Client, ClientError, ScenarioSpec, Server, ServerConfig};

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wmn_served_test_{tag}_{}.sock", std::process::id()))
}

fn start(tag: &str, workers: usize, queue_cap: usize) -> (Server, PathBuf) {
    let path = sock(tag);
    let server = Server::start(ServerConfig {
        socket: path.clone(),
        workers,
        queue_cap,
    })
    .expect("daemon starts");
    (server, path)
}

fn tiny(seed: u64, scheme: &str) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        scheme: scheme.into(),
        grid_rows: 4,
        grid_cols: 4,
        pitch_m: 180.0,
        flows: 2,
        pps: 2.0,
        payload: 256,
        duration_s: 8.0,
        warmup_s: 2.0,
        ..ScenarioSpec::default()
    }
}

/// Direct one-shot run of the same spec, bypassing the service entirely.
fn direct(spec: &ScenarioSpec) -> cnlr::RunResults {
    spec.to_builder()
        .expect("valid spec")
        .telemetry(wmn_telemetry::TelemetryConfig::disabled())
        .build()
        .expect("builds")
        .run()
}

#[test]
fn served_job_matches_one_shot_bit_for_bit() {
    let (server, path) = start("match", 2, 8);
    let spec = tiny(11, "cnlr");
    let mut client = Client::connect(&path).expect("connect");
    let result = client.run(&spec, 0).expect("job runs");
    assert!(result.ok, "job failed: {:?}", result.error);

    let reference = direct(&spec);
    for (key, want) in standard_metrics(&reference) {
        let got = result.metric(key);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "metric {key} drifted through the service: {got} vs {want}"
        );
    }
    let want_counters: Vec<(String, u64)> = reference
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    assert_eq!(result.counters, want_counters, "counter registry drifted");
    assert_eq!(result.events, reference.events, "event count drifted");
    assert!(
        !result.prefix_reused,
        "first job of a prefix cannot be a hit"
    );
    server.join();
}

#[test]
fn prefix_dedup_shares_builds_and_warm_cache() {
    let (server, path) = start("dedup", 2, 16);
    let schemes = ["flooding", "gossip:0.65", "counter:3", "cnlr"];
    // Same seed + topology settings → one shared prefix across schemes.
    for (i, scheme) in schemes.iter().enumerate() {
        let spec = tiny(99, scheme);
        let mut client = Client::connect(&path).expect("connect");
        let result = client.run(&spec, 0).expect("job runs");
        assert!(result.ok, "{scheme} failed: {:?}", result.error);
        assert_eq!(result.prefix_reused, i > 0, "prefix reuse on job {i}");
        assert_eq!(result.warm_import, i > 0, "warm cache import on job {i}");

        // Dedup must be invisible in the results.
        let reference = direct(&tiny(99, scheme));
        for (key, want) in standard_metrics(&reference) {
            assert_eq!(
                result.metric(key).to_bits(),
                want.to_bits(),
                "{scheme}: metric {key} drifted under dedup"
            );
        }
        assert_eq!(result.events, reference.events, "{scheme}: events drifted");
    }
    let mut client = Client::connect(&path).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(status.prefix_builds, 1, "one prefix built");
    assert_eq!(status.prefix_hits, 3, "three jobs reused it");
    assert_eq!(status.warm_imports, 3, "three warm-cache imports");
    assert_eq!(status.warm_exports, 1, "one warm-cache export");
    assert_eq!(status.done, 4);
    server.join();
}

#[test]
fn bounded_queue_returns_busy_instead_of_blocking() {
    // Zero workers pin the queue deterministically: nothing ever drains.
    let (server, path) = start("busy", 0, 2);
    let mut submitters: Vec<Client> = Vec::new();
    for i in 0..2 {
        let mut c = Client::connect(&path).expect("connect");
        let id = c.submit(&tiny(i, "flooding"), 0, false).expect("queued");
        assert_eq!(id, i + 1);
        submitters.push(c);
    }
    // Queue is at capacity: the next submit must answer instantly.
    let t0 = Instant::now();
    let mut c3 = Client::connect(&path).expect("connect");
    match c3.submit(&tiny(9, "flooding"), 0, false) {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "busy response must not block"
    );

    // Queued jobs can be cancelled; the submitter gets a terminal line.
    let mut admin = Client::connect(&path).expect("connect");
    assert_eq!(admin.cancel(1).expect("cancel"), "cancelled");
    let result = submitters[0].wait(1, |_| {}).expect("terminal line");
    assert!(!result.ok);
    assert_eq!(result.error.as_deref(), Some("cancelled"));
    assert!(admin.cancel(777).is_err(), "unknown job is an error");

    let status = admin.status().expect("status");
    assert_eq!(status.queued, 1);
    assert_eq!(status.cancelled, 1);
    assert_eq!(status.rejected_busy, 1);

    // Drain with a non-empty queue and no workers: the leftover queued job
    // is cancelled, not leaked.
    let stats = server.join();
    assert_eq!(stats.cancelled, 2);
    let result = submitters[1].wait(2, |_| {}).expect("terminal line");
    assert_eq!(result.error.as_deref(), Some("cancelled"));
}

#[test]
fn cancel_mid_run_interrupts_and_reports_cancelled() {
    let (server, path) = start("cancel", 1, 4);
    // A deliberately long job (10 min simulated): only cancellation ends
    // it quickly.
    let big = ScenarioSpec {
        seed: 5,
        scheme: "flooding".into(),
        grid_rows: 6,
        grid_cols: 6,
        flows: 8,
        pps: 8.0,
        duration_s: 600.0,
        warmup_s: 10.0,
        ..ScenarioSpec::default()
    };
    let mut submitter = Client::connect(&path).expect("connect");
    let id = submitter.submit(&big, 0, false).expect("queued");
    let mut admin = Client::connect(&path).expect("connect");
    let t0 = Instant::now();
    while admin.status().expect("status").running == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "job never started running"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(admin.cancel(id).expect("cancel"), "cancelling");
    let result = submitter.wait(id, |_| {}).expect("terminal line");
    assert!(!result.ok, "cancelled job must not report success");
    assert_eq!(result.error.as_deref(), Some("cancelled"));
    // The daemon streams results instead of writing files, so a cancelled
    // job cannot leave partial artifacts: nothing arrived but the terminal
    // line, and no results/ dir appeared anywhere we ran.
    assert!(result.metrics.is_empty() && result.counters.is_empty());
    let stats = server.join();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.done, 0);
}

#[test]
fn drain_finishes_inflight_and_refuses_new_jobs() {
    let (server, path) = start("drain", 1, 4);
    let mut submitter = Client::connect(&path).expect("connect");
    let id = submitter
        .submit(&tiny(3, "cnlr"), 0, false)
        .expect("queued");

    let mut admin = Client::connect(&path).expect("connect");
    admin.shutdown().expect("shutdown acked");
    assert!(server.shutdown_requested());

    // New submissions are refused while draining…
    let mut late = Client::connect(&path).expect("accept loop still alive");
    match late.submit(&tiny(4, "cnlr"), 0, false) {
        Err(ClientError::Draining) => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    // …but the in-flight job still completes.
    let result = submitter.wait(id, |_| {}).expect("terminal line");
    assert!(result.ok, "drained job failed: {:?}", result.error);
    let stats = server.join();
    assert_eq!(stats.done, 1);
    assert_eq!(stats.submitted, 1);
}

#[test]
fn streaming_jobs_probe_without_perturbing_metrics() {
    let (server, path) = start("stream", 1, 4);
    let spec = tiny(21, "cnlr");
    let mut client = Client::connect(&path).expect("connect");
    let id = client.submit(&spec, 0, true).expect("queued");
    let mut probes = 0usize;
    let mut manifests = Vec::new();
    let result = client
        .wait(id, |line| {
            if line.contains("\"stream\":\"probe\"") {
                probes += 1;
            } else if line.contains("\"stream\":\"manifest\"") {
                manifests.push(line.to_string());
            }
        })
        .expect("terminal line");
    assert!(result.ok);
    // 8 simulated seconds at 1 Hz probing, >1 node per probe tick.
    assert!(probes >= 8, "expected probe stream, saw {probes} lines");
    assert_eq!(manifests.len(), 1, "exactly one manifest line");
    assert!(
        manifests[0].contains("prefix_fingerprint"),
        "manifest records dedup facts"
    );

    // Telemetry probes ride the event loop but must not perturb physics:
    // metrics stay bit-identical to the probe-free one-shot run.
    let reference = direct(&spec);
    for (key, want) in standard_metrics(&reference) {
        assert_eq!(
            result.metric(key).to_bits(),
            want.to_bits(),
            "metric {key} perturbed by probe streaming"
        );
    }
    assert!(
        result.events > reference.events,
        "probe ticks should add engine events"
    );
    server.join();
}

#[test]
fn bad_specs_fail_cleanly() {
    let (server, path) = start("badspec", 1, 4);
    let mut client = Client::connect(&path).expect("connect");
    let mut bad = tiny(1, "cnlr");
    bad.scheme = "warp-drive".into();
    match client.submit(&bad, 0, false) {
        Err(ClientError::Rejected(msg)) => {
            assert!(msg.contains("unknown scheme"), "got: {msg}")
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    // The connection stays usable after a rejected submit.
    let result = client.run(&tiny(1, "cnlr"), 0).expect("good job runs");
    assert!(result.ok);
    server.join();
}
