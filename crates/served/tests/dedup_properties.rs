//! Property tests for the dedup substrate: a batch of jobs sharing one
//! scenario prefix (and chaining a warm link-budget cache) must produce
//! results byte-identical to independent one-shot runs. This is the
//! invariant that lets the daemon hand worlds and caches between jobs at
//! all — "close" is not good enough for a memoization.

use cnlr::{LinkCacheSnapshot, RunResults, ScenarioBuilder, Scheme};
use proptest::prelude::*;
use wmn_sim::SimDuration;

/// Everything observable about a run except the medium's perf counters
/// (`pathloss_evals` / `link_cache_hits` differ across cache hand-offs by
/// design). Floats compare as raw bits.
fn signature(r: &RunResults) -> (String, [u64; 7], u64, u64, Vec<u64>, String, String) {
    (
        format!("{:?}", r.summary),
        r.medium.physics(),
        r.events,
        r.goodput_kbps.to_bits(),
        r.delivery_rate_pps.iter().map(|v| v.to_bits()).collect(),
        format!("{:?} {:?}", r.routing, r.mac),
        format!("{:?}", r.drops),
    )
}

fn base(seed: u64, scheme: Scheme, flows: usize) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .seed(seed)
        .grid(4, 4, 180.0)
        .scheme(scheme)
        .flows(flows, 2.0, 256)
        .duration(SimDuration::from_secs(8))
        .warmup(SimDuration::from_secs(2))
}

fn scheme_from(pick: u8) -> Scheme {
    let set = Scheme::evaluation_set();
    set[pick as usize % set.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The scheduler's exact sharing pattern: one prefix built once, every
    /// job assembled over it, a warm link-budget cache exported by the
    /// first completed run and imported by the rest.
    #[test]
    fn prefix_and_warm_cache_sharing_is_invisible(
        seed in 0u64..500,
        pick in 0u8..8,
        flows in 2usize..5,
    ) {
        let schemes: Vec<Scheme> =
            (0..3).map(|i| scheme_from(pick.wrapping_add(i))).collect();
        let prefix = base(seed, schemes[0].clone(), flows)
            .build_prefix()
            .expect("prefix builds");
        let mut warm: Option<LinkCacheSnapshot> = None;
        for scheme in schemes {
            let mut sim = base(seed, scheme.clone(), flows)
                .build_with_prefix(&prefix)
                .expect("assembles over shared prefix");
            if let Some(snap) = &warm {
                prop_assert!(
                    sim.import_link_cache(snap),
                    "static fault-free import must be accepted"
                );
            }
            let (shared, network, _reason) = sim.run_full();
            if warm.is_none() {
                warm = network.medium.export_link_cache();
                prop_assert!(warm.is_some(), "static fault-free export must succeed");
            }
            let independent = base(seed, scheme, flows)
                .build()
                .expect("one-shot builds")
                .run();
            prop_assert_eq!(signature(&shared), signature(&independent));
        }
    }

    /// Fingerprints gate sharing: scheme changes never move the
    /// fingerprint (that's the dedup axis), while prefix-relevant changes
    /// always do.
    #[test]
    fn fingerprint_tracks_exactly_the_prefix_inputs(
        seed in 0u64..1_000,
        pick_a in 0u8..8,
        pick_b in 0u8..8,
        flows in 2usize..5,
    ) {
        let fp = base(seed, scheme_from(pick_a), flows).prefix_fingerprint();
        prop_assert_eq!(
            base(seed, scheme_from(pick_b), flows).prefix_fingerprint(),
            fp,
            "scheme must not affect the prefix fingerprint"
        );
        prop_assert_ne!(
            base(seed.wrapping_add(1), scheme_from(pick_a), flows).prefix_fingerprint(),
            fp,
            "seed must move the fingerprint"
        );
        prop_assert_ne!(
            base(seed, scheme_from(pick_a), flows + 1).prefix_fingerprint(),
            fp,
            "flow count must move the fingerprint"
        );
        // Assembling with a mismatched prefix is refused, not mis-built.
        let prefix = base(seed, scheme_from(pick_a), flows)
            .build_prefix()
            .expect("prefix builds");
        let err = base(seed.wrapping_add(1), scheme_from(pick_a), flows)
            .build_with_prefix(&prefix)
            .err();
        prop_assert_eq!(err, Some(cnlr::BuildError::PrefixMismatch));
    }
}
