//! Property tests of the crash-tolerance layer: epoch-barrier checkpoints
//! and supervised recovery must be invisible in the results.
//!
//! Random region graphs with RNG-driven cascades are run four ways —
//! plain, supervised-with-checkpoints, crash-injected, and
//! resumed-from-a-random-mid-run-checkpoint — at worker counts {1, 2, 8}.
//! Every variant must produce bit-identical per-region logs and engine
//! reports. The file format itself is also property-tested: any corrupted
//! byte in a sealed checkpoint is refused with a structured error.

use proptest::prelude::*;
use wmn_sim::checkpoint::{self, ByteReader, ByteWriter, CheckpointError};
use wmn_sim::{
    CheckpointState, CrashPlan, Lookahead, RegionCtx, RegionWorld, ShardRunReport, ShardedEngine,
    SimDuration, SimRng, SimTime, StochasticCrash, SupervisorConfig,
};

/// A region whose behaviour depends on mutable state of every kind the
/// checkpoint must capture: an RNG stream position, a send counter, and
/// an observation log. Any state the snapshot misses diverges the run.
struct Hopper {
    id: u32,
    n: u32,
    rng: SimRng,
    sends: u32,
    log: Vec<(u64, u32, u32)>,
}

#[derive(Debug)]
enum Hop {
    Tick { k: u32 },
    Msg { from: u32, tag: u32 },
}

impl RegionWorld for Hopper {
    type Event = Hop;

    fn handle(&mut self, ev: Hop, ctx: &mut RegionCtx<'_, Hop>) {
        match ev {
            Hop::Tick { k } => {
                self.log.push((ctx.now().as_nanos(), u32::MAX, k));
                if k > 0 {
                    // Local cadence is RNG-jittered so the stream position
                    // is load-bearing state.
                    let jitter = SimDuration::from_micros(200 + self.rng.below(800));
                    ctx.after(jitter, Hop::Tick { k: k - 1 });
                }
                if self.rng.chance(0.4) {
                    let dst = self.rng.below(self.n as u64) as u32;
                    if dst != self.id {
                        let tag = self.sends;
                        self.sends += 1;
                        ctx.send(
                            dst,
                            ctx.now() + SimDuration::from_micros(250 + self.rng.below(500)),
                            Hop::Msg { from: self.id, tag },
                        );
                    }
                }
            }
            Hop::Msg { from, tag } => {
                self.log.push((ctx.now().as_nanos(), from, tag));
            }
        }
    }
}

impl CheckpointState for Hopper {
    fn encode_state(&self, out: &mut ByteWriter) {
        let (s, cached) = self.rng.save_state();
        for w in s {
            out.u64(w);
        }
        out.u8(cached.is_some() as u8);
        out.u64(cached.unwrap_or(0));
        out.u32(self.sends);
        out.u32(self.log.len() as u32);
        for &(t, from, tag) in &self.log {
            out.u64(t);
            out.u32(from);
            out.u32(tag);
        }
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        let s = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let cached = if r.u8()? != 0 {
            Some(r.u64()?)
        } else {
            r.u64()?;
            None
        };
        self.rng.restore_state(s, cached);
        self.sends = r.u32()?;
        let len = r.u32()? as usize;
        self.log.clear();
        for _ in 0..len {
            self.log.push((r.u64()?, r.u32()?, r.u32()?));
        }
        Ok(())
    }

    fn encode_event(event: &Hop, out: &mut ByteWriter) {
        match event {
            Hop::Tick { k } => {
                out.u8(0);
                out.u32(*k);
            }
            Hop::Msg { from, tag } => {
                out.u8(1);
                out.u32(*from);
                out.u32(*tag);
            }
        }
    }

    fn decode_event(r: &mut ByteReader<'_>) -> Result<Hop, CheckpointError> {
        match r.u8()? {
            0 => Ok(Hop::Tick { k: r.u32()? }),
            1 => Ok(Hop::Msg {
                from: r.u32()?,
                tag: r.u32()?,
            }),
            t => Err(CheckpointError::Corrupt(format!("bad hopper tag {t}"))),
        }
    }
}

fn hopper_engine(n: u32, seed: u64, budget: u32) -> ShardedEngine<Hopper> {
    let worlds: Vec<Hopper> = (0..n)
        .map(|i| Hopper {
            id: i,
            n,
            rng: SimRng::derive(seed, 0x484F5050, i as u64),
            sends: 0,
            log: Vec::new(),
        })
        .collect();
    let mut eng = ShardedEngine::new(
        worlds,
        Lookahead::uniform(n as usize, SimDuration::from_micros(250)),
        SimTime::from_secs(2),
    );
    for r in 0..n {
        eng.prime(
            r,
            SimTime::from_micros(11 * r as u64),
            Hop::Tick { k: budget },
        );
    }
    eng
}

fn logs(worlds: &[Hopper]) -> Vec<&[(u64, u32, u32)]> {
    worlds.iter().map(|w| w.log.as_slice()).collect()
}

fn assert_same(
    a: &ShardRunReport,
    wa: &[Hopper],
    b: &ShardRunReport,
    wb: &[Hopper],
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.events_processed, b.events_processed, "{}: events", what);
    prop_assert_eq!(a.epochs, b.epochs, "{}: epochs", what);
    prop_assert_eq!(a.cross_region, b.cross_region, "{}: cross", what);
    prop_assert_eq!(a.end_time, b.end_time, "{}: end time", what);
    prop_assert_eq!(logs(wa), logs(wb), "{}: logs", what);
    Ok(())
}

fn temp_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wmn_ckpt_prop_{tag}_{seed:x}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpointing, injected crashes, and resume-from-any-checkpoint are
    /// all invisible: every variant at every worker count reproduces the
    /// plain single-threaded run bit-for-bit.
    #[test]
    fn recovery_and_resume_are_invisible(
        seed in any::<u64>(),
        n in 2u32..7,
        budget in 4u32..40,
        crash_seed in any::<u64>(),
    ) {
        let (base, wbase) = hopper_engine(n, seed, budget).run(1);
        let dir = temp_dir("resume", seed);

        for threads in [1usize, 2, 8] {
            // Supervised with checkpoints + stochastic crashes.
            let cfg = SupervisorConfig {
                scenario: seed,
                checkpoint_dir: Some(dir.clone()),
                // Ticks land every 200–1000 µs, so a sub-millisecond
                // cadence guarantees several mid-run checkpoints even for
                // the smallest budgets.
                checkpoint_every: Some(SimDuration::from_micros(600)),
                crash_plan: CrashPlan {
                    scripted: vec![],
                    stochastic: Some(StochasticCrash { rate: 0.02, seed: crash_seed, max: 4 }),
                },
                ..SupervisorConfig::default()
            };
            let (rs, ws, sup) = hopper_engine(n, seed, budget)
                .run_supervised(threads, None, &cfg)
                .expect("supervised run");
            assert_same(&base, &wbase, &rs, &ws, "supervised")?;
            prop_assert!(sup.checkpoints_written >= 1);

            // Resume from a pseudo-random mid-run checkpoint at this
            // worker count (index derived from the seeds, not an RNG:
            // proptest shrinks better over pure inputs).
            let files = checkpoint::list_dir(&dir).expect("list");
            prop_assert!(!files.is_empty());
            let pick = (seed ^ crash_seed) as usize % files.len();
            let bytes = checkpoint::read_file(&files[pick].1).expect("read");
            let mut eng = hopper_engine(n, seed, budget);
            let meta = eng.restore(&bytes, seed).expect("restore");
            let (rr, wr, sup2) = eng
                .run_supervised(threads, None, &SupervisorConfig::default())
                .expect("resumed run");
            prop_assert_eq!(sup2.resumed_from_epoch, Some(meta.epoch));
            assert_same(&base, &wbase, &rr, &wr, "resumed")?;

            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Flipping any single byte of a sealed checkpoint is always detected:
    /// a structured error, never a panic, never a silent wrong resume.
    #[test]
    fn any_corrupted_byte_is_refused(
        seed in any::<u64>(),
        flip_at in any::<u64>(),
        flip_with in 1u8..=255,
    ) {
        let payload: Vec<u8> = (0..64).map(|i| (seed as u8).wrapping_add(i)).collect();
        let sealed = checkpoint::seal(seed, 7, 1_000_000, 3, 42, &payload);
        prop_assert!(checkpoint::inspect(&sealed).is_ok());

        let mut bad = sealed.clone();
        let at = (flip_at % bad.len() as u64) as usize;
        bad[at] ^= flip_with;
        match checkpoint::inspect(&bad) {
            Ok(meta) => {
                // The only survivable flips are inside header fields that
                // the checksum does not bind… and the checksum binds all
                // of them, so reaching here means detection failed.
                prop_assert!(false, "corruption at byte {at} undetected: {meta:?}");
            }
            Err(
                CheckpointError::Corrupt(_)
                | CheckpointError::VersionMismatch { .. }
                | CheckpointError::ScenarioMismatch { .. },
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
    }

    /// Truncating a checkpoint anywhere is refused too.
    #[test]
    fn any_truncation_is_refused(seed in any::<u64>(), keep in any::<u64>()) {
        let payload: Vec<u8> = (0..64).map(|i| (seed as u8).wrapping_mul(i)).collect();
        let sealed = checkpoint::seal(seed, 7, 1_000_000, 3, 42, &payload);
        let keep = (keep % sealed.len() as u64) as usize; // strictly shorter than full
        prop_assert!(matches!(
            checkpoint::inspect(&sealed[..keep]),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
