//! Property tests of the shard-parallel conservative engine.
//!
//! Random region graphs with random event cascades, executed at random
//! worker counts, must uphold the engine's two load-bearing contracts:
//!
//! 1. **The lookahead bound is never violated**: every cross-region event
//!    is observed by its receiver no earlier than `sent_at + δ(src → dst)`,
//!    and regions observe time monotonically.
//! 2. **The deterministic merge is a total order**: no two cross-region
//!    events share a `(timestamp, source region, emission seq)` key, and
//!    the order every receiver observes is exactly the sorted order —
//!    independent of the worker count.

use proptest::prelude::*;
use wmn_sim::shard::NEVER;
use wmn_sim::{Lookahead, RegionCtx, RegionWorld, ShardedEngine, SimDuration, SimRng, SimTime};

/// Build a random all-pairs lookahead matrix with deltas in [1, 10] ms.
fn random_lookahead(n: usize, seed: u64) -> Lookahead {
    let mut rng = SimRng::derive(seed, 0x4C4F4F4B, 0);
    let deltas: Vec<SimDuration> = (0..n * n)
        .map(|_| SimDuration::from_micros(1_000 + rng.below(9_000)))
        .collect();
    Lookahead::from_fn(n, move |a, b| deltas[a as usize * n + b as usize])
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Stamp {
    src: u32,
    sent_at: SimTime,
    /// The sender's global send counter (monotone per sender), which within
    /// any one epoch equals its outbox emission order.
    counter: u32,
}

enum Ev {
    Seed { budget: u32 },
    Hop { budget: u32, stamp: Stamp },
}

/// A region that cascades events across random edges, checking the
/// conservative bound on every arrival and logging the observed order.
struct Cascade {
    id: u32,
    n: u32,
    rng: SimRng,
    lookahead: Lookahead,
    sends: u32,
    log: Vec<(SimTime, Stamp)>,
}

impl Cascade {
    fn fan_out(&mut self, budget: u32, ctx: &mut RegionCtx<'_, Ev>) {
        if budget == 0 {
            return;
        }
        let now = ctx.now();
        for _ in 0..1 + self.rng.below(2) {
            let dst = self.rng.below(self.n as u64) as u32;
            if dst == self.id {
                // Local events exercise queue interleaving with arrivals.
                ctx.after(
                    SimDuration::from_micros(self.rng.below(500)),
                    Ev::Seed { budget: budget - 1 },
                );
                continue;
            }
            let bound = self.lookahead.between(self.id, dst);
            // Sometimes exactly the tightest legal time, sometimes later.
            let slack = if self.rng.chance(0.3) {
                SimDuration::ZERO
            } else {
                SimDuration::from_micros(self.rng.below(5_000))
            };
            let stamp = Stamp {
                src: self.id,
                sent_at: now,
                counter: self.sends,
            };
            self.sends += 1;
            ctx.send(
                dst,
                now + bound + slack,
                Ev::Hop {
                    budget: budget - 1,
                    stamp,
                },
            );
        }
    }
}

impl RegionWorld for Cascade {
    type Event = Ev;

    fn handle(&mut self, event: Ev, ctx: &mut RegionCtx<'_, Ev>) {
        match event {
            Ev::Seed { budget } => self.fan_out(budget, ctx),
            Ev::Hop { budget, stamp } => {
                let bound = self.lookahead.between(stamp.src, self.id);
                assert!(
                    ctx.now() >= stamp.sent_at + bound,
                    "lookahead bound violated: {} -> {} arrived at {} < {} + {}",
                    stamp.src,
                    self.id,
                    ctx.now(),
                    stamp.sent_at,
                    bound
                );
                self.log.push((ctx.now(), stamp));
                self.fan_out(budget, ctx);
            }
        }
    }
}

fn run_cascade(n: usize, seed: u64, budget: u32, threads: usize) -> Vec<Vec<(SimTime, Stamp)>> {
    let lookahead = random_lookahead(n, seed);
    let worlds: Vec<Cascade> = (0..n)
        .map(|i| Cascade {
            id: i as u32,
            n: n as u32,
            rng: SimRng::derive(seed, 0xCA5CADE, i as u64),
            lookahead: random_lookahead(n, seed),
            sends: 0,
            log: Vec::new(),
        })
        .collect();
    let mut engine =
        ShardedEngine::new(worlds, lookahead, SimTime::from_secs(60)).with_event_budget(20_000);
    for i in 0..n {
        engine.prime(
            i as u32,
            SimTime::from_micros(10 + i as u64 * 7),
            Ev::Seed { budget },
        );
    }
    let (_, worlds) = engine.run(threads);
    worlds.into_iter().map(|w| w.log).collect()
}

proptest! {
    /// The influence closure is a shortest path: never above the direct
    /// bound, positive for every finite entry, and obeying the triangle
    /// inequality through any intermediate region.
    #[test]
    fn closure_is_shortest_path(seed in any::<u64>(), n in 2usize..6) {
        let la = random_lookahead(n, seed);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                if a != b {
                    prop_assert!(la.influence(a, b) <= la.between(a, b));
                }
                let d_ab = la.influence(a, b);
                prop_assert!(d_ab == NEVER || d_ab > SimDuration::ZERO);
                for c in 0..n as u32 {
                    let (d_ac, d_cb) = (la.influence(a, c), la.influence(c, b));
                    if d_ac != NEVER && d_cb != NEVER {
                        prop_assert!(d_ab <= d_ac + d_cb,
                            "triangle violated: D({a},{b}) > D({a},{c}) + D({c},{b})");
                    }
                }
            }
        }
    }

    /// Random cascades at random worker counts never violate the
    /// conservative bound (asserted inside every receiver) and every
    /// region observes time monotonically.
    #[test]
    fn lookahead_bound_never_violated(
        seed in any::<u64>(),
        n in 2usize..6,
        budget in 1u32..12,
        threads in 1usize..9,
    ) {
        let logs = run_cascade(n, seed, budget, threads);
        for log in &logs {
            prop_assert!(log.windows(2).all(|w| w[0].0 <= w[1].0),
                "receiver observed time going backwards");
        }
    }

    /// The merge key `(timestamp, source, emission seq)` is a total order:
    /// no receiver ever observes two cross-region events with the same key,
    /// and simultaneous arrivals are delivered in `(source, emission)`
    /// order.
    #[test]
    fn merge_is_a_total_order(seed in any::<u64>(), n in 2usize..6, budget in 1u32..12) {
        let logs = run_cascade(n, seed, budget, 3);
        for log in &logs {
            for w in log.windows(2) {
                let ((ta, sa), (tb, sb)) = (w[0], w[1]);
                prop_assert!(ta <= tb);
                if ta == tb {
                    // Same-instant arrivals at one receiver are merged in
                    // one epoch, ordered by (src, emission counter) — and
                    // the key is strictly increasing, never equal.
                    prop_assert!(
                        (sa.src, sa.counter) < (sb.src, sb.counter),
                        "tie or misordering at {ta}: {sa:?} then {sb:?}"
                    );
                }
            }
        }
    }

    /// Worker count is invisible: the complete per-region arrival logs are
    /// bit-identical between 1 thread and any other count.
    #[test]
    fn worker_count_never_changes_observed_order(
        seed in any::<u64>(),
        n in 2usize..6,
        budget in 1u32..12,
        threads in 2usize..9,
    ) {
        let serial = run_cascade(n, seed, budget, 1);
        let parallel = run_cascade(n, seed, budget, threads);
        prop_assert_eq!(serial, parallel);
    }
}
