//! Property-based tests of the simulation substrate.

use proptest::prelude::*;
use wmn_sim::{EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    /// below(n) is always within range, for any seed and bound.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// range_f64 stays within its interval.
    #[test]
    fn rng_range_f64_in_range(seed in any::<u64>(), lo in -1e9f64..1e9, width in 1e-6f64..1e9) {
        let mut rng = SimRng::new(seed);
        let hi = lo + width;
        for _ in 0..16 {
            let v = rng.range_f64(lo, hi);
            prop_assert!(v >= lo && v < hi, "{v} outside [{lo}, {hi})");
        }
    }

    /// Derived streams are reproducible.
    #[test]
    fn rng_derive_reproducible(seed in any::<u64>(), dom in any::<u64>(), idx in any::<u64>()) {
        let mut a = SimRng::derive(seed, dom, idx);
        let mut b = SimRng::derive(seed, dom, idx);
        prop_assert_eq!(a.next_u64(), b.next_u64());
        prop_assert_eq!(a.f64().to_bits(), b.f64().to_bits());
    }

    /// Exponential draws are non-negative and finite.
    #[test]
    fn rng_exponential_valid(seed in any::<u64>(), mean in 1e-9f64..1e9) {
        let mut rng = SimRng::new(seed);
        for _ in 0..16 {
            let v = rng.exponential(mean);
            prop_assert!(v.is_finite() && v >= 0.0);
        }
    }

    /// Shuffle yields a permutation.
    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), len in 0usize..64) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// The event queue pops in non-decreasing time order with FIFO ties,
    /// for any schedule.
    #[test]
    fn queue_is_stable_priority_order(times in prop::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, (pt, i))) = q.pop() {
            prop_assert_eq!(t.as_nanos(), pt);
            if let Some((lt, li)) = last {
                prop_assert!(pt > lt || (pt == lt && i > li), "order violated");
            }
            last = Some((pt, i));
        }
    }

    /// Time arithmetic: (t + d) − t == d and (t + d) − d == t.
    #[test]
    fn time_arithmetic_inverts(t in 0u64..(1u64 << 62), d in 0u64..(1u64 << 60)) {
        let t = SimTime(t);
        let d = SimDuration(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!(t.since(t + d), SimDuration::ZERO);
        prop_assert_eq!((t + d).since(t), d);
    }

    /// mul_f64 by reciprocal factors round-trips within 1 ns per unit.
    #[test]
    fn duration_scale_bounds(d in 0u64..(1u64 << 40), k in 0.0f64..1000.0) {
        let dur = SimDuration(d);
        let scaled = dur.mul_f64(k);
        let expect = d as f64 * k;
        prop_assert!((scaled.as_nanos() as f64 - expect).abs() <= 0.5 + expect * 1e-12);
    }
}
