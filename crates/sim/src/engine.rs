//! The discrete-event run loop.
//!
//! The engine is generic over the event type so that substrate crates (MAC,
//! routing, …) stay independent: the integration crate defines one unified
//! event enum and a `World` that dispatches on it. The engine owns the clock
//! and the future-event list; the world owns all model state.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Scheduling interface handed to the world while it processes an event.
///
/// Splitting this off from the full engine keeps the borrow simple: the world
/// gets `&mut Scheduler<E>` while the engine retains the dispatch loop.
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    horizon: SimTime,
    stopped: bool,
}

impl<E> Scheduler<E> {
    fn new(horizon: SimTime) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(1024),
            horizon,
            stopped: false,
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire after `delay`.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedule `event` at an absolute time (which must not be in the past).
    #[inline]
    pub fn at(&mut self, time: SimTime, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.queue.schedule(time, event);
    }

    /// Schedule `event` to fire immediately (after all other events already
    /// scheduled for the current instant).
    #[inline]
    pub fn now_event(&mut self, event: E) {
        self.queue.schedule(self.now, event);
    }

    /// Request the run loop to stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// The configured end-of-simulation time.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A model that consumes events.
pub trait World {
    /// The unified event type.
    type Event;

    /// Process one event. `sched.now()` is the event's activation time.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Why the run loop returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The future-event list drained completely.
    QueueEmpty,
    /// The next event lay beyond the configured horizon.
    HorizonReached,
    /// The world called [`Scheduler::stop`].
    Stopped,
    /// The event budget was exhausted (runaway protection).
    EventBudget,
    /// An external interrupt flag ([`Engine::with_interrupt`]) was raised.
    Interrupted,
}

/// Summary of a completed run.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Why the loop ended.
    pub reason: StopReason,
    /// Number of events dispatched.
    pub events_processed: u64,
    /// Total events ever scheduled.
    pub events_scheduled: u64,
    /// Final simulation time.
    pub end_time: SimTime,
}

/// The discrete-event engine.
pub struct Engine<E> {
    sched: Scheduler<E>,
    events_processed: u64,
    event_budget: u64,
    /// Cooperative cancellation flag, polled every `INTERRUPT_MASK + 1`
    /// events so the hot loop stays branch-cheap. A flag that is never set
    /// leaves the run byte-identical to one without the flag installed.
    interrupt: Option<Arc<AtomicBool>>,
}

/// The interrupt flag is polled when `events_processed & INTERRUPT_MASK == 0`
/// (one relaxed atomic load every 1024 events).
const INTERRUPT_MASK: u64 = 1023;

impl<E> Engine<E> {
    /// Create an engine that will run until `horizon` (exclusive of events
    /// scheduled strictly after it).
    pub fn new(horizon: SimTime) -> Self {
        Engine {
            sched: Scheduler::new(horizon),
            events_processed: 0,
            event_budget: u64::MAX,
            interrupt: None,
        }
    }

    /// Cap the total number of dispatched events (runaway protection for
    /// tests and fuzzing).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Install a cooperative cancellation flag: once another thread (or a
    /// signal handler) sets it, the run loop stops with
    /// [`StopReason::Interrupted`] within 1024 events. The flag is only
    /// polled, never cleared, so one flag can fan out to many engines.
    pub fn with_interrupt(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// Schedule an initial event before the run starts.
    pub fn prime(&mut self, time: SimTime, event: E) {
        self.sched.at(time, event);
    }

    /// Access the scheduler (e.g. for priming many events).
    pub fn scheduler(&mut self) -> &mut Scheduler<E> {
        &mut self.sched
    }

    /// Run the event loop to completion against `world`.
    pub fn run<W: World<Event = E>>(mut self, world: &mut W) -> RunReport {
        let reason = loop {
            if self.sched.stopped {
                break StopReason::Stopped;
            }
            if self.events_processed >= self.event_budget {
                break StopReason::EventBudget;
            }
            if self.events_processed & INTERRUPT_MASK == 0 {
                if let Some(flag) = &self.interrupt {
                    if flag.load(Ordering::Relaxed) {
                        break StopReason::Interrupted;
                    }
                }
            }
            let Some(next_time) = self.sched.queue.peek_time() else {
                break StopReason::QueueEmpty;
            };
            if next_time > self.sched.horizon {
                // Do not advance the clock past the horizon.
                self.sched.now = self.sched.horizon;
                break StopReason::HorizonReached;
            }
            let (time, event) = self.sched.queue.pop().expect("peeked event vanished");
            debug_assert!(time >= self.sched.now, "time went backwards");
            self.sched.now = time;
            self.events_processed += 1;
            world.handle(event, &mut self.sched);
        };
        RunReport {
            reason,
            events_processed: self.events_processed,
            events_scheduled: self.sched.queue.scheduled_total(),
            end_time: self.sched.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that counts down: each event schedules the next one until zero.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl World for Countdown {
        type Event = ();
        fn handle(&mut self, _e: (), sched: &mut Scheduler<()>) {
            self.fired_at.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(SimDuration::from_secs(1), ());
            }
        }
    }

    #[test]
    fn countdown_runs_to_queue_empty() {
        let mut w = Countdown {
            remaining: 5,
            fired_at: vec![],
        };
        let mut engine = Engine::new(SimTime::from_secs(100));
        engine.prime(SimTime::ZERO, ());
        let report = engine.run(&mut w);
        assert_eq!(report.reason, StopReason::QueueEmpty);
        assert_eq!(report.events_processed, 6);
        assert_eq!(w.fired_at.len(), 6);
        assert_eq!(*w.fired_at.last().unwrap(), SimTime::from_secs(5));
    }

    #[test]
    fn horizon_cuts_off() {
        let mut w = Countdown {
            remaining: u32::MAX,
            fired_at: vec![],
        };
        let mut engine = Engine::new(SimTime::from_secs(3));
        engine.prime(SimTime::ZERO, ());
        let report = engine.run(&mut w);
        assert_eq!(report.reason, StopReason::HorizonReached);
        // Events at t = 0, 1, 2, 3 fire; t = 4 is beyond the horizon.
        assert_eq!(report.events_processed, 4);
        assert_eq!(report.end_time, SimTime::from_secs(3));
    }

    #[test]
    fn event_budget_stops_runaway() {
        let mut w = Countdown {
            remaining: u32::MAX,
            fired_at: vec![],
        };
        let mut engine = Engine::new(SimTime::MAX).with_event_budget(10);
        engine.prime(SimTime::ZERO, ());
        let report = engine.run(&mut w);
        assert_eq!(report.reason, StopReason::EventBudget);
        assert_eq!(report.events_processed, 10);
    }

    #[test]
    fn interrupt_flag_stops_the_run() {
        let mut w = Countdown {
            remaining: u32::MAX,
            fired_at: vec![],
        };
        let flag = Arc::new(AtomicBool::new(false));
        // Pre-set flag: the loop notices at the first poll point.
        flag.store(true, Ordering::SeqCst);
        let mut engine = Engine::new(SimTime::MAX).with_interrupt(flag);
        engine.prime(SimTime::ZERO, ());
        let report = engine.run(&mut w);
        assert_eq!(report.reason, StopReason::Interrupted);
        assert_eq!(report.events_processed, 0);
    }

    #[test]
    fn unset_interrupt_flag_changes_nothing() {
        let run = |with_flag: bool| {
            let mut w = Countdown {
                remaining: 5,
                fired_at: vec![],
            };
            let mut engine = Engine::new(SimTime::from_secs(100));
            if with_flag {
                engine = engine.with_interrupt(Arc::new(AtomicBool::new(false)));
            }
            engine.prime(SimTime::ZERO, ());
            let r = engine.run(&mut w);
            (r.reason, r.events_processed, w.fired_at)
        };
        assert_eq!(run(false), run(true));
    }

    struct Stopper;
    impl World for Stopper {
        type Event = u32;
        fn handle(&mut self, e: u32, sched: &mut Scheduler<u32>) {
            if e == 3 {
                sched.stop();
            }
        }
    }

    #[test]
    fn world_can_stop_the_run() {
        let mut engine = Engine::new(SimTime::MAX);
        for i in 0..10 {
            engine.prime(SimTime::from_secs(i), i as u32);
        }
        let report = engine.run(&mut Stopper);
        assert_eq!(report.reason, StopReason::Stopped);
        assert_eq!(report.events_processed, 4);
    }

    struct SameInstant {
        order: Vec<u32>,
    }
    impl World for SameInstant {
        type Event = u32;
        fn handle(&mut self, e: u32, sched: &mut Scheduler<u32>) {
            self.order.push(e);
            if e == 0 {
                // Scheduled "now" events run after already-queued same-time
                // events, in insertion order.
                sched.now_event(100);
                sched.now_event(101);
            }
        }
    }

    #[test]
    fn same_instant_fifo() {
        let mut w = SameInstant { order: vec![] };
        let mut engine = Engine::new(SimTime::MAX);
        engine.prime(SimTime::ZERO, 0);
        engine.prime(SimTime::ZERO, 1);
        let report = engine.run(&mut w);
        assert_eq!(w.order, vec![0, 1, 100, 101]);
        assert_eq!(report.reason, StopReason::QueueEmpty);
    }
}
