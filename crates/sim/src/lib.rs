//! `wmn-sim` — a deterministic discrete-event simulation engine.
//!
//! This crate is the substrate every other layer of the CNLR reproduction
//! stands on: an integer-nanosecond virtual clock, a future-event list with
//! stable tie-breaking, and a self-contained xoshiro256++ RNG with
//! derivable independent streams. (Tracing lives in `wmn-telemetry`, which
//! replaced this crate's original bounded string-ring tracer.)
//!
//! # Design notes
//!
//! * **Determinism.** Runs are a pure function of the master seed: integer
//!   time, FIFO tie-breaking at equal timestamps, and per-component RNG
//!   streams derived from `(seed, domain, index)` keys.
//! * **Genericity.** The engine is generic over the event type; the
//!   integration crate (`cnlr`) defines one unified event enum and a
//!   [`World`] that dispatches it, so substrate crates never depend on each
//!   other's event vocabularies.
//!
//! # Example
//!
//! ```
//! use wmn_sim::{Engine, Scheduler, SimDuration, SimTime, World};
//!
//! struct Ping(u32);
//! impl World for Ping {
//!     type Event = &'static str;
//!     fn handle(&mut self, _ev: &'static str, sched: &mut Scheduler<&'static str>) {
//!         self.0 += 1;
//!         if self.0 < 3 {
//!             sched.after(SimDuration::from_millis(10), "tick");
//!         }
//!     }
//! }
//!
//! let mut world = Ping(0);
//! let mut engine = Engine::new(SimTime::from_secs(1));
//! engine.prime(SimTime::ZERO, "tick");
//! let report = engine.run(&mut world);
//! assert_eq!(world.0, 3);
//! assert_eq!(report.events_processed, 3);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod time;

pub use checkpoint::{ByteReader, ByteWriter, CheckpointError, CheckpointMeta};
pub use engine::{Engine, RunReport, Scheduler, StopReason, World};
pub use queue::EventQueue;
pub use rng::{SimRng, SplitMix64};
pub use shard::{
    CheckpointState, CrashPlan, Lookahead, RegionCtx, RegionId, RegionWorld, ShardRunReport,
    ShardStopReason, ShardedEngine, StochasticCrash, SupervisorConfig, SupervisorReport,
};
pub use time::{SimDuration, SimTime};
