//! Lightweight, allocation-bounded event tracing.
//!
//! Traces are an opt-in debugging aid: a bounded ring buffer of formatted
//! records. When disabled (the default) tracing costs one branch per call and
//! performs no formatting, which keeps the hot path clean for benchmarks.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Severity/verbosity of a trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Protocol-visible milestones (route found, flow finished).
    Info,
    /// Per-packet events (tx, rx, drop).
    Packet,
    /// MAC/PHY micro-events (backoff, carrier sense).
    Detail,
}

/// One captured record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// When the record was emitted.
    pub time: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Free-form subsystem tag, e.g. `"mac"`.
    pub tag: &'static str,
    /// Formatted message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {:>6}] {}", self.time, self.tag, self.message)
    }
}

/// A bounded trace sink.
pub struct Tracer {
    enabled_level: Option<TraceLevel>,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn disabled() -> Self {
        Tracer { enabled_level: None, capacity: 0, records: VecDeque::new(), dropped: 0 }
    }

    /// A tracer capturing records at or below `level`, keeping the most
    /// recent `capacity` records.
    pub fn enabled(level: TraceLevel, capacity: usize) -> Self {
        Tracer {
            enabled_level: Some(level),
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// True when a record at `level` would be kept. Callers should test this
    /// before formatting an expensive message.
    #[inline]
    pub fn wants(&self, level: TraceLevel) -> bool {
        matches!(self.enabled_level, Some(max) if level <= max)
    }

    /// Emit a record (no-op unless [`Tracer::wants`] the level).
    pub fn emit(&mut self, time: SimTime, level: TraceLevel, tag: &'static str, message: String) {
        if !self.wants(level) {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { time, level, tag, message });
    }

    /// Captured records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Convenience macro: `trace!(tracer, now, Packet, "mac", "tx {}", id)`.
#[macro_export]
macro_rules! sim_trace {
    ($tracer:expr, $now:expr, $level:ident, $tag:expr, $($arg:tt)*) => {
        if $tracer.wants($crate::trace::TraceLevel::$level) {
            $tracer.emit($now, $crate::trace::TraceLevel::$level, $tag, format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(SimTime::ZERO, TraceLevel::Info, "x", "hello".into());
        assert!(t.is_empty());
        assert!(!t.wants(TraceLevel::Info));
    }

    #[test]
    fn level_filtering() {
        let mut t = Tracer::enabled(TraceLevel::Packet, 16);
        assert!(t.wants(TraceLevel::Info));
        assert!(t.wants(TraceLevel::Packet));
        assert!(!t.wants(TraceLevel::Detail));
        t.emit(SimTime::ZERO, TraceLevel::Detail, "mac", "ignored".into());
        t.emit(SimTime::ZERO, TraceLevel::Info, "mac", "kept".into());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Tracer::enabled(TraceLevel::Info, 3);
        for i in 0..5 {
            t.emit(SimTime::from_secs(i), TraceLevel::Info, "t", format!("r{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<&str> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["r2", "r3", "r4"]);
    }

    #[test]
    fn macro_formats_lazily() {
        let mut t = Tracer::enabled(TraceLevel::Info, 4);
        sim_trace!(t, SimTime::ZERO, Info, "tag", "value {}", 42);
        sim_trace!(t, SimTime::ZERO, Detail, "tag", "skipped {}", 43);
        assert_eq!(t.len(), 1);
        assert_eq!(t.records().next().unwrap().message, "value 42");
    }

    #[test]
    fn display_format() {
        let r = TraceRecord {
            time: SimTime::from_secs(1),
            level: TraceLevel::Info,
            tag: "mac",
            message: "m".into(),
        };
        let s = format!("{r}");
        assert!(s.contains("mac"));
        assert!(s.contains("1.000000s"));
    }
}
