//! The pending-event set.
//!
//! A 4-ary min-heap keyed by `(time, sequence)`. The sequence number gives a
//! total order to simultaneous events — ties are broken by insertion order —
//! which makes every run bit-for-bit reproducible regardless of heap
//! internals: the key is unique, so *any* correct heap pops the same
//! sequence. The 4-ary layout (children of `i` at `4i+1..4i+5`) halves the
//! tree depth of a binary heap; with a few hundred thousand pending events
//! the heap no longer fits in L1/L2 and each level costs a cache miss, so
//! depth — not comparison count — dominates `pop`.

use crate::time::SimTime;

/// Children per node. 4 keeps a whole sibling group in one cache line for
/// small payloads while halving the depth of the binary layout.
const ARITY: usize = 4;

/// An event together with its activation time and tie-breaking sequence.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// The unique ordering key: earliest time first, insertion order within
    /// a tick.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    /// Implicit 4-ary min-heap ordered by [`Scheduled::key`].
    heap: Vec<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity. Region worlds size
    /// this from their event plans (flows + churn + timers) so the steady
    /// state never reallocates the backing storage.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Grow the backing storage to hold at least `additional` more events
    /// without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current capacity of the backing storage.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `event` at `time`. Events at equal times pop in insertion
    /// order.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { time, seq, event });
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        self.heap.swap(0, len - 1);
        let s = self.heap.pop().expect("len checked above");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((s.time, s.event))
    }

    /// The activation time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for engine statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Discard all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Pending entries in deterministic `(time, seq)` order, with their
    /// tie-breaking sequence numbers, for checkpoint serialization.
    pub fn snapshot_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .map(|s| (s.time, s.seq, &s.event))
            .collect();
        out.sort_unstable_by_key(|&(t, seq, _)| (t, seq));
        out
    }

    /// Re-insert an event with an explicit sequence number (checkpoint
    /// restore). Does not advance `next_seq` or `scheduled_total`; restore
    /// those separately via [`EventQueue::set_seq_state`].
    pub fn schedule_with_seq(&mut self, time: SimTime, seq: u64, event: E) {
        self.heap.push(Scheduled { time, seq, event });
        self.sift_up(self.heap.len() - 1);
    }

    /// The `(next_seq, scheduled_total)` counters — persistent tie-break
    /// state that a checkpoint must carry.
    pub fn seq_state(&self) -> (u64, u64) {
        (self.next_seq, self.scheduled_total)
    }

    /// Restore the counters captured by [`EventQueue::seq_state`].
    pub fn set_seq_state(&mut self, next_seq: u64, scheduled_total: u64) {
        self.next_seq = next_seq;
        self.scheduled_total = scheduled_total;
    }

    /// Move the element at `pos` toward the root until its parent is no
    /// later.
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if self.heap[pos].key() < self.heap[parent].key() {
                self.heap.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    /// Move the element at `pos` toward the leaves until every child is no
    /// earlier.
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let first = pos * ARITY + 1;
            if first >= len {
                break;
            }
            let last = (first + ARITY).min(len);
            let mut min = first;
            let mut min_key = self.heap[first].key();
            for child in first + 1..last {
                let k = self.heap[child].key();
                if k < min_key {
                    min = child;
                    min_key = k;
                }
            }
            if min_key < self.heap[pos].key() {
                self.heap.swap(pos, min);
                pos = min;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_secs(2), 2);
        q.schedule(SimTime::from_secs(10), 10);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total is cumulative and unaffected by clear.
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn with_capacity_does_not_grow_within_budget() {
        let mut q = EventQueue::with_capacity(1000);
        let cap = q.capacity();
        assert!(cap >= 1000);
        for i in 0..1000u64 {
            q.schedule(SimTime(i % 37), i);
        }
        assert_eq!(q.capacity(), cap, "pre-sized queue reallocated");
    }

    #[test]
    fn snapshot_restore_preserves_order_and_counters() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10u32 {
            q.schedule(t, i); // all ties — order is pure seq
        }
        q.schedule(SimTime::ZERO, 99);
        assert_eq!(q.pop().unwrap().1, 99);

        let entries: Vec<(SimTime, u64, u32)> = q
            .snapshot_entries()
            .iter()
            .map(|&(time, seq, ev)| (time, seq, *ev))
            .collect();
        let seq_state = q.seq_state();

        let mut r: EventQueue<u32> = EventQueue::new();
        for (time, seq, ev) in entries {
            r.schedule_with_seq(time, seq, ev);
        }
        r.set_seq_state(seq_state.0, seq_state.1);
        assert_eq!(r.seq_state(), seq_state);
        // Restored queue pops identically and continues the seq stream so
        // later same-time events still lose ties to the restored ones.
        r.schedule(t, 500);
        q.schedule(t, 500);
        while let Some(a) = q.pop() {
            assert_eq!(Some(a), r.pop());
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn heavy_random_order_is_sorted() {
        let mut rng = crate::rng::SimRng::new(77);
        let mut q = EventQueue::new();
        for _ in 0..10_000 {
            let t = SimTime(rng.below(1_000_000));
            q.schedule(t, t);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, payload)) = q.pop() {
            assert_eq!(t, payload);
            assert!(t >= last);
            last = t + SimDuration::ZERO;
        }
    }

    /// The heap arity is an implementation detail: pops must match a sorted
    /// reference sequence exactly for interleaved random workloads.
    #[test]
    fn matches_reference_order_under_interleaving() {
        let mut rng = crate::rng::SimRng::new(1234);
        let mut q = EventQueue::new();
        let mut reference: Vec<(SimTime, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut popped: Vec<(SimTime, u64)> = Vec::new();
        for round in 0..200 {
            let pushes = 1 + rng.below(40) as usize;
            for _ in 0..pushes {
                let t = SimTime(rng.below(5_000));
                q.schedule(t, seq);
                reference.push((t, seq));
                seq += 1;
            }
            let pops = rng.below(30) as usize;
            for _ in 0..pops {
                match q.pop() {
                    Some((t, id)) => popped.push((t, id)),
                    None => break,
                }
            }
            let _ = round;
        }
        while let Some((t, id)) = q.pop() {
            popped.push((t, id));
        }
        reference.sort_unstable();
        // Popping interleaved with pushing can only pop what was already
        // scheduled, so the reference must be compared as a multiset in
        // (time, seq) order — which is exactly the global sort since seq is
        // unique and ties pop in seq order.
        assert_eq!(popped.len(), reference.len());
        let mut sorted_popped = popped.clone();
        sorted_popped.sort_unstable();
        assert_eq!(sorted_popped, reference);
        // And within any prefix, times never decrease between consecutive
        // pops that happened without intervening pushes — verified by the
        // total-order checks in the other tests; here the multiset equality
        // plus unique keys pins the content.
    }
}
