//! The pending-event set.
//!
//! A binary min-heap keyed by `(time, sequence)`. The sequence number gives a
//! total order to simultaneous events — ties are broken by insertion order —
//! which makes every run bit-for-bit reproducible regardless of heap
//! internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its activation time and tie-breaking sequence.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `event` at `time`. Events at equal times pop in insertion
    /// order.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The activation time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for engine statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Discard all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Pending entries in deterministic `(time, seq)` order, with their
    /// tie-breaking sequence numbers, for checkpoint serialization.
    pub fn snapshot_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .map(|s| (s.time, s.seq, &s.event))
            .collect();
        out.sort_by_key(|&(t, seq, _)| (t, seq));
        out
    }

    /// Re-insert an event with an explicit sequence number (checkpoint
    /// restore). Does not advance `next_seq` or `scheduled_total`; restore
    /// those separately via [`EventQueue::set_seq_state`].
    pub fn schedule_with_seq(&mut self, time: SimTime, seq: u64, event: E) {
        self.heap.push(Scheduled { time, seq, event });
    }

    /// The `(next_seq, scheduled_total)` counters — persistent tie-break
    /// state that a checkpoint must carry.
    pub fn seq_state(&self) -> (u64, u64) {
        (self.next_seq, self.scheduled_total)
    }

    /// Restore the counters captured by [`EventQueue::seq_state`].
    pub fn set_seq_state(&mut self, next_seq: u64, scheduled_total: u64) {
        self.next_seq = next_seq;
        self.scheduled_total = scheduled_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_secs(2), 2);
        q.schedule(SimTime::from_secs(10), 10);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total is cumulative and unaffected by clear.
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn snapshot_restore_preserves_order_and_counters() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10u32 {
            q.schedule(t, i); // all ties — order is pure seq
        }
        q.schedule(SimTime::ZERO, 99);
        assert_eq!(q.pop().unwrap().1, 99);

        let entries: Vec<(SimTime, u64, u32)> = q
            .snapshot_entries()
            .iter()
            .map(|&(time, seq, ev)| (time, seq, *ev))
            .collect();
        let seq_state = q.seq_state();

        let mut r: EventQueue<u32> = EventQueue::new();
        for (time, seq, ev) in entries {
            r.schedule_with_seq(time, seq, ev);
        }
        r.set_seq_state(seq_state.0, seq_state.1);
        assert_eq!(r.seq_state(), seq_state);
        // Restored queue pops identically and continues the seq stream so
        // later same-time events still lose ties to the restored ones.
        r.schedule(t, 500);
        q.schedule(t, 500);
        while let Some(a) = q.pop() {
            assert_eq!(Some(a), r.pop());
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn heavy_random_order_is_sorted() {
        let mut rng = crate::rng::SimRng::new(77);
        let mut q = EventQueue::new();
        for _ in 0..10_000 {
            let t = SimTime(rng.below(1_000_000));
            q.schedule(t, t);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, payload)) = q.pop() {
            assert_eq!(t, payload);
            assert!(t >= last);
            last = t + SimDuration::ZERO;
        }
    }
}
