//! Checkpoint file format and serialization primitives.
//!
//! The shard engine quiesces every region at a committed horizon on each
//! epoch barrier; that barrier is a globally consistent cut, and this module
//! defines how the engine persists it. A checkpoint file is:
//!
//! ```text
//! magic      8 bytes  b"WMNCKPT1"
//! version    u32 LE   bumped on any layout change
//! scenario   u64 LE   fingerprint of the scenario that produced the file
//! epoch      u64 LE   barrier index the cut was taken at
//! committed  u64 LE   global minimum pending-event time at the cut, ns
//! regions    u32 LE   number of per-region blocks in the payload
//! events     u64 LE   events processed so far (for `wmn-trace ckpt`)
//! payload    len-prefixed opaque bytes (engine + world state)
//! checksum   u64 LE   FNV-1a over everything above
//! ```
//!
//! All integers are little-endian. Floats are stored as raw IEEE-754 bits —
//! never decimal round-tripped — so restored state is bit-identical.
//! Corrupt, truncated, or version-mismatched files are refused with a
//! structured [`CheckpointError`]; nothing in this module panics on bad
//! input.

use std::fmt;
use std::path::Path;

/// On-disk magic for checkpoint files.
pub const MAGIC: [u8; 8] = *b"WMNCKPT1";
/// Current checkpoint layout version.
pub const VERSION: u32 = 1;
/// Conventional file extension for checkpoint files.
pub const EXTENSION: &str = "wmnckpt";

/// Why a checkpoint could not be read or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem-level failure (open, read, write, rename).
    Io(String),
    /// The bytes are not a well-formed checkpoint (bad magic, truncation,
    /// checksum mismatch, or an inconsistent payload).
    Corrupt(String),
    /// The file was written by a different layout version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The file belongs to a different scenario (seed/topology/config).
    ScenarioMismatch {
        /// Fingerprint found in the file header.
        found: u64,
        /// Fingerprint of the scenario being resumed.
        expected: u64,
    },
    /// No checkpoint exists at the requested location.
    NotFound(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version mismatch: file is v{found}, this build reads v{expected}"
            ),
            CheckpointError::ScenarioMismatch { found, expected } => write!(
                f,
                "checkpoint scenario mismatch: file fingerprint {found:#018x}, \
                 run fingerprint {expected:#018x}"
            ),
            CheckpointError::NotFound(msg) => write!(f, "checkpoint not found: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit hash — the integrity checksum and scenario-fingerprint
/// primitive (dependency-free, stable across platforms).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Growable little-endian byte sink for checkpoint payloads.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as raw IEEE-754 bits.
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append raw bytes with a `u64` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the accumulated bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over checkpoint payload bytes.
/// Every method returns [`CheckpointError::Corrupt`] on truncation instead
/// of panicking.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CheckpointError::Corrupt("length overflow in payload".to_string()))?;
        if end > self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` stored as raw IEEE-754 bits.
    pub fn f64_bits(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u64`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(CheckpointError::Corrupt(format!(
                "declared slice length {n} exceeds payload size {}",
                self.buf.len()
            )));
        }
        self.take(n as usize)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless every byte has been consumed (catches layout drift).
    pub fn expect_end(&self) -> Result<(), CheckpointError> {
        if self.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Header fields of a checkpoint file, as reported by [`open`]/[`inspect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Layout version the file was written with.
    pub version: u32,
    /// Scenario fingerprint the file belongs to.
    pub scenario: u64,
    /// Epoch-barrier index of the cut.
    pub epoch: u64,
    /// Global minimum pending-event time at the cut, nanoseconds.
    pub committed_ns: u64,
    /// Number of per-region blocks in the payload.
    pub regions: u32,
    /// Events processed up to the cut.
    pub events: u64,
    /// Payload size in bytes.
    pub payload_len: u64,
}

/// Assemble a complete checkpoint file image: header, payload, checksum.
pub fn seal(
    scenario: u64,
    epoch: u64,
    committed_ns: u64,
    regions: u32,
    events: u64,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 48 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&scenario.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&committed_ns.to_le_bytes());
    out.extend_from_slice(&regions.to_le_bytes());
    out.extend_from_slice(&events.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validate a checkpoint image and return its header plus the payload slice.
///
/// Checks, in order: magic, version, checksum, declared payload length.
/// Scenario matching is the caller's concern (it needs the expected
/// fingerprint); [`CheckpointMeta::scenario`] carries the stored value.
pub fn open(bytes: &[u8]) -> Result<(CheckpointMeta, &[u8]), CheckpointError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(CheckpointError::Corrupt(format!(
            "file too short ({} bytes) to hold a header",
            bytes.len()
        )));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::Corrupt(
            "bad magic: not a checkpoint file".to_string(),
        ));
    }
    let mut r = ByteReader::new(&bytes[MAGIC.len()..]);
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: VERSION,
        });
    }
    if bytes.len() < 8 {
        return Err(CheckpointError::Corrupt("missing checksum".to_string()));
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = {
        let tail = &bytes[bytes.len() - 8..];
        u64::from_le_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ])
    };
    let computed = fnv1a(body);
    if stored != computed {
        return Err(CheckpointError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    let scenario = r.u64()?;
    let epoch = r.u64()?;
    let committed_ns = r.u64()?;
    let regions = r.u32()?;
    let events = r.u64()?;
    let payload_len = r.u64()?;
    let header_len = MAGIC.len() + 4 + 8 + 8 + 8 + 4 + 8 + 8;
    let expected_total = header_len as u64 + payload_len + 8;
    if bytes.len() as u64 != expected_total {
        return Err(CheckpointError::Corrupt(format!(
            "size mismatch: header declares {expected_total} bytes, file has {}",
            bytes.len()
        )));
    }
    let meta = CheckpointMeta {
        version,
        scenario,
        epoch,
        committed_ns,
        regions,
        events,
        payload_len,
    };
    Ok((meta, &bytes[header_len..header_len + payload_len as usize]))
}

/// Validate a checkpoint image and return only its header.
pub fn inspect(bytes: &[u8]) -> Result<CheckpointMeta, CheckpointError> {
    open(bytes).map(|(meta, _)| meta)
}

/// Read a checkpoint file into memory, mapping missing files to
/// [`CheckpointError::NotFound`].
pub fn read_file(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    std::fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CheckpointError::NotFound(path.display().to_string())
        } else {
            CheckpointError::Io(format!("{}: {e}", path.display()))
        }
    })
}

/// Write `bytes` to `path` atomically: write a sibling temp file, rename
/// over the target. Against *process* death — worker panic, OOM kill,
/// `kill -9`, Ctrl-C, the checkpoint threat model — a crash mid-write
/// leaves either the old file or no file, never a torn one, because the
/// page cache outlives the process. There is deliberately no fsync: it
/// costs ~1 ms per checkpoint on a real filesystem (blowing the ≤5%
/// overhead budget at the default cadence) and only buys protection
/// against kernel crash / power loss — where a torn file is still *detected*
/// (checksum) and refused with a structured error rather than silently
/// resumed.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(io)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)
}

/// List `.wmnckpt` files under `dir`, sorted by epoch ascending (epoch read
/// from the filename `ckpt_epoch_<N>.wmnckpt`; files that do not match the
/// pattern sort last, by name). Returns `(epoch, path)` pairs.
pub fn list_dir(dir: &Path) -> Result<Vec<(Option<u64>, std::path::PathBuf)>, CheckpointError> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", dir.display())))?;
    let mut out: Vec<(Option<u64>, std::path::PathBuf)> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| CheckpointError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
            continue;
        }
        let epoch = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.strip_prefix("ckpt_epoch_"))
            .and_then(|s| s.parse::<u64>().ok());
        out.push((epoch, path));
    }
    out.sort_by(|a, b| match (a.0, b.0) {
        (Some(x), Some(y)) => x.cmp(&y).then_with(|| a.1.cmp(&b.1)),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.1.cmp(&b.1),
    });
    Ok(out)
}

/// Conventional filename for the checkpoint taken at `epoch`.
pub fn file_name(epoch: u64) -> String {
    format!("ckpt_epoch_{epoch}.{EXTENSION}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64_bits(-0.000_123_456_789);
        w.bytes(b"hello");
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(
            r.f64_bits().unwrap().to_bits(),
            (-0.000_123_456_789f64).to_bits()
        );
        assert_eq!(r.bytes().unwrap(), b"hello");
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_truncation_is_structured_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(CheckpointError::Corrupt(_))));
        // A huge declared slice length must not be trusted.
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.bytes(), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn seal_open_round_trip() {
        let payload = b"region state bytes".to_vec();
        let img = seal(0xABCD, 12, 3_000_000_000, 4, 987_654, &payload);
        let (meta, body) = open(&img).expect("open");
        assert_eq!(meta.version, VERSION);
        assert_eq!(meta.scenario, 0xABCD);
        assert_eq!(meta.epoch, 12);
        assert_eq!(meta.committed_ns, 3_000_000_000);
        assert_eq!(meta.regions, 4);
        assert_eq!(meta.events, 987_654);
        assert_eq!(body, payload.as_slice());
        assert_eq!(inspect(&img).unwrap(), meta);
    }

    #[test]
    fn open_rejects_bad_magic_and_truncation() {
        assert!(matches!(open(b"short"), Err(CheckpointError::Corrupt(_))));
        let mut img = seal(1, 1, 1, 1, 1, b"x");
        img[0] ^= 0xFF;
        assert!(matches!(open(&img), Err(CheckpointError::Corrupt(_))));
        let img = seal(1, 1, 1, 1, 1, b"payload");
        let truncated = &img[..img.len() - 3];
        assert!(matches!(open(truncated), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn open_rejects_flipped_bit_anywhere() {
        let img = seal(7, 3, 999, 2, 42, b"some payload to protect");
        for i in 12..img.len() {
            let mut bad = img.clone();
            bad[i] ^= 0x01;
            assert!(open(&bad).is_err(), "bit flip at byte {i} went undetected");
        }
    }

    #[test]
    fn open_rejects_version_mismatch() {
        let mut img = seal(1, 1, 1, 1, 1, b"x");
        // Patch version field (bytes 8..12) and re-seal the checksum.
        img[8] = 99;
        let body_len = img.len() - 8;
        let sum = fnv1a(&img[..body_len]);
        img[body_len..].copy_from_slice(&sum.to_le_bytes());
        match open(&img) {
            Err(CheckpointError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 99);
                assert_eq!(expected, VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn write_atomic_then_read_file() {
        let dir = std::env::temp_dir().join("wmn_ckpt_atomic_test");
        let path = dir.join(file_name(5));
        let img = seal(11, 5, 123, 1, 9, b"abc");
        write_atomic(&path, &img).expect("write");
        assert!(!path.with_extension("tmp").exists());
        let back = read_file(&path).expect("read");
        assert_eq!(back, img);
        let missing = dir.join("nope.wmnckpt");
        assert!(matches!(
            read_file(&missing),
            Err(CheckpointError::NotFound(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_dir_sorts_by_epoch() {
        let dir = std::env::temp_dir().join("wmn_ckpt_list_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for epoch in [10u64, 2, 7] {
            let img = seal(1, epoch, epoch * 100, 1, 0, b"");
            write_atomic(&dir.join(file_name(epoch)), &img).unwrap();
        }
        std::fs::write(dir.join("stray.txt"), b"ignored").unwrap();
        let listed = list_dir(&dir).expect("list");
        let epochs: Vec<Option<u64>> = listed.iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![Some(2), Some(7), Some(10)]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
