//! Virtual simulation time.
//!
//! Time is represented as an integer number of **nanoseconds** since the start
//! of the simulation. Integer time makes event ordering exact and reproducible
//! (no floating-point drift), while nanosecond resolution is three orders of
//! magnitude finer than the shortest 802.11 interval we model (a 1 µs air
//! propagation quantum), so rounding is never observable.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since t = 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from a (non-negative, finite) floating-point second count.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since t = 0.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since t = 0 as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add: never wraps past `SimTime::MAX`.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from a (non-negative, finite) floating-point second count.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Nanoseconds in this span.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k.is_finite() && k >= 0.0, "invalid scale {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(SimTime::from_secs(13) - t, d);
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
        assert_eq!(d + d - d, d);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_micros(15));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
        assert!(SimDuration::from_micros(1001) > SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
