//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own small PRNG rather than depending on an
//! external crate so that (a) every published figure is exactly re-runnable
//! from a seed, independent of upstream library changes, and (b) each node
//! and protocol layer can own an independent *stream* derived from the master
//! seed, making results insensitive to incidental changes in event ordering.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the combination
//! recommended by the xoshiro authors. Both algorithms are public domain.

/// SplitMix64: used for seeding and for deriving independent stream seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new SplitMix64 from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The simulator RNG: xoshiro256++ with convenience samplers for the
/// distributions the network stack needs.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal variate from the last Box–Muller draw.
    cached_normal: Option<f64>,
}

impl SimRng {
    /// Seed the generator. Any seed (including 0) yields a valid state.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        SimRng {
            s,
            cached_normal: None,
        }
    }

    /// Derive an independent stream keyed by `(domain, index)`.
    ///
    /// Streams derived from the same master seed with different keys are
    /// statistically independent; the same key always yields the same stream.
    pub fn derive(master_seed: u64, domain: u64, index: u64) -> Self {
        // Mix the three values through SplitMix64 twice so that related keys
        // (e.g. consecutive node indices) land far apart in seed space.
        let mut sm = SplitMix64::new(master_seed ^ domain.rotate_left(17));
        let a = sm.next_u64();
        let mut sm2 = SplitMix64::new(a ^ index.wrapping_mul(0xD1342543DE82EF95));
        SimRng::new(sm2.next_u64())
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased multiply-shift.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Rejection loop guaranteeing exact uniformity.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed value with the given mean (`mean > 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // f64() is in [0,1); use 1-u in (0,1] so ln never sees zero.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Poisson-distributed count with the given mean (Knuth's method for
    /// small means, normal approximation above 64 where Knuth's loop would
    /// be slow and the approximation error is negligible).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let v = self.normal(mean, mean.sqrt()).round();
            return if v < 0.0 { 0 } else { v as u64 };
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below_usize(items.len())])
        }
    }

    /// Snapshot the complete generator state for checkpointing: the four
    /// xoshiro words plus the cached Box–Muller variate as raw IEEE-754 bits
    /// (raw bits so a restore reproduces the stream exactly, with no decimal
    /// round-trip).
    pub fn save_state(&self) -> ([u64; 4], Option<u64>) {
        (self.s, self.cached_normal.map(f64::to_bits))
    }

    /// Restore a state captured by [`SimRng::save_state`].
    pub fn restore_state(&mut self, s: [u64; 4], cached_normal_bits: Option<u64>) {
        self.s = s;
        self.cached_normal = cached_normal_bits.map(f64::from_bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_deterministic_and_keyed() {
        let mut a = SimRng::derive(7, 1, 3);
        let mut b = SimRng::derive(7, 1, 3);
        let mut c = SimRng::derive(7, 1, 4);
        let mut d = SimRng::derive(7, 2, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let x = a.next_u64();
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn chance_probability_is_respected() {
        let mut r = SimRng::new(6);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(10);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = SimRng::new(12);
        for lambda in [0.5, 4.0, 100.0] {
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn save_restore_resumes_stream_exactly() {
        let mut a = SimRng::new(21);
        // Burn some state, including a half-consumed Box–Muller pair so the
        // cached variate is live at snapshot time.
        for _ in 0..17 {
            a.next_u64();
        }
        let _ = a.standard_normal();
        let (s, cached) = a.save_state();
        assert!(cached.is_some(), "cached normal should be pending");
        let mut b = SimRng::new(0);
        b.restore_state(s, cached);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = SimRng::new(14);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.choose(&items).unwrap()));
    }
}
