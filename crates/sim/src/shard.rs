//! Shard-parallel conservative event execution.
//!
//! The sequential [`Engine`](crate::Engine) dispatches one global
//! future-event list. This module partitions a model into **regions**, each
//! with its own event queue, clock and (by convention) RNG streams, and
//! advances regions concurrently under the classic *conservative* parallel
//! discrete-event rule (Chandy–Misra / bounded lag): a region may safely
//! process every event strictly before its **safe horizon**
//!
//! ```text
//! H_i = min over non-idle j of ( T_j + D(j → i) )    (including j = i)
//! ```
//!
//! where `T_j` is region `j`'s next pending event time and `D` is the
//! shortest-path closure of the **lookahead** matrix `δ`: `δ(j → i)` is a
//! lower bound on how far in the future any event that region `j` sends
//! directly to region `i` must land, measured from the event `j` is
//! currently processing, and `D` extends that bound to multi-hop influence
//! chains (`D(i → i)` is the minimum cycle — a region's own events can
//! come back to bite it via its neighbours). In a radio mesh the bound is
//! physical — a station cannot react to a reception and put a new frame on
//! the air in less than the PHY preamble/turnaround, and influence between
//! non-adjacent spatial regions additionally pays propagation over the
//! inter-region distance — so the lookahead is free: no model change is
//! needed to expose it.
//!
//! Execution proceeds in epochs. Every epoch the coordinator computes each
//! region's safe horizon from the current queue states, hands the *active*
//! regions (those with an event below their horizon) to a fixed worker
//! pool, waits for all of them, and then merges the cross-region events
//! produced during the epoch into the destination queues in one
//! deterministic pass sorted by `(timestamp, source region, emission
//! sequence)`. Because region state only changes inside `handle` calls that
//! are fully ordered per region, and because the merge order is a pure
//! function of the epoch's outputs (never of worker scheduling), **a run is
//! bit-identical for any worker count, including one**. The worker count
//! changes wall-clock time only; the region count is part of the scenario.
//!
//! Region→worker assignment is a free variable under that argument: *which
//! thread* runs a window is invisible to the simulation, so the engine may
//! re-chunk regions onto workers every epoch. With
//! [`ShardedEngine::with_stealing`] enabled, a coordinator-side
//! [`StealPlanner`] packs the epoch's active regions onto workers by
//! longest-predicted-first (LPT) bin packing, predicting each region's cost
//! from its previous window's measured busy time — the same wall-clock
//! figure the profiler reports in [`WindowSample::busy_ns`]. The schedule
//! is wall-clock-derived and therefore non-deterministic run to run, but it
//! only ever remaps slot→thread; traces, telemetry, and checkpoints stay
//! bit-identical for any steal schedule, and a checkpoint carries no
//! scheduler state, so a resume may change both the worker count and the
//! steal setting freely.
//!
//! The conservative invariant — no cross-region event may arrive below the
//! timestamp its destination has already committed — is enforced at
//! runtime: [`RegionCtx::send`] panics when a world under-declares its
//! lookahead, and the merge re-checks every arrival against the
//! destination's committed horizon.

use crate::checkpoint::{self, ByteReader, ByteWriter, CheckpointError, CheckpointMeta};
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Identifies one region (shard) of a partitioned model.
pub type RegionId = u32;

/// A pair that never exchanges events directly (see [`Lookahead`]).
pub const NEVER: SimDuration = SimDuration(u64::MAX);

/// Lower bounds on cross-region event latency.
///
/// `between(src, dst)` is the minimum delay, measured from the event being
/// processed at `src`, after which an event emitted by `src` may activate
/// at `dst`. [`NEVER`] marks pairs that never communicate.
#[derive(Clone, Debug)]
pub struct Lookahead {
    n: usize,
    /// Row-major `n × n` matrix of *direct* bounds; the diagonal is unused.
    delta: Vec<SimDuration>,
    /// All-pairs shortest-path closure of `delta` (Floyd–Warshall). The
    /// diagonal holds the minimum cycle back to oneself: an event at `i`
    /// can influence `i` again only via some other region, so `D(i, i)` is
    /// the cheapest round trip. Safe horizons must use this closure — the
    /// direct matrix alone under-counts multi-hop influence chains.
    closed: Vec<SimDuration>,
}

fn close_over(n: usize, delta: &[SimDuration]) -> Vec<SimDuration> {
    let mut d = delta.to_vec();
    // Self-influence must pass through a cycle; seed the diagonal as ∞.
    for i in 0..n {
        d[i * n + i] = NEVER;
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if dik == NEVER {
                continue;
            }
            for j in 0..n {
                let dkj = d[k * n + j];
                if dkj == NEVER {
                    continue;
                }
                let via = SimDuration(dik.0.saturating_add(dkj.0));
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    d
}

impl Lookahead {
    /// A uniform bound: every ordered pair of distinct regions shares the
    /// same minimum latency `delta`.
    pub fn uniform(n: usize, delta: SimDuration) -> Self {
        assert!(n >= 1, "at least one region");
        assert!(
            n == 1 || delta > SimDuration::ZERO,
            "zero lookahead cannot make progress with more than one region"
        );
        let matrix = vec![delta; n * n];
        let closed = close_over(n, &matrix);
        Lookahead {
            n,
            delta: matrix,
            closed,
        }
    }

    /// Build from a per-pair function (e.g. turnaround floor plus
    /// propagation over the inter-region distance). Return [`NEVER`] for
    /// pairs that cannot interact. Every finite bound must be positive.
    pub fn from_fn(n: usize, mut f: impl FnMut(RegionId, RegionId) -> SimDuration) -> Self {
        assert!(n >= 1, "at least one region");
        let mut delta = vec![NEVER; n * n];
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let v = f(s as RegionId, d as RegionId);
                assert!(v > SimDuration::ZERO, "lookahead {s}->{d} must be positive");
                delta[s * n + d] = v;
            }
        }
        let closed = close_over(n, &delta);
        Lookahead { n, delta, closed }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.n
    }

    /// The declared *direct* bound for `src → dst` ([`NEVER`] when they
    /// never interact directly). This is the contract [`RegionCtx::send`]
    /// enforces.
    #[inline]
    pub fn between(&self, src: RegionId, dst: RegionId) -> SimDuration {
        self.delta[src as usize * self.n + dst as usize]
    }

    /// The shortest influence path `src → … → dst` through any chain of
    /// regions; `influence(i, i)` is the minimum cycle. Safe horizons are
    /// computed from this.
    #[inline]
    pub fn influence(&self, src: RegionId, dst: RegionId) -> SimDuration {
        self.closed[src as usize * self.n + dst as usize]
    }
}

/// A cross-region event buffered during an epoch.
struct Outgoing<E> {
    dst: RegionId,
    time: SimTime,
    event: E,
}

/// Scheduling interface handed to a region's world while it processes an
/// event (the sharded analogue of [`Scheduler`](crate::Scheduler)).
pub struct RegionCtx<'a, E> {
    now: SimTime,
    region: RegionId,
    queue: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<Outgoing<E>>,
    lookahead: &'a Lookahead,
    horizon: SimTime,
    stopped: &'a mut bool,
}

impl<E> RegionCtx<'_, E> {
    /// The current simulation time (the event's activation time).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This region's id.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The configured end-of-simulation time.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedule a **local** event after `delay` (same region; any
    /// non-negative delay is allowed, including zero).
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedule a **local** event at an absolute time (not in the past).
    #[inline]
    pub fn at(&mut self, time: SimTime, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.queue.schedule(time, event);
    }

    /// Send an event to another region, activating at `time`.
    ///
    /// Conservative contract: `time` must be at least `now() +
    /// lookahead(self → dst)`. Violations panic — an under-declared
    /// lookahead would silently corrupt causality under parallel execution,
    /// so it is rejected loudly in every mode, single-threaded included.
    /// Sending to one's own region is an ordinary local schedule.
    #[inline]
    pub fn send(&mut self, dst: RegionId, time: SimTime, event: E) {
        if dst == self.region {
            self.at(time, event);
            return;
        }
        let bound = self.lookahead.between(self.region, dst);
        assert!(
            bound != NEVER,
            "region {} sent to region {dst} declared unreachable",
            self.region
        );
        assert!(
            time >= self.now + bound,
            "lookahead violation: region {} -> {dst} event at {time} < now {} + delta {bound}",
            self.region,
            self.now
        );
        self.outbox.push(Outgoing { dst, time, event });
    }

    /// Request the whole run to stop once the current epoch completes (the
    /// epoch boundary is the earliest deterministic cut across regions).
    pub fn stop(&mut self) {
        *self.stopped = true;
    }
}

/// A model shard: the per-region analogue of [`World`](crate::World).
///
/// Implementations own all state of one region. State shared between
/// regions must be immutable for the duration of the run (e.g. behind an
/// `Arc`); every mutation must live in exactly one region and be driven by
/// that region's events.
pub trait RegionWorld: Send {
    /// The unified event type (shared by all regions of the model).
    type Event: Send;

    /// Process one event. `ctx.now()` is the event's activation time.
    fn handle(&mut self, event: Self::Event, ctx: &mut RegionCtx<'_, Self::Event>);
}

/// Serialize/restore contract a [`RegionWorld`] implements to make its runs
/// checkpointable and crash-recoverable.
///
/// Contract: `decode_state` must leave the world **exactly** equal to the
/// one `encode_state` captured, regardless of the world's current state —
/// rollback overlays a snapshot onto a world that has since processed more
/// events, so every mutable field must be overwritten, every collection
/// cleared and rebuilt. Floats must round-trip as raw bits
/// ([`ByteWriter::f64_bits`]), never through decimal text. Iteration-order-
/// sensitive collections (hash maps) must be encoded in a sorted order so
/// the byte stream itself is deterministic.
pub trait CheckpointState: RegionWorld {
    /// Append this region's complete mutable state to `out`.
    fn encode_state(&self, out: &mut ByteWriter);
    /// Overwrite this region's mutable state from `r` (written by
    /// [`encode_state`](CheckpointState::encode_state)).
    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError>;
    /// Append one pending event to `out`.
    fn encode_event(event: &Self::Event, out: &mut ByteWriter);
    /// Read one event (written by
    /// [`encode_event`](CheckpointState::encode_event)).
    fn decode_event(r: &mut ByteReader<'_>) -> Result<Self::Event, CheckpointError>;
}

/// One region's observation for one epoch, delivered to a [`ShardProbe`].
///
/// Every field except `busy_ns` is **simulation-derived**: a pure function
/// of the scenario, identical for any worker count (the engine computes
/// epoch plans, queue states and horizons before any worker touches a
/// slot). `busy_ns` is wall-clock and varies run to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSample {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// The observed region.
    pub region: RegionId,
    /// Whether the region had an event below its safe horizon this epoch.
    pub active: bool,
    /// Events executed in this window.
    pub events: u64,
    /// Wall-clock nanoseconds spent inside the window (0 when inactive).
    /// The only wall-clock field in the sample.
    pub busy_ns: u64,
    /// Pending-queue depth before the window ran.
    pub queue_depth: u64,
    /// Cross-region events buffered in the outbox after the window.
    pub outbox: u64,
    /// Committed horizon before the window (ns).
    pub window_start_ns: u64,
    /// Safe horizon granted this epoch (ns; `u64::MAX` when unbounded).
    pub window_end_ns: u64,
    /// The region whose pending event bound this horizon (stall
    /// attribution: the barrier cannot open wider than `bound_by`'s next
    /// event plus its influence lookahead). `-1` when unbounded.
    pub bound_by: i64,
}

/// Observer interface for the sharded engine's execution structure.
///
/// Pass one to [`ShardedEngine::run_probed`] to receive per-region window
/// samples and per-epoch barrier timings. All callbacks fire on the
/// coordinator thread in deterministic order (regions ascending within an
/// epoch, epochs ascending); a probe can never influence simulation
/// results — it observes slots only between epochs.
pub trait ShardProbe {
    /// One region's window observation (called for every region each
    /// epoch, active or not, in ascending region order, before the merge).
    fn window(&mut self, sample: &WindowSample);
    /// An epoch completed: total barrier-to-barrier wall time, events
    /// merged across regions, and the merge's own wall cost.
    fn epoch_end(&mut self, epoch: u64, wall_ns: u64, merged: u64, merge_ns: u64);
    /// The run completed.
    fn run_end(&mut self, report: &ShardRunReport, wall_ns: u64);
    /// One epoch's scheduler decision under work stealing (default:
    /// ignore). `moved` counts active regions that ran on a different
    /// worker than their previous window; `imbalance_milli` is the
    /// post-steal load balance — the busiest worker's measured window time
    /// over the mean across the pool, ×1000. Both are wall-clock-derived
    /// and must never enter a simulation fingerprint. Fires after the
    /// epoch's windows complete, before [`epoch_end`](ShardProbe::epoch_end).
    fn steal(&mut self, _epoch: u64, _moved: u64, _imbalance_milli: u64) {}
    /// Serialize accumulated observer state into a checkpoint (default:
    /// nothing). A probe that wants its profile to survive a kill-and-resume
    /// overrides this pair; the engine includes the bytes in every
    /// checkpoint and feeds them back through
    /// [`decode_probe`](ShardProbe::decode_probe) on resume.
    fn encode_probe(&self, _out: &mut ByteWriter) {}
    /// Restore observer state captured by
    /// [`encode_probe`](ShardProbe::encode_probe) (default: nothing).
    fn decode_probe(&mut self, _r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        Ok(())
    }
}

/// Pre-epoch snapshots needed to compute per-window deltas for a probe.
#[derive(Default)]
struct EpochScratch {
    processed: Vec<u64>,
    queue: Vec<u64>,
    committed: Vec<u64>,
    /// Which region bound each region's safe horizon (`-1` = unbounded).
    sources: Vec<i64>,
}

/// Why a sharded run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStopReason {
    /// Every region's queue drained completely.
    QueueEmpty,
    /// The earliest pending event lay beyond the configured horizon.
    HorizonReached,
    /// A region called [`RegionCtx::stop`].
    Stopped,
    /// The event budget was exhausted (runaway protection).
    EventBudget,
    /// The supervisor's interrupt flag was raised (e.g. SIGINT); the run
    /// stopped at an epoch barrier after writing a final checkpoint.
    Interrupted,
}

/// Summary of a completed sharded run.
#[derive(Clone, Debug)]
pub struct ShardRunReport {
    /// Why the run ended.
    pub reason: ShardStopReason,
    /// Events dispatched across all regions.
    pub events_processed: u64,
    /// Events dispatched per region.
    pub per_region: Vec<u64>,
    /// Cross-region events exchanged at epoch barriers.
    pub cross_region: u64,
    /// Number of epochs (barrier rounds).
    pub epochs: u64,
    /// Final simulation time (max over regions' committed clocks, capped
    /// at the horizon).
    pub end_time: SimTime,
}

/// Panic payload of a harness-injected worker crash (see [`CrashPlan`]).
/// The supervisor recognises this type and recovers; any other panic is an
/// invariant violation or a genuine bug and aborts loudly.
#[derive(Debug)]
pub struct InjectedCrash {
    /// Epoch (1-based) the crash fired in.
    pub epoch: u64,
    /// Region whose window was killed.
    pub region: RegionId,
}

/// Seeded stochastic crash injection (see [`CrashPlan`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StochasticCrash {
    /// Per-window crash probability.
    pub rate: f64,
    /// Seed of the coordinator-side decision stream.
    pub seed: u64,
    /// Maximum number of crashes to inject over the run.
    pub max: u32,
}

/// Harness-level worker-crash schedule, strictly separate from in-sim
/// faults (`wmn-faults` kills simulated nodes; this kills the *host
/// worker* executing a region's window, to exercise the supervisor).
///
/// Crash decisions are made on the coordinator thread in ascending region
/// order before windows are dispatched, so they are identical for every
/// worker count; each decision fires at most once and is **not** rolled
/// back with the simulation state, so a recovered replay does not crash
/// again at the same point.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CrashPlan {
    /// Scripted crashes: kill `region`'s window in `epoch` (1-based).
    pub scripted: Vec<(u64, RegionId)>,
    /// Seeded stochastic mode, applied to every dispatched window.
    pub stochastic: Option<StochasticCrash>,
}

impl CrashPlan {
    /// True when no crashes will ever be injected.
    pub fn is_empty(&self) -> bool {
        self.scripted.is_empty() && self.stochastic.is_none()
    }

    /// Build from the environment: `WMN_CRASH_AT=epoch:region[,epoch:region…]`
    /// for scripted crashes and `WMN_CRASH_RATE=p:seed[:max]` for the
    /// stochastic mode (`max` defaults to 1). Malformed entries are ignored.
    pub fn from_env() -> Self {
        let mut plan = CrashPlan::default();
        if let Ok(v) = std::env::var("WMN_CRASH_AT") {
            for part in v.split(',').filter(|s| !s.trim().is_empty()) {
                if let Some((e, r)) = part.split_once(':') {
                    if let (Ok(e), Ok(r)) = (e.trim().parse(), r.trim().parse()) {
                        plan.scripted.push((e, r));
                    }
                }
            }
        }
        if let Ok(v) = std::env::var("WMN_CRASH_RATE") {
            let mut it = v.split(':');
            let rate = it.next().and_then(|s| s.trim().parse::<f64>().ok());
            let seed = it.next().and_then(|s| s.trim().parse::<u64>().ok());
            if let (Some(rate), Some(seed)) = (rate, seed) {
                let max = it
                    .next()
                    .and_then(|s| s.trim().parse::<u32>().ok())
                    .unwrap_or(1);
                plan.stochastic = Some(StochasticCrash { rate, seed, max });
            }
        }
        plan
    }
}

/// Mutable crash-decision state, owned by the coordinator and deliberately
/// outside the rollback scope.
struct CrashState {
    scripted: Vec<(u64, RegionId)>,
    stochastic: Option<(f64, SimRng, u32)>,
}

impl CrashState {
    fn new(plan: &CrashPlan) -> Self {
        CrashState {
            scripted: plan.scripted.clone(),
            stochastic: plan
                .stochastic
                .map(|s| (s.rate, SimRng::new(s.seed), s.max)),
        }
    }

    /// Decide whether to kill `region`'s window in `epoch`. Consumes the
    /// matching scripted entry / stochastic budget so it cannot re-fire on
    /// replay.
    fn decide(&mut self, epoch: u64, region: RegionId) -> bool {
        if let Some(pos) = self
            .scripted
            .iter()
            .position(|&(e, r)| e == epoch && r == region)
        {
            self.scripted.remove(pos);
            return true;
        }
        if let Some((rate, rng, remaining)) = &mut self.stochastic {
            if *remaining > 0 && rng.chance(*rate) {
                *remaining -= 1;
                return true;
            }
        }
        false
    }
}

/// How a worker panic should be handled.
enum PanicClass {
    /// A [`CrashPlan`] injection: recover by rollback + replay.
    Injected,
    /// A conservative-invariant or lookahead violation: the simulation
    /// state cannot be trusted; abort loudly.
    Invariant,
    /// Anything else: a genuine bug; abort loudly.
    Unknown,
}

fn classify_panic(payload: &(dyn std::any::Any + Send)) -> PanicClass {
    if payload.is::<InjectedCrash>() {
        return PanicClass::Injected;
    }
    let msg = payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
    if let Some(m) = msg {
        if m.contains("lookahead violation") || m.contains("conservative invariant") {
            return PanicClass::Invariant;
        }
    }
    PanicClass::Unknown
}

/// Silence the default panic printer for [`InjectedCrash`] payloads — they
/// are expected, caught, and recovered; their backtraces are pure noise.
/// All other panics keep the previous hook. Installed at most once.
fn install_quiet_crash_hook() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<InjectedCrash>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Configuration for [`ShardedEngine::run_supervised`].
#[derive(Clone, Debug, Default)]
pub struct SupervisorConfig {
    /// Scenario fingerprint stamped into every checkpoint; a resume with a
    /// different fingerprint is refused.
    pub scenario: u64,
    /// Where to write checkpoint files (`None` = in-memory rollback points
    /// only, nothing on disk).
    pub checkpoint_dir: Option<PathBuf>,
    /// Sim-time cadence between checkpoints, keyed on the global minimum
    /// pending-event time crossing each multiple (`None` = only the
    /// run-start rollback anchor; a crash then replays from the beginning).
    pub checkpoint_every: Option<SimDuration>,
    /// Harness-level crash injection schedule.
    pub crash_plan: CrashPlan,
    /// Cooperative interrupt flag (typically set from a SIGINT handler);
    /// checked at every epoch barrier.
    pub interrupt: Option<Arc<AtomicBool>>,
}

/// What the supervisor did during a [`ShardedEngine::run_supervised`] run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SupervisorReport {
    /// Worker panics recovered by rollback + replay.
    pub recoveries: u64,
    /// Checkpoint files written (cadence plus any final interrupt one).
    pub checkpoints_written: u64,
    /// True when the run stopped on the interrupt flag.
    pub interrupted: bool,
    /// Epoch of the checkpoint this run resumed from, if any.
    pub resumed_from_epoch: Option<u64>,
    /// Path of the most recent checkpoint file written.
    pub last_checkpoint: Option<PathBuf>,
}

/// One region's execution state: world, queue, outbox and bookkeeping.
struct Slot<W: RegionWorld> {
    region: RegionId,
    world: W,
    queue: EventQueue<W::Event>,
    outbox: Vec<Outgoing<W::Event>>,
    /// Everything strictly before this instant is committed: no future
    /// arrival below it is legal.
    committed: SimTime,
    processed: u64,
    stopped: bool,
    /// Wall-clock cost of the last window (filled only when timed).
    last_busy_ns: u64,
}

impl<W: RegionWorld> Slot<W> {
    /// Process every pending event strictly below `window_end` (and at or
    /// below the run horizon), then commit the window. `timed` records the
    /// window's wall-clock cost into `last_busy_ns` (profiling only — it
    /// cannot affect event execution).
    fn run_window(
        &mut self,
        window_end: SimTime,
        horizon: SimTime,
        lookahead: &Lookahead,
        timed: bool,
    ) {
        let t0 = timed.then(Instant::now);
        while let Some(t) = self.queue.peek_time() {
            if t >= window_end || t > horizon {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked event vanished");
            self.processed += 1;
            let mut ctx = RegionCtx {
                now,
                region: self.region,
                queue: &mut self.queue,
                outbox: &mut self.outbox,
                lookahead,
                horizon,
                stopped: &mut self.stopped,
            };
            self.world.handle(event, &mut ctx);
        }
        // The window is committed even when it held no events: adjacent
        // regions may have advanced on the promise that nothing older will
        // appear here.
        self.committed = self.committed.max(window_end);
        if let Some(t0) = t0 {
            self.last_busy_ns = t0.elapsed().as_nanos() as u64;
        }
    }

    /// [`run_window`](Slot::run_window), but when `crash` carries an epoch,
    /// process at most one event and then die with an [`InjectedCrash`]
    /// panic — deliberately leaving partially-mutated, uncommitted state,
    /// the worst case the supervisor's rollback must handle.
    fn run_window_crashing(
        &mut self,
        window_end: SimTime,
        horizon: SimTime,
        lookahead: &Lookahead,
        timed: bool,
        crash: Option<u64>,
    ) {
        let Some(epoch) = crash else {
            return self.run_window(window_end, horizon, lookahead, timed);
        };
        if let Some(t) = self.queue.peek_time() {
            if t < window_end && t <= horizon {
                let (now, event) = self.queue.pop().expect("peeked event vanished");
                self.processed += 1;
                let mut ctx = RegionCtx {
                    now,
                    region: self.region,
                    queue: &mut self.queue,
                    outbox: &mut self.outbox,
                    lookahead,
                    horizon,
                    stopped: &mut self.stopped,
                };
                self.world.handle(event, &mut ctx);
            }
        }
        std::panic::panic_any(InjectedCrash {
            epoch,
            region: self.region,
        });
    }
}

/// A job shipped to a worker for one epoch: the region slot plus its safe
/// window end.
struct Job<W: RegionWorld> {
    index: usize,
    slot: Box<Slot<W>>,
    window_end: SimTime,
    timed: bool,
}

/// Coordinator-side dynamic region→worker packer (work stealing by
/// deficit re-chunking at the barrier).
///
/// Every epoch, [`plan`](StealPlanner::plan) sorts the active regions by
/// predicted cost — the region's previous window's measured busy time —
/// and assigns each, longest first, to the currently least-loaded worker
/// (LPT bin packing). The decision consumes only data the barrier already
/// produces and costs `O(jobs · workers)` per epoch, so it stays cheap and
/// local in the sense of Sliwa et al.'s load-aware-decision constraint.
/// Decisions are wall-clock-derived and may differ between runs; they can
/// only remap slot→thread, never change what a window computes, so results
/// stay bit-identical for every schedule. Nothing here is checkpointed: a
/// resumed run starts with a cold planner, which is exactly as valid as
/// any other schedule.
struct StealPlanner {
    /// Last measured window cost per region (ns); 0 until first observed.
    cost_ns: Vec<u64>,
    /// Worker that ran each region's last window (static home initially).
    home: Vec<u32>,
    workers: usize,
    /// Scratch: predicted load per worker while packing.
    loads: Vec<u64>,
    /// Scratch: job indices in packing order.
    order: Vec<usize>,
    /// Output: worker for `jobs[k]`, parallel to the epoch's job list.
    assignment: Vec<u32>,
}

impl StealPlanner {
    fn new(regions: usize, workers: usize) -> Self {
        StealPlanner {
            cost_ns: vec![0; regions],
            home: (0..regions).map(|i| (i % workers) as u32).collect(),
            workers,
            loads: Vec::with_capacity(workers),
            order: Vec::new(),
            assignment: Vec::new(),
        }
    }

    /// Pack `jobs` (active region indices) onto workers; fills
    /// [`assignment`](StealPlanner::assignment) and returns how many
    /// regions moved off the worker that ran their previous window.
    fn plan(&mut self, jobs: &[usize]) -> u64 {
        self.loads.clear();
        self.loads.resize(self.workers, 0);
        self.order.clear();
        self.order.extend(0..jobs.len());
        let cost_ns = &self.cost_ns;
        self.order.sort_unstable_by(|&a, &b| {
            cost_ns[jobs[b]]
                .cmp(&cost_ns[jobs[a]])
                .then_with(|| jobs[a].cmp(&jobs[b]))
        });
        self.assignment.clear();
        self.assignment.resize(jobs.len(), 0);
        let mut moved = 0u64;
        for &k in &self.order {
            let region = jobs[k];
            let mut w = 0usize;
            for (cand, &load) in self.loads.iter().enumerate().skip(1) {
                if load < self.loads[w] {
                    w = cand;
                }
            }
            // A floor of 1 ns keeps unmeasured regions spreading across
            // the pool instead of piling onto worker 0.
            self.loads[w] += self.cost_ns[region].max(1);
            self.assignment[k] = w as u32;
            if self.home[region] != w as u32 {
                self.home[region] = w as u32;
                moved += 1;
            }
        }
        moved
    }

    /// Record a region's measured window cost (feeds the next epoch's
    /// prediction).
    fn observe(&mut self, region: usize, busy_ns: u64) {
        self.cost_ns[region] = busy_ns;
    }

    /// Post-steal imbalance of the epoch just measured: busiest worker's
    /// summed window time over the pool mean, ×1000 (1000 = perfectly
    /// balanced). Uses the fresh costs recorded by
    /// [`observe`](StealPlanner::observe) grouped by this epoch's
    /// assignment.
    fn measured_imbalance_milli(&mut self, jobs: &[usize]) -> u64 {
        self.loads.clear();
        self.loads.resize(self.workers, 0);
        for (k, &region) in jobs.iter().enumerate() {
            self.loads[self.assignment[k] as usize] += self.cost_ns[region];
        }
        let total: u64 = self.loads.iter().sum();
        if total == 0 {
            return 1000;
        }
        let max = *self.loads.iter().max().expect("workers >= 1");
        // max / (total / workers), in milli.
        max.saturating_mul(1000).saturating_mul(self.workers as u64) / total
    }
}

/// The shard-parallel conservative engine.
///
/// Build with one world per region plus a [`Lookahead`]; prime initial
/// events; [`run`](ShardedEngine::run). Results are identical for every
/// worker count — see the module docs for the argument.
pub struct ShardedEngine<W: RegionWorld> {
    /// `Some` between epochs; taken while a worker owns the slot.
    slots: Vec<Option<Box<Slot<W>>>>,
    lookahead: Lookahead,
    horizon: SimTime,
    event_budget: u64,
    /// Dynamic region→worker packing (see [`StealPlanner`]); static
    /// `region % workers` assignment when off.
    steal: bool,
    /// Reused merge batch so the epoch barrier stops allocating once the
    /// cross-region rate stabilizes.
    merge_buf: Vec<(SimTime, RegionId, u32, RegionId, W::Event)>,
    /// Counters restored by [`ShardedEngine::restore`]; zero on a fresh run.
    resume_epochs: u64,
    resume_cross: u64,
    /// Probe bytes restored from a checkpoint, handed to the probe when
    /// [`run_supervised`](ShardedEngine::run_supervised) starts.
    resume_probe: Vec<u8>,
    /// Epoch of the checkpoint this engine was restored from.
    resume_from: Option<u64>,
}

impl<W: RegionWorld> ShardedEngine<W> {
    /// Create an engine over `worlds` (one per region, in region-id order)
    /// that will run until `horizon` (inclusive, matching the sequential
    /// engine's convention).
    pub fn new(worlds: Vec<W>, lookahead: Lookahead, horizon: SimTime) -> Self {
        assert_eq!(
            worlds.len(),
            lookahead.regions(),
            "one world per lookahead region"
        );
        let slots = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| {
                Some(Box::new(Slot {
                    region: i as RegionId,
                    world,
                    queue: EventQueue::with_capacity(256),
                    outbox: Vec::new(),
                    committed: SimTime::ZERO,
                    processed: 0,
                    stopped: false,
                    last_busy_ns: 0,
                }))
            })
            .collect();
        ShardedEngine {
            slots,
            lookahead,
            horizon,
            event_budget: u64::MAX,
            steal: false,
            merge_buf: Vec::new(),
            resume_epochs: 0,
            resume_cross: 0,
            resume_probe: Vec::new(),
            resume_from: None,
        }
    }

    /// Cap the total number of dispatched events (runaway protection). The
    /// budget is checked at epoch boundaries, so a run may overshoot by at
    /// most one epoch — deterministically, whatever the worker count.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Enable work stealing: re-pack active regions onto workers every
    /// epoch from the previous window's measured busy times instead of the
    /// static `region % workers` assignment. Results are bit-identical
    /// either way (the schedule only picks threads); with one worker the
    /// setting is inert. Not part of the scenario fingerprint — a resumed
    /// run may flip it.
    pub fn with_stealing(mut self, on: bool) -> Self {
        self.steal = on;
        self
    }

    /// Grow `region`'s event-queue backing storage by `additional` slots
    /// (capacity pre-sizing from a scenario's flow/churn plans, so the
    /// steady state never reallocates mid-window).
    pub fn reserve_region(&mut self, region: RegionId, additional: usize) {
        self.slots[region as usize]
            .as_mut()
            .expect("slot present between epochs")
            .queue
            .reserve(additional);
    }

    /// Schedule an initial event in `region` before the run starts.
    pub fn prime(&mut self, region: RegionId, time: SimTime, event: W::Event) {
        self.slots[region as usize]
            .as_mut()
            .expect("slot present between epochs")
            .queue
            .schedule(time, event);
    }

    fn slot(&self, i: usize) -> &Slot<W> {
        self.slots[i]
            .as_deref()
            .expect("slot present between epochs")
    }

    /// Compute every region's safe horizon from current queue states.
    /// Region `i` may process events strictly below
    /// `min_j (T_j + D(j → i))` over **non-idle** regions `j`, where `D`
    /// is the shortest-path influence closure — including `j = i`, whose
    /// pending events can cascade back through other regions (minimum
    /// cycle). An idle region constrains nobody: any future activity there
    /// descends from some region's currently pending event, which the
    /// closure already accounts for.
    ///
    /// When `sources` is given (profiling), it is filled with the argmin
    /// region `j` that bound each horizon — which pending event the barrier
    /// is waiting on (`-1` when unbounded). Ties break to the lowest `j`,
    /// so attribution is deterministic.
    fn compute_safe_horizons(&self, out: &mut Vec<SimTime>, mut sources: Option<&mut Vec<i64>>) {
        let n = self.slots.len();
        out.clear();
        if let Some(s) = sources.as_deref_mut() {
            s.clear();
        }
        if n == 1 {
            out.push(SimTime::MAX);
            if let Some(s) = sources {
                s.push(-1);
            }
            return;
        }
        let peeks: Vec<Option<SimTime>> = (0..n).map(|i| self.slot(i).queue.peek_time()).collect();
        for i in 0..n {
            let mut h = SimTime::MAX;
            let mut src = -1i64;
            for (j, peek) in peeks.iter().enumerate() {
                let Some(t) = peek else { continue };
                let d = self.lookahead.influence(j as RegionId, i as RegionId);
                if d == NEVER {
                    continue;
                }
                let bound = t.saturating_add(d);
                if bound < h {
                    h = bound;
                    src = j as i64;
                }
            }
            out.push(h);
            if let Some(s) = sources.as_deref_mut() {
                s.push(src);
            }
        }
    }

    /// Merge every region's outbox into the destination queues in
    /// deterministic `(timestamp, source region, emission sequence)` order,
    /// checking the conservative invariant against each destination's
    /// committed horizon. Returns the number of events exchanged.
    fn merge_outboxes(&mut self) -> u64 {
        // (time, src, seq-within-src) is a total order: seq disambiguates
        // within one source and src disambiguates across sources, so no two
        // entries share a key and the merge order is unique — which also
        // means an unstable sort is deterministic here.
        let mut batch = std::mem::take(&mut self.merge_buf);
        debug_assert!(batch.is_empty());
        for i in 0..self.slots.len() {
            let slot = self.slots[i].as_mut().expect("slot present between epochs");
            let region = slot.region;
            for (seq, out) in slot.outbox.drain(..).enumerate() {
                batch.push((out.time, region, seq as u32, out.dst, out.event));
            }
        }
        if batch.is_empty() {
            self.merge_buf = batch;
            return 0;
        }
        batch.sort_unstable_by_key(|(t, src, seq, _, _)| (*t, *src, *seq));
        let n = batch.len() as u64;
        for (time, src, _, dst, event) in batch.drain(..) {
            let slot = self.slots[dst as usize]
                .as_mut()
                .expect("slot present between epochs");
            assert!(
                time >= slot.committed,
                "conservative invariant violated: region {src} delivered an event at {time:?} \
                 below region {dst}'s committed horizon {:?}",
                slot.committed
            );
            slot.queue.schedule(time, event);
        }
        self.merge_buf = batch;
        n
    }

    /// One epoch preamble: decide whether to continue and which regions are
    /// active. Fills `safe` with per-region safe horizons and `jobs` with
    /// the active region indices; returns `Err(reason)` when the run is
    /// over.
    fn epoch_plan(
        &self,
        safe: &mut Vec<SimTime>,
        jobs: &mut Vec<usize>,
        sources: Option<&mut Vec<i64>>,
    ) -> Result<(), ShardStopReason> {
        if (0..self.slots.len()).any(|i| self.slot(i).stopped) {
            return Err(ShardStopReason::Stopped);
        }
        let processed: u64 = (0..self.slots.len()).map(|i| self.slot(i).processed).sum();
        if processed >= self.event_budget {
            return Err(ShardStopReason::EventBudget);
        }
        let Some(t_min) = (0..self.slots.len())
            .filter_map(|i| self.slot(i).queue.peek_time())
            .min()
        else {
            return Err(ShardStopReason::QueueEmpty);
        };
        if t_min > self.horizon {
            return Err(ShardStopReason::HorizonReached);
        }
        self.compute_safe_horizons(safe, sources);
        jobs.clear();
        for (i, &safe_i) in safe.iter().enumerate().take(self.slots.len()) {
            if let Some(t) = self.slot(i).queue.peek_time() {
                if t < safe_i && t <= self.horizon {
                    jobs.push(i);
                }
            }
        }
        // Progress is guaranteed: the region holding t_min has
        // H = min_j(T_j + δ) > t_min because every T_j ≥ t_min and every
        // finite δ is positive, so it is always active.
        debug_assert!(
            !jobs.is_empty(),
            "conservative stall: global min {t_min:?} but no region is active"
        );
        Ok(())
    }

    /// Snapshot per-region counters before an epoch's windows run, so
    /// window samples can report deltas (profiling only).
    fn snapshot_pre_epoch(&self, s: &mut EpochScratch) {
        s.processed.clear();
        s.queue.clear();
        s.committed.clear();
        for i in 0..self.slots.len() {
            let slot = self.slot(i);
            s.processed.push(slot.processed);
            s.queue.push(slot.queue.len() as u64);
            s.committed.push(slot.committed.as_nanos());
        }
    }

    /// Deliver one [`WindowSample`] per region (ascending) for the epoch
    /// just executed. Must run before the merge drains the outboxes.
    fn emit_window_samples(
        &self,
        probe: &mut dyn ShardProbe,
        s: &EpochScratch,
        safe: &[SimTime],
        jobs: &[usize],
        epoch: u64,
    ) {
        for (i, &window_end) in safe.iter().enumerate().take(self.slots.len()) {
            let slot = self.slot(i);
            // `jobs` is built by an ascending scan, so it is sorted.
            let active = jobs.binary_search(&i).is_ok();
            probe.window(&WindowSample {
                epoch,
                region: i as RegionId,
                active,
                events: slot.processed - s.processed[i],
                busy_ns: if active { slot.last_busy_ns } else { 0 },
                queue_depth: s.queue[i],
                outbox: slot.outbox.len() as u64,
                window_start_ns: s.committed[i],
                window_end_ns: window_end.as_nanos(),
                bound_by: s.sources[i],
            });
        }
    }

    /// Run to completion using `threads` workers (clamped to the region
    /// count; 1 executes every window on the calling thread).
    pub fn run(self, threads: usize) -> (ShardRunReport, Vec<W>) {
        self.run_probed(threads, None)
    }

    /// [`run`](ShardedEngine::run) with an optional execution profiler.
    ///
    /// With `None` this is exactly `run` — no timing calls, no extra
    /// branches beyond one `Option` check per epoch. With a probe, windows
    /// are timed and per-epoch samples are delivered on the coordinator
    /// thread; simulation results are identical either way (the probe only
    /// observes slots between epochs).
    pub fn run_probed(
        mut self,
        threads: usize,
        mut probe: Option<&mut dyn ShardProbe>,
    ) -> (ShardRunReport, Vec<W>) {
        assert!(threads >= 1, "at least one thread");
        let workers = threads.min(self.slots.len());
        let t_run = Instant::now();
        let mut epochs = 0u64;
        let mut cross_region = 0u64;
        let mut safe: Vec<SimTime> = Vec::with_capacity(self.slots.len());
        let mut jobs: Vec<usize> = Vec::with_capacity(self.slots.len());
        let mut scratch = EpochScratch::default();

        let reason = if workers <= 1 {
            loop {
                let sources = probe.is_some().then_some(&mut scratch.sources);
                if let Err(reason) = self.epoch_plan(&mut safe, &mut jobs, sources) {
                    break reason;
                }
                let timed = probe.is_some();
                let t_epoch = timed.then(Instant::now);
                if timed {
                    self.snapshot_pre_epoch(&mut scratch);
                }
                epochs += 1;
                for &i in &jobs {
                    let mut slot = self.slots[i].take().expect("slot present");
                    slot.run_window(safe[i], self.horizon, &self.lookahead, timed);
                    self.slots[i] = Some(slot);
                }
                if let Some(p) = probe.as_deref_mut() {
                    self.emit_window_samples(p, &scratch, &safe, &jobs, epochs);
                }
                let t_merge = timed.then(Instant::now);
                let merged = self.merge_outboxes();
                cross_region += merged;
                if let Some(p) = probe.as_deref_mut() {
                    let merge_ns = t_merge.expect("timed").elapsed().as_nanos() as u64;
                    let wall_ns = t_epoch.expect("timed").elapsed().as_nanos() as u64;
                    p.epoch_end(epochs, wall_ns, merged, merge_ns);
                }
            }
        } else {
            // Persistent pool: each epoch ships the active slots over
            // channels and collects them all back — the channel round-trip
            // is the barrier. Which thread runs a window cannot influence
            // results: a window touches only its own slot. Assignment is
            // static (`region % workers`, so per-region state tends to stay
            // in one worker's cache) unless stealing re-packs regions from
            // the previous epoch's measured busy times.
            let stealing = self.steal;
            let mut planner = stealing.then(|| StealPlanner::new(self.slots.len(), workers));
            let horizon = self.horizon;
            let lookahead = self.lookahead.clone();
            std::thread::scope(|scope| {
                let (done_tx, done_rx) = mpsc::channel::<Job<W>>();
                let mut work_txs: Vec<mpsc::Sender<Job<W>>> = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let (tx, rx) = mpsc::channel::<Job<W>>();
                    let done = done_tx.clone();
                    let lookahead = lookahead.clone();
                    work_txs.push(tx);
                    scope.spawn(move || {
                        while let Ok(mut job) = rx.recv() {
                            job.slot
                                .run_window(job.window_end, horizon, &lookahead, job.timed);
                            if done.send(job).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(done_tx);
                loop {
                    let sources = probe.is_some().then_some(&mut scratch.sources);
                    if let Err(reason) = self.epoch_plan(&mut safe, &mut jobs, sources) {
                        break reason;
                    }
                    // Stealing needs window timings even without a probe —
                    // they are next epoch's cost predictions.
                    let timed = probe.is_some() || stealing;
                    let t_epoch = probe.is_some().then(Instant::now);
                    if probe.is_some() {
                        self.snapshot_pre_epoch(&mut scratch);
                    }
                    epochs += 1;
                    if jobs.len() == 1 {
                        // A serial epoch: skip the pool round-trip.
                        let i = jobs[0];
                        let mut slot = self.slots[i].take().expect("slot present");
                        slot.run_window(safe[i], horizon, &lookahead, timed);
                        self.slots[i] = Some(slot);
                        if let Some(pl) = planner.as_mut() {
                            pl.observe(i, self.slot(i).last_busy_ns);
                        }
                    } else {
                        let moved = planner.as_mut().map(|pl| pl.plan(&jobs));
                        for (k, &i) in jobs.iter().enumerate() {
                            let slot = self.slots[i].take().expect("slot present");
                            let job = Job {
                                index: i,
                                slot,
                                window_end: safe[i],
                                timed,
                            };
                            let w = match planner.as_ref() {
                                Some(pl) => pl.assignment[k] as usize,
                                None => i % workers,
                            };
                            work_txs[w]
                                .send(job)
                                .expect("worker alive for the whole run");
                        }
                        for _ in 0..jobs.len() {
                            let job = done_rx.recv().expect("worker returned its slot");
                            self.slots[job.index] = Some(job.slot);
                        }
                        if let Some(pl) = planner.as_mut() {
                            for &i in &jobs {
                                pl.observe(i, self.slot(i).last_busy_ns);
                            }
                            if let Some(p) = probe.as_deref_mut() {
                                let imb = pl.measured_imbalance_milli(&jobs);
                                p.steal(epochs, moved.unwrap_or(0), imb);
                            }
                        }
                    }
                    if let Some(p) = probe.as_deref_mut() {
                        self.emit_window_samples(p, &scratch, &safe, &jobs, epochs);
                    }
                    let t_merge = timed.then(Instant::now);
                    let merged = self.merge_outboxes();
                    cross_region += merged;
                    if let Some(p) = probe.as_deref_mut() {
                        let merge_ns = t_merge.expect("timed").elapsed().as_nanos() as u64;
                        let wall_ns = t_epoch.expect("timed").elapsed().as_nanos() as u64;
                        p.epoch_end(epochs, wall_ns, merged, merge_ns);
                    }
                }
            })
        };

        let end_time = (0..self.slots.len())
            .map(|i| self.slot(i).committed)
            .max()
            .unwrap_or(SimTime::ZERO)
            .min(self.horizon);
        let per_region: Vec<u64> = (0..self.slots.len())
            .map(|i| self.slot(i).processed)
            .collect();
        let report = ShardRunReport {
            reason,
            events_processed: per_region.iter().sum(),
            per_region,
            cross_region,
            epochs,
            end_time,
        };
        if let Some(p) = probe {
            p.run_end(&report, t_run.elapsed().as_nanos() as u64);
        }
        let worlds = self
            .slots
            .into_iter()
            .map(|s| s.expect("slot present after run").world)
            .collect();
        (report, worlds)
    }
}

/// A supervised job: a region slot, its safe window end, and an optional
/// injected-crash marker decided by the coordinator.
struct SupJob<W: RegionWorld> {
    index: usize,
    slot: Box<Slot<W>>,
    window_end: SimTime,
    timed: bool,
    crash: Option<u64>,
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

impl<W: RegionWorld + CheckpointState> ShardedEngine<W> {
    /// Global minimum pending-event time across regions (the next barrier's
    /// cut position; `None` when every queue is empty).
    fn min_peek(&self) -> Option<SimTime> {
        (0..self.slots.len())
            .filter_map(|i| self.slot(i).queue.peek_time())
            .min()
    }

    fn total_processed(&self) -> u64 {
        (0..self.slots.len()).map(|i| self.slot(i).processed).sum()
    }

    /// Serialize the complete engine state at an epoch barrier: run
    /// counters, then one length-prefixed block per region (committed
    /// horizon, processed count, stop flag, queue tie-break counters, every
    /// pending event with its sequence number, and the world's own state),
    /// then the probe's observer state. Must only be called at a barrier —
    /// outboxes drained, no slot checked out.
    fn encode_payload(
        &self,
        epochs: u64,
        cross_region: u64,
        probe: Option<&dyn ShardProbe>,
    ) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(epochs);
        w.u64(cross_region);
        w.u32(self.slots.len() as u32);
        for i in 0..self.slots.len() {
            let slot = self.slot(i);
            debug_assert!(
                slot.outbox.is_empty(),
                "checkpoint off a barrier: outbox not drained"
            );
            let mut b = ByteWriter::new();
            b.u64(slot.committed.as_nanos());
            b.u64(slot.processed);
            b.u8(slot.stopped as u8);
            let (next_seq, sched_total) = slot.queue.seq_state();
            b.u64(next_seq);
            b.u64(sched_total);
            let entries = slot.queue.snapshot_entries();
            b.u64(entries.len() as u64);
            for (t, seq, ev) in entries {
                b.u64(t.as_nanos());
                b.u64(seq);
                W::encode_event(ev, &mut b);
            }
            let mut wb = ByteWriter::new();
            slot.world.encode_state(&mut wb);
            b.bytes(&wb.into_inner());
            w.bytes(&b.into_inner());
        }
        let mut pb = ByteWriter::new();
        if let Some(p) = probe {
            p.encode_probe(&mut pb);
        }
        w.bytes(&pb.into_inner());
        w.into_inner()
    }

    /// Overwrite the engine's state from a payload written by
    /// [`encode_payload`](ShardedEngine::encode_payload). Returns the
    /// restored `(epochs, cross_region, probe_bytes)`. On error the engine
    /// may be partially overwritten and must be discarded.
    fn restore_payload(&mut self, payload: &[u8]) -> Result<(u64, u64, Vec<u8>), CheckpointError> {
        let mut r = ByteReader::new(payload);
        let epochs = r.u64()?;
        let cross_region = r.u64()?;
        let n = r.u32()? as usize;
        if n != self.slots.len() {
            return Err(CheckpointError::Corrupt(format!(
                "region count mismatch: checkpoint has {n}, engine has {}",
                self.slots.len()
            )));
        }
        for i in 0..n {
            let block = r.bytes()?;
            let mut br = ByteReader::new(block);
            let slot = self.slots[i].as_mut().expect("slot present between epochs");
            slot.committed = SimTime(br.u64()?);
            slot.processed = br.u64()?;
            slot.stopped = br.u8()? != 0;
            let next_seq = br.u64()?;
            let sched_total = br.u64()?;
            slot.outbox.clear();
            slot.queue.clear();
            let pending = br.u64()?;
            for _ in 0..pending {
                let t = SimTime(br.u64()?);
                let seq = br.u64()?;
                let ev = W::decode_event(&mut br)?;
                slot.queue.schedule_with_seq(t, seq, ev);
            }
            slot.queue.set_seq_state(next_seq, sched_total);
            let wblob = br.bytes()?;
            let mut wr = ByteReader::new(wblob);
            slot.world.decode_state(&mut wr)?;
            wr.expect_end()?;
            br.expect_end()?;
        }
        let probe_bytes = r.bytes()?.to_vec();
        r.expect_end()?;
        Ok((epochs, cross_region, probe_bytes))
    }

    /// Restore a checkpoint image into this (freshly built, identically
    /// configured) engine. Validates magic, version, checksum, and the
    /// scenario fingerprint; a subsequent
    /// [`run_supervised`](ShardedEngine::run_supervised) continues exactly
    /// where the checkpointed run stood. On error the engine must be
    /// discarded.
    pub fn restore(
        &mut self,
        bytes: &[u8],
        expected_scenario: u64,
    ) -> Result<CheckpointMeta, CheckpointError> {
        let (meta, payload) = checkpoint::open(bytes)?;
        if meta.scenario != expected_scenario {
            return Err(CheckpointError::ScenarioMismatch {
                found: meta.scenario,
                expected: expected_scenario,
            });
        }
        let (epochs, cross, probe) = self.restore_payload(payload)?;
        self.resume_epochs = epochs;
        self.resume_cross = cross;
        self.resume_probe = probe;
        self.resume_from = Some(meta.epoch);
        Ok(meta)
    }

    /// [`run_probed`](ShardedEngine::run_probed) under a crash-tolerant
    /// supervisor: worker panics are caught and classified — harness-
    /// injected crashes ([`CrashPlan`]) roll every region back to the last
    /// checkpoint anchor and replay; invariant violations and unknown
    /// panics abort loudly. Checkpoints are taken at epoch barriers (the
    /// engine's globally consistent cuts) whenever the global minimum
    /// pending-event time crosses a multiple of
    /// [`SupervisorConfig::checkpoint_every`], and written atomically to
    /// [`SupervisorConfig::checkpoint_dir`]. The interrupt flag stops the
    /// run at the next barrier after writing a final checkpoint.
    ///
    /// Recovery and resume are bit-identical: a replayed or resumed run
    /// produces exactly the worlds, report counters, and probe observations
    /// of an uninterrupted one, for any worker count. Probe callbacks for
    /// epochs already observed (before a rollback, or before the resumed
    /// checkpoint) are suppressed, so observers see each epoch exactly
    /// once.
    pub fn run_supervised(
        mut self,
        threads: usize,
        mut probe: Option<&mut dyn ShardProbe>,
        cfg: &SupervisorConfig,
    ) -> Result<(ShardRunReport, Vec<W>, SupervisorReport), CheckpointError> {
        assert!(threads >= 1, "at least one thread");
        if !cfg.crash_plan.is_empty() {
            install_quiet_crash_hook();
        }
        let workers = threads.min(self.slots.len());
        let t_run = Instant::now();

        let mut epochs = self.resume_epochs;
        let mut cross_region = self.resume_cross;
        // Epochs at or below this were already observed (in this process or
        // the checkpointed one); suppress probe callbacks for them.
        let mut max_emitted = self.resume_epochs;
        let mut sup = SupervisorReport {
            resumed_from_epoch: self.resume_from,
            ..SupervisorReport::default()
        };
        if !self.resume_probe.is_empty() {
            if let Some(p) = probe.as_deref_mut() {
                let bytes = std::mem::take(&mut self.resume_probe);
                let mut r = ByteReader::new(&bytes);
                p.decode_probe(&mut r)?;
                r.expect_end()?;
            }
        }
        let mut crash = CrashState::new(&cfg.crash_plan);
        let every_ns = cfg.checkpoint_every.map(|d| d.0.max(1));
        // Cadence marks are keyed on the global minimum pending time (the
        // committed-horizon minimum never advances for idle regions).
        let mut last_mark: u64 = match (every_ns, self.min_peek()) {
            (Some(e), Some(t)) => t.as_nanos() / e,
            _ => 0,
        };
        // Rollback anchor: a full serialized cut at the current barrier,
        // refreshed at every checkpoint mark. Always present, so recovery
        // works even with checkpointing off (replay from the start).
        let mut anchor = self.encode_payload(epochs, cross_region, probe.as_deref());

        let mut safe: Vec<SimTime> = Vec::with_capacity(self.slots.len());
        let mut jobs: Vec<usize> = Vec::with_capacity(self.slots.len());
        let mut scratch = EpochScratch::default();
        let horizon = self.horizon;
        let lookahead = self.lookahead.clone();
        // Planner state is wall-clock-only and deliberately not part of the
        // anchor or any checkpoint: rollback, replay and resume all start
        // from whatever (possibly cold, possibly stale) predictions are at
        // hand — any schedule is equally correct.
        let stealing = self.steal && workers > 1;
        let mut planner = stealing.then(|| StealPlanner::new(self.slots.len(), workers));

        let reason = std::thread::scope(|scope| -> Result<ShardStopReason, CheckpointError> {
            let (done_tx, done_rx) = mpsc::channel::<(SupJob<W>, Option<PanicPayload>)>();
            let mut work_txs: Vec<mpsc::Sender<SupJob<W>>> = Vec::with_capacity(workers);
            if workers > 1 {
                for _ in 0..workers {
                    let (tx, rx) = mpsc::channel::<SupJob<W>>();
                    let done = done_tx.clone();
                    let lookahead = lookahead.clone();
                    work_txs.push(tx);
                    scope.spawn(move || {
                        while let Ok(mut job) = rx.recv() {
                            let res = catch_unwind(AssertUnwindSafe(|| {
                                job.slot.run_window_crashing(
                                    job.window_end,
                                    horizon,
                                    &lookahead,
                                    job.timed,
                                    job.crash,
                                )
                            }));
                            if done.send((job, res.err())).is_err() {
                                break;
                            }
                        }
                    });
                }
            }
            drop(done_tx);
            loop {
                // Barrier: outboxes drained, no slot checked out — a
                // globally consistent cut.
                if cfg
                    .interrupt
                    .as_ref()
                    .is_some_and(|f| f.load(Ordering::Relaxed))
                {
                    if let Some(dir) = &cfg.checkpoint_dir {
                        let payload = self.encode_payload(epochs, cross_region, probe.as_deref());
                        let committed =
                            self.min_peek().map(|t| t.as_nanos()).unwrap_or_else(|| {
                                (0..self.slots.len())
                                    .map(|i| self.slot(i).committed.as_nanos())
                                    .max()
                                    .unwrap_or(0)
                            });
                        let img = checkpoint::seal(
                            cfg.scenario,
                            epochs,
                            committed,
                            self.slots.len() as u32,
                            self.total_processed(),
                            &payload,
                        );
                        let path = dir.join(checkpoint::file_name(epochs));
                        checkpoint::write_atomic(&path, &img)?;
                        sup.checkpoints_written += 1;
                        sup.last_checkpoint = Some(path);
                    }
                    sup.interrupted = true;
                    break Ok(ShardStopReason::Interrupted);
                }
                if let (Some(every), Some(t_min)) = (every_ns, self.min_peek()) {
                    let mark = t_min.as_nanos() / every;
                    if mark > last_mark {
                        last_mark = mark;
                        anchor = self.encode_payload(epochs, cross_region, probe.as_deref());
                        if let Some(dir) = &cfg.checkpoint_dir {
                            let img = checkpoint::seal(
                                cfg.scenario,
                                epochs,
                                t_min.as_nanos(),
                                self.slots.len() as u32,
                                self.total_processed(),
                                &anchor,
                            );
                            let path = dir.join(checkpoint::file_name(epochs));
                            checkpoint::write_atomic(&path, &img)?;
                            sup.checkpoints_written += 1;
                            sup.last_checkpoint = Some(path);
                        }
                    }
                }
                let will_emit = probe.is_some() && epochs + 1 > max_emitted;
                let sources = will_emit.then_some(&mut scratch.sources);
                if let Err(reason) = self.epoch_plan(&mut safe, &mut jobs, sources) {
                    break Ok(reason);
                }
                let timed = will_emit || stealing;
                let t_epoch = will_emit.then(Instant::now);
                if will_emit {
                    self.snapshot_pre_epoch(&mut scratch);
                }
                epochs += 1;
                // Crash decisions are made here, on the coordinator, in
                // ascending region order — identical for every worker
                // count, and consumed so a replay cannot re-fire them.
                let crashes: Vec<Option<u64>> = jobs
                    .iter()
                    .map(|&i| crash.decide(epochs, i as RegionId).then_some(epochs))
                    .collect();
                let mut payloads: Vec<PanicPayload> = Vec::new();
                // `Some(moved)` when the planner packed this epoch.
                let mut steal_moved: Option<u64> = None;
                if workers <= 1 || jobs.len() == 1 {
                    // Serial epoch (or serial engine): skip the pool
                    // round-trip, exactly like the plain run loop. Crash
                    // injection and panic isolation still apply.
                    for (k, &i) in jobs.iter().enumerate() {
                        let mut slot = self.slots[i].take().expect("slot present");
                        let res = catch_unwind(AssertUnwindSafe(|| {
                            slot.run_window_crashing(
                                safe[i], horizon, &lookahead, timed, crashes[k],
                            )
                        }));
                        self.slots[i] = Some(slot);
                        if let Err(p) = res {
                            payloads.push(p);
                        }
                    }
                    if let Some(pl) = planner.as_mut() {
                        for &i in &jobs {
                            pl.observe(i, self.slot(i).last_busy_ns);
                        }
                    }
                } else {
                    steal_moved = planner.as_mut().map(|pl| pl.plan(&jobs));
                    for (k, &i) in jobs.iter().enumerate() {
                        let slot = self.slots[i].take().expect("slot present");
                        let job = SupJob {
                            index: i,
                            slot,
                            window_end: safe[i],
                            timed,
                            crash: crashes[k],
                        };
                        let w = match planner.as_ref() {
                            Some(pl) => pl.assignment[k] as usize,
                            None => i % workers,
                        };
                        work_txs[w]
                            .send(job)
                            .expect("worker alive for the whole run");
                    }
                    for _ in 0..jobs.len() {
                        let (job, payload) = done_rx.recv().expect("worker returned its slot");
                        self.slots[job.index] = Some(job.slot);
                        if let Some(p) = payload {
                            payloads.push(p);
                        }
                    }
                    if let Some(pl) = planner.as_mut() {
                        for &i in &jobs {
                            pl.observe(i, self.slot(i).last_busy_ns);
                        }
                    }
                }
                if !payloads.is_empty() {
                    // A fatal panic wins over recovery, whatever order the
                    // payloads arrived in.
                    if let Some(pos) = payloads
                        .iter()
                        .position(|p| !matches!(classify_panic(p.as_ref()), PanicClass::Injected))
                    {
                        let p = payloads.swap_remove(pos);
                        let what = match classify_panic(p.as_ref()) {
                            PanicClass::Invariant => "conservative-invariant violation",
                            _ => "unclassified worker panic",
                        };
                        eprintln!(
                            "shard supervisor: {what} in epoch {epochs}; state cannot be \
                             trusted, aborting"
                        );
                        resume_unwind(p);
                    }
                    // All injected: roll every region back to the anchor
                    // and replay. Counters and probe gating make the replay
                    // invisible in the results.
                    sup.recoveries += 1;
                    let (e, c, _) = self.restore_payload(&anchor)?;
                    epochs = e;
                    cross_region = c;
                    continue;
                }
                if will_emit {
                    if let Some(p) = probe.as_deref_mut() {
                        self.emit_window_samples(p, &scratch, &safe, &jobs, epochs);
                        if let (Some(moved), Some(pl)) = (steal_moved, planner.as_mut()) {
                            let imb = pl.measured_imbalance_milli(&jobs);
                            p.steal(epochs, moved, imb);
                        }
                    }
                    max_emitted = epochs;
                }
                let t_merge = timed.then(Instant::now);
                let merged = self.merge_outboxes();
                cross_region += merged;
                if will_emit {
                    if let Some(p) = probe.as_deref_mut() {
                        let merge_ns = t_merge.expect("timed").elapsed().as_nanos() as u64;
                        let wall_ns = t_epoch.expect("timed").elapsed().as_nanos() as u64;
                        p.epoch_end(epochs, wall_ns, merged, merge_ns);
                    }
                }
            }
        })?;

        let end_time = (0..self.slots.len())
            .map(|i| self.slot(i).committed)
            .max()
            .unwrap_or(SimTime::ZERO)
            .min(self.horizon);
        let per_region: Vec<u64> = (0..self.slots.len())
            .map(|i| self.slot(i).processed)
            .collect();
        let report = ShardRunReport {
            reason,
            events_processed: per_region.iter().sum(),
            per_region,
            cross_region,
            epochs,
            end_time,
        };
        if let Some(p) = probe {
            p.run_end(&report, t_run.elapsed().as_nanos() as u64);
        }
        let worlds = self
            .slots
            .into_iter()
            .map(|s| s.expect("slot present after run").world)
            .collect();
        Ok((report, worlds, sup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of regions passing one token carrying its remaining hop
    /// count; every region logs each visit.
    struct Ring {
        n: u32,
        hop: SimDuration,
        visits: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    struct Token(u32);

    impl RegionWorld for Ring {
        type Event = Token;
        fn handle(&mut self, ev: Token, ctx: &mut RegionCtx<'_, Token>) {
            self.visits.push((ctx.now().as_nanos(), ctx.region()));
            if ev.0 == 0 {
                return;
            }
            let dst = (ctx.region() + 1) % self.n;
            let at = ctx.now() + self.hop;
            ctx.send(dst, at, Token(ev.0 - 1));
        }
    }

    fn ring_engine(n: u32, hops: u32, threads: usize) -> (ShardRunReport, Vec<Ring>) {
        let hop = SimDuration::from_micros(250);
        let worlds: Vec<Ring> = (0..n)
            .map(|_| Ring {
                n,
                hop,
                visits: vec![],
            })
            .collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::uniform(n as usize, hop),
            SimTime::from_secs(10),
        );
        eng.prime(0, SimTime::ZERO, Token(hops));
        eng.run(threads)
    }

    #[test]
    fn token_ring_runs_to_completion() {
        let (report, worlds) = ring_engine(4, 11, 1);
        assert_eq!(report.reason, ShardStopReason::QueueEmpty);
        assert_eq!(report.events_processed, 12);
        assert_eq!(report.cross_region, 11);
        let visited: usize = worlds.iter().map(|w| w.visits.len()).sum();
        assert_eq!(visited, 12);
    }

    #[test]
    fn worker_count_does_not_change_ring_results() {
        let (r1, w1) = ring_engine(6, 100, 1);
        for threads in [2, 3, 8] {
            let (rt, wt) = ring_engine(6, 100, threads);
            assert_eq!(r1.events_processed, rt.events_processed);
            assert_eq!(r1.epochs, rt.epochs);
            assert_eq!(r1.end_time, rt.end_time);
            for (a, b) in w1.iter().zip(&wt) {
                assert_eq!(a.visits, b.visits);
            }
        }
    }

    /// All regions concurrently active: periodic local ticks plus
    /// cross-region messages every third tick. Exercises the real worker
    /// pool (several jobs per epoch), unlike the single-token ring.
    struct Chatter {
        n: u32,
        log: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    enum ChatterEv {
        Tick(u32),
        Msg(u32),
    }

    impl RegionWorld for Chatter {
        type Event = ChatterEv;
        fn handle(&mut self, ev: ChatterEv, ctx: &mut RegionCtx<'_, ChatterEv>) {
            match ev {
                ChatterEv::Tick(k) => {
                    self.log.push((ctx.now().as_nanos(), k));
                    if k < 200 {
                        ctx.after(SimDuration::from_millis(1), ChatterEv::Tick(k + 1));
                    }
                    if k % 3 == 0 {
                        let dst = (ctx.region() + 1) % self.n;
                        ctx.send(
                            dst,
                            ctx.now() + SimDuration::from_micros(250),
                            ChatterEv::Msg(k),
                        );
                    }
                }
                ChatterEv::Msg(k) => {
                    self.log.push((ctx.now().as_nanos(), 1_000_000 + k));
                }
            }
        }
    }

    fn chatter_engine(n: u32, threads: usize) -> (ShardRunReport, Vec<Chatter>) {
        let worlds: Vec<Chatter> = (0..n).map(|_| Chatter { n, log: vec![] }).collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::uniform(n as usize, SimDuration::from_micros(250)),
            SimTime::from_secs(5),
        );
        for r in 0..n {
            // Staggered starts so timestamps across regions interleave.
            eng.prime(r, SimTime::from_micros(7 * r as u64), ChatterEv::Tick(0));
        }
        eng.run(threads)
    }

    #[test]
    fn concurrent_regions_are_bit_identical_across_worker_counts() {
        let (r1, w1) = chatter_engine(8, 1);
        assert_eq!(r1.reason, ShardStopReason::QueueEmpty);
        // 8 regions × (201 ticks + 67 messages received).
        assert_eq!(r1.events_processed, 8 * (201 + 67));
        for threads in [2, 4, 8] {
            let (rt, wt) = chatter_engine(8, threads);
            assert_eq!(r1.events_processed, rt.events_processed);
            assert_eq!(r1.cross_region, rt.cross_region);
            assert_eq!(r1.epochs, rt.epochs);
            assert_eq!(r1.per_region, rt.per_region);
            assert_eq!(r1.end_time, rt.end_time);
            for (a, b) in w1.iter().zip(&wt) {
                assert_eq!(a.log, b.log);
            }
        }
    }

    fn chatter_engine_steal(n: u32, threads: usize) -> (ShardRunReport, Vec<Chatter>) {
        let worlds: Vec<Chatter> = (0..n).map(|_| Chatter { n, log: vec![] }).collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::uniform(n as usize, SimDuration::from_micros(250)),
            SimTime::from_secs(5),
        )
        .with_stealing(true);
        for r in 0..n {
            eng.prime(r, SimTime::from_micros(7 * r as u64), ChatterEv::Tick(0));
        }
        eng.run(threads)
    }

    #[test]
    fn stealing_is_bit_identical_to_static_assignment() {
        let (r_static, w_static) = chatter_engine(8, 1);
        for threads in [1, 2, 3, 8] {
            let (rs, ws) = chatter_engine_steal(8, threads);
            assert_eq!(r_static.events_processed, rs.events_processed);
            assert_eq!(r_static.cross_region, rs.cross_region);
            assert_eq!(r_static.epochs, rs.epochs);
            assert_eq!(r_static.per_region, rs.per_region);
            assert_eq!(r_static.end_time, rs.end_time);
            for (a, b) in w_static.iter().zip(&ws) {
                assert_eq!(a.log, b.log);
            }
        }
    }

    #[test]
    fn steal_planner_packs_longest_first_and_counts_moves() {
        let mut pl = StealPlanner::new(6, 2);
        // Region costs: 0:100, 1:10, 2:90, 3:10, 4:0, 5:0.
        pl.observe(0, 100);
        pl.observe(1, 10);
        pl.observe(2, 90);
        pl.observe(3, 10);
        let jobs = vec![0, 1, 2, 3, 4, 5];
        let moved = pl.plan(&jobs);
        // LPT: 0→w0(100), 2→w1(90), 1→w1(100), 3→w0(110), 4→w1(101),
        // 5→w0(111)... assignment is deterministic given the costs.
        assert_eq!(pl.assignment.len(), jobs.len());
        let w0: u64 = jobs
            .iter()
            .enumerate()
            .filter(|&(k, _)| pl.assignment[k] == 0)
            .map(|(_, &r)| [100u64, 10, 90, 10, 0, 0][r].max(1))
            .sum();
        let w1: u64 = jobs
            .iter()
            .enumerate()
            .filter(|&(k, _)| pl.assignment[k] == 1)
            .map(|(_, &r)| [100u64, 10, 90, 10, 0, 0][r].max(1))
            .sum();
        // LPT on these costs lands within one smallest item of even.
        assert!(w0.abs_diff(w1) <= 10, "w0={w0} w1={w1}");
        // Static homes were region % 2; some regions must have moved.
        assert!(moved > 0);
        // Re-planning with unchanged costs is stable: nothing moves again.
        let moved2 = pl.plan(&jobs);
        assert_eq!(moved2, 0);
        let imb = pl.measured_imbalance_milli(&jobs);
        assert!((1000..1200).contains(&imb), "imbalance {imb}");
    }

    #[test]
    fn horizon_cuts_off() {
        // 250 µs per hop, 10 s horizon ⇒ visits at 0, 250 µs, …, 10 s
        // exactly: 40 001 events; the next lies past the horizon.
        let (report, worlds) = ring_engine(3, 100_000, 2);
        assert_eq!(report.reason, ShardStopReason::HorizonReached);
        let visited: usize = worlds.iter().map(|w| w.visits.len()).sum();
        assert_eq!(visited, 40_001);
    }

    #[test]
    fn event_budget_stops() {
        let hop = SimDuration::from_micros(250);
        let worlds: Vec<Ring> = (0..4)
            .map(|_| Ring {
                n: 4,
                hop,
                visits: vec![],
            })
            .collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::uniform(4, hop),
            SimTime::MAX - SimDuration::from_secs(1),
        )
        .with_event_budget(57);
        eng.prime(0, SimTime::ZERO, Token(u32::MAX));
        let (report, _) = eng.run(2);
        assert_eq!(report.reason, ShardStopReason::EventBudget);
        assert!(report.events_processed >= 57);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn under_declared_lookahead_panics() {
        struct Cheater;
        impl RegionWorld for Cheater {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut RegionCtx<'_, ()>) {
                // Declared lookahead is 1 ms but the send arrives in 1 µs.
                let at = ctx.now() + SimDuration::from_micros(1);
                ctx.send(1, at, ());
            }
        }
        let mut eng = ShardedEngine::new(
            vec![Cheater, Cheater],
            Lookahead::uniform(2, SimDuration::from_millis(1)),
            SimTime::from_secs(1),
        );
        eng.prime(0, SimTime::ZERO, ());
        let _ = eng.run(1);
    }

    #[test]
    fn stop_is_deterministic_across_threads() {
        /// Stops the run at the 10th visit of region 0.
        struct Stopper {
            n: u32,
            seen: u32,
        }
        impl RegionWorld for Stopper {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut RegionCtx<'_, ()>) {
                if ctx.region() == 0 {
                    self.seen += 1;
                    if self.seen == 10 {
                        ctx.stop();
                        return;
                    }
                }
                let dst = (ctx.region() + 1) % self.n;
                ctx.send(dst, ctx.now() + SimDuration::from_micros(100), ());
            }
        }
        let run = |threads: usize| {
            let worlds: Vec<Stopper> = (0..5).map(|_| Stopper { n: 5, seen: 0 }).collect();
            let mut eng = ShardedEngine::new(
                worlds,
                Lookahead::uniform(5, SimDuration::from_micros(100)),
                SimTime::from_secs(60),
            );
            eng.prime(0, SimTime::ZERO, ());
            let (report, worlds) = eng.run(threads);
            (report.reason, report.events_processed, worlds[0].seen)
        };
        let (ra, ea, sa) = run(1);
        let (rb, eb, sb) = run(4);
        assert_eq!(ra, ShardStopReason::Stopped);
        assert_eq!((ra, ea, sa), (rb, eb, sb));
    }

    #[test]
    fn single_region_degenerates_to_sequential() {
        struct Count {
            fired: Vec<u64>,
        }
        impl RegionWorld for Count {
            type Event = u64;
            fn handle(&mut self, ev: u64, ctx: &mut RegionCtx<'_, u64>) {
                self.fired.push(ev);
                if ev < 5 {
                    ctx.after(SimDuration::from_secs(1), ev + 1);
                }
            }
        }
        let mut eng = ShardedEngine::new(
            vec![Count { fired: vec![] }],
            Lookahead::uniform(1, SimDuration::ZERO),
            SimTime::from_secs(100),
        );
        eng.prime(0, SimTime::ZERO, 0);
        let (report, worlds) = eng.run(1);
        assert_eq!(report.reason, ShardStopReason::QueueEmpty);
        assert_eq!(worlds[0].fired, vec![0, 1, 2, 3, 4, 5]);
        // One region means one unbounded window: the whole run is a single
        // epoch.
        assert_eq!(report.epochs, 1);
    }

    #[test]
    fn never_linked_regions_run_fully_independently() {
        struct Island {
            ticks: u32,
        }
        impl RegionWorld for Island {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut RegionCtx<'_, ()>) {
                self.ticks += 1;
                if self.ticks < 1000 {
                    ctx.after(SimDuration::from_millis(1), ());
                }
            }
        }
        let worlds: Vec<Island> = (0..4).map(|_| Island { ticks: 0 }).collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::from_fn(4, |_, _| NEVER),
            SimTime::from_secs(10),
        );
        for r in 0..4 {
            eng.prime(r, SimTime(r as u64), ());
        }
        let (report, worlds) = eng.run(4);
        assert_eq!(report.reason, ShardStopReason::QueueEmpty);
        assert!(worlds.iter().all(|w| w.ticks == 1000));
        // No links ⇒ every safe horizon is ∞ ⇒ each region drains in one
        // window and the run is a single epoch.
        assert_eq!(report.epochs, 1);
    }

    /// Records everything a probe sees, keeping only sim-derived fields so
    /// runs can be compared across worker counts.
    // (epoch, region, active, events, queue_depth, outbox, start, end, bound_by)
    type WindowRow = (u64, u32, bool, u64, u64, u64, u64, u64, i64);

    #[derive(Default)]
    struct Recorder {
        windows: Vec<WindowRow>,
        merges: Vec<(u64, u64)>, // (epoch, merged)
        run: Option<(u64, u64)>, // (events_processed, epochs)
    }

    impl ShardProbe for Recorder {
        fn window(&mut self, s: &WindowSample) {
            self.windows.push((
                s.epoch,
                s.region,
                s.active,
                s.events,
                s.queue_depth,
                s.outbox,
                s.window_start_ns,
                s.window_end_ns,
                s.bound_by,
            ));
        }
        fn epoch_end(&mut self, epoch: u64, _wall_ns: u64, merged: u64, _merge_ns: u64) {
            self.merges.push((epoch, merged));
        }
        fn run_end(&mut self, report: &ShardRunReport, _wall_ns: u64) {
            self.run = Some((report.events_processed, report.epochs));
        }
    }

    #[test]
    fn probe_samples_are_identical_across_worker_counts() {
        let run = |threads: usize| {
            let hop = SimDuration::from_micros(250);
            let worlds: Vec<Ring> = (0..6)
                .map(|_| Ring {
                    n: 6,
                    hop,
                    visits: vec![],
                })
                .collect();
            let mut eng =
                ShardedEngine::new(worlds, Lookahead::uniform(6, hop), SimTime::from_secs(1));
            eng.prime(0, SimTime::ZERO, Token(300));
            let mut rec = Recorder::default();
            let (report, _) = eng.run_probed(threads, Some(&mut rec));
            (report.events_processed, rec)
        };
        let (e1, r1) = run(1);
        let (e2, r2) = run(2);
        let (e8, r8) = run(8);
        assert_eq!(e1, 301);
        assert_eq!((e1, e2), (e2, e8));
        assert!(!r1.windows.is_empty());
        assert_eq!(r1.windows, r2.windows);
        assert_eq!(r1.windows, r8.windows);
        assert_eq!(r1.merges, r2.merges);
        assert_eq!(r1.merges, r8.merges);
        assert_eq!(r1.run, r2.run);
        assert_eq!(r1.run, r8.run);
        // Every window's bound is attributable: either a region index or -1.
        assert!(r1
            .windows
            .iter()
            .all(|w| w.8 == -1 || (w.8 >= 0 && w.8 < 6)));
    }

    #[test]
    fn probing_does_not_change_results() {
        let base = ring_engine(5, 400, 2);
        let hop = SimDuration::from_micros(250);
        let worlds: Vec<Ring> = (0..5)
            .map(|_| Ring {
                n: 5,
                hop,
                visits: vec![],
            })
            .collect();
        let mut eng =
            ShardedEngine::new(worlds, Lookahead::uniform(5, hop), SimTime::from_secs(10));
        eng.prime(0, SimTime::ZERO, Token(400));
        let mut rec = Recorder::default();
        let (report, worlds) = eng.run_probed(2, Some(&mut rec));
        assert_eq!(report.events_processed, base.0.events_processed);
        assert_eq!(report.epochs, base.0.epochs);
        for (a, b) in worlds.iter().zip(base.1.iter()) {
            assert_eq!(a.visits, b.visits);
        }
    }

    // ---- crash tolerance & checkpointing ----

    impl CheckpointState for Chatter {
        fn encode_state(&self, out: &mut ByteWriter) {
            out.u32(self.n);
            out.u64(self.log.len() as u64);
            for &(t, k) in &self.log {
                out.u64(t);
                out.u32(k);
            }
        }
        fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
            self.n = r.u32()?;
            let len = r.u64()?;
            self.log.clear();
            for _ in 0..len {
                let t = r.u64()?;
                let k = r.u32()?;
                self.log.push((t, k));
            }
            Ok(())
        }
        fn encode_event(event: &ChatterEv, out: &mut ByteWriter) {
            match event {
                ChatterEv::Tick(k) => {
                    out.u8(0);
                    out.u32(*k);
                }
                ChatterEv::Msg(k) => {
                    out.u8(1);
                    out.u32(*k);
                }
            }
        }
        fn decode_event(r: &mut ByteReader<'_>) -> Result<ChatterEv, CheckpointError> {
            match r.u8()? {
                0 => Ok(ChatterEv::Tick(r.u32()?)),
                1 => Ok(ChatterEv::Msg(r.u32()?)),
                t => Err(CheckpointError::Corrupt(format!("bad chatter tag {t}"))),
            }
        }
    }

    fn chatter_worlds(n: u32) -> Vec<Chatter> {
        (0..n).map(|_| Chatter { n, log: vec![] }).collect()
    }

    fn chatter_sup_engine(n: u32) -> ShardedEngine<Chatter> {
        let mut eng = ShardedEngine::new(
            chatter_worlds(n),
            Lookahead::uniform(n as usize, SimDuration::from_micros(250)),
            SimTime::from_secs(5),
        );
        for r in 0..n {
            eng.prime(r, SimTime::from_micros(7 * r as u64), ChatterEv::Tick(0));
        }
        eng
    }

    fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wmn_shard_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn supervised_without_features_matches_plain() {
        let (rp, wp) = chatter_engine(6, 2);
        let cfg = SupervisorConfig::default();
        let (rs, ws, sup) = chatter_sup_engine(6)
            .run_supervised(2, None, &cfg)
            .expect("supervised run");
        assert_eq!(rp.events_processed, rs.events_processed);
        assert_eq!(rp.epochs, rs.epochs);
        assert_eq!(rp.cross_region, rs.cross_region);
        assert_eq!(rp.per_region, rs.per_region);
        for (a, b) in wp.iter().zip(&ws) {
            assert_eq!(a.log, b.log);
        }
        assert_eq!(sup, SupervisorReport::default());
    }

    #[test]
    fn injected_crashes_recover_bit_identically_across_threads() {
        let (rp, wp) = chatter_engine(6, 1);
        for threads in [1usize, 4] {
            let cfg = SupervisorConfig {
                crash_plan: CrashPlan {
                    scripted: vec![(3, 1), (5, 0)],
                    stochastic: None,
                },
                checkpoint_every: Some(SimDuration::from_millis(20)),
                ..SupervisorConfig::default()
            };
            let (rs, ws, sup) = chatter_sup_engine(6)
                .run_supervised(threads, None, &cfg)
                .expect("supervised run");
            assert_eq!(sup.recoveries, 2, "threads={threads}");
            assert_eq!(
                rp.events_processed, rs.events_processed,
                "threads={threads}"
            );
            assert_eq!(rp.epochs, rs.epochs);
            assert_eq!(rp.cross_region, rs.cross_region);
            for (a, b) in wp.iter().zip(&ws) {
                assert_eq!(a.log, b.log);
            }
        }
    }

    #[test]
    fn stochastic_crashes_recover_bit_identically() {
        let (rp, wp) = chatter_engine(4, 1);
        let cfg = SupervisorConfig {
            crash_plan: CrashPlan {
                scripted: vec![],
                stochastic: Some(StochasticCrash {
                    rate: 0.05,
                    seed: 99,
                    max: 3,
                }),
            },
            ..SupervisorConfig::default()
        };
        let (rs, ws, sup) = chatter_sup_engine(4)
            .run_supervised(4, None, &cfg)
            .expect("supervised run");
        assert!(sup.recoveries >= 1, "stochastic plan never fired");
        assert_eq!(rp.events_processed, rs.events_processed);
        for (a, b) in wp.iter().zip(&ws) {
            assert_eq!(a.log, b.log);
        }
    }

    #[test]
    fn crash_recovery_preserves_probe_observations() {
        // Plain probed run as the reference observation stream.
        let mut plain = Recorder::default();
        let (base, _) = chatter_sup_engine(6).run_probed(2, Some(&mut plain));
        let mut rec = Recorder::default();
        let cfg = SupervisorConfig {
            crash_plan: CrashPlan {
                scripted: vec![(4, 2)],
                stochastic: None,
            },
            checkpoint_every: Some(SimDuration::from_millis(20)),
            ..SupervisorConfig::default()
        };
        let (rs, _, sup) = chatter_sup_engine(6)
            .run_supervised(2, Some(&mut rec), &cfg)
            .expect("supervised run");
        assert_eq!(sup.recoveries, 1);
        assert_eq!(base.events_processed, rs.events_processed);
        assert_eq!(plain.windows, rec.windows);
        assert_eq!(plain.merges, rec.merges);
        assert_eq!(plain.run, rec.run);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let dir = temp_ckpt_dir("resume");
        let (rp, wp) = chatter_engine(6, 1);
        let cfg = SupervisorConfig {
            scenario: 0x5EED,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(SimDuration::from_millis(20)),
            ..SupervisorConfig::default()
        };
        let (_, _, sup) = chatter_sup_engine(6)
            .run_supervised(2, None, &cfg)
            .expect("checkpointed run");
        assert!(sup.checkpoints_written >= 2, "want several checkpoints");
        let files = checkpoint::list_dir(&dir).expect("list");
        // Resume from a mid-run checkpoint in a fresh engine (not primed:
        // restore overwrites every queue) at a different worker count.
        let (epoch, mid) = &files[files.len() / 2];
        let bytes = checkpoint::read_file(mid).expect("read");
        let mut eng = ShardedEngine::new(
            chatter_worlds(6),
            Lookahead::uniform(6, SimDuration::from_micros(250)),
            SimTime::from_secs(5),
        );
        let meta = eng.restore(&bytes, 0x5EED).expect("restore");
        assert_eq!(Some(meta.epoch), *epoch);
        let (rr, wr, sup2) = eng
            .run_supervised(4, None, &SupervisorConfig::default())
            .expect("resumed run");
        assert_eq!(sup2.resumed_from_epoch, Some(meta.epoch));
        assert_eq!(rp.events_processed, rr.events_processed);
        assert_eq!(rp.epochs, rr.epochs);
        assert_eq!(rp.cross_region, rr.cross_region);
        assert_eq!(rp.end_time, rr.end_time);
        for (a, b) in wp.iter().zip(&wr) {
            assert_eq!(a.log, b.log);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A checkpoint carries no scheduler state: a run checkpointed with
    /// stealing on may resume with it off (and vice versa) at any worker
    /// count and still reproduce the uninterrupted run exactly.
    #[test]
    fn resume_may_change_the_steal_schedule() {
        let dir = temp_ckpt_dir("steal_resume");
        let (rp, wp) = chatter_engine(6, 1);
        let cfg = SupervisorConfig {
            scenario: 0x57EA1,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(SimDuration::from_millis(20)),
            ..SupervisorConfig::default()
        };
        let (_, _, sup) = chatter_sup_engine(6)
            .with_stealing(true)
            .run_supervised(3, None, &cfg)
            .expect("checkpointed stealing run");
        assert!(sup.checkpoints_written >= 2, "want several checkpoints");
        let files = checkpoint::list_dir(&dir).expect("list");
        let (_, mid) = &files[files.len() / 2];
        let bytes = checkpoint::read_file(mid).expect("read");
        for (threads, steal) in [(2usize, false), (4usize, true)] {
            let mut eng = ShardedEngine::new(
                chatter_worlds(6),
                Lookahead::uniform(6, SimDuration::from_micros(250)),
                SimTime::from_secs(5),
            )
            .with_stealing(steal);
            eng.restore(&bytes, 0x57EA1).expect("restore");
            let (rr, wr, _) = eng
                .run_supervised(threads, None, &SupervisorConfig::default())
                .expect("resumed run");
            assert_eq!(rp.events_processed, rr.events_processed);
            assert_eq!(rp.epochs, rr.epochs);
            assert_eq!(rp.cross_region, rr.cross_region);
            assert_eq!(rp.end_time, rr.end_time);
            for (a, b) in wp.iter().zip(&wr) {
                assert_eq!(a.log, b.log);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_checkpoints_are_refused() {
        let dir = temp_ckpt_dir("corrupt");
        let cfg = SupervisorConfig {
            scenario: 42,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(SimDuration::from_millis(20)),
            ..SupervisorConfig::default()
        };
        let (_, _, sup) = chatter_sup_engine(4)
            .run_supervised(1, None, &cfg)
            .expect("checkpointed run");
        let path = sup.last_checkpoint.expect("a checkpoint was written");
        let mut bytes = checkpoint::read_file(&path).expect("read");
        let fresh = || {
            ShardedEngine::new(
                chatter_worlds(4),
                Lookahead::uniform(4, SimDuration::from_micros(250)),
                SimTime::from_secs(5),
            )
        };
        // Wrong scenario fingerprint.
        assert!(matches!(
            fresh().restore(&bytes, 43),
            Err(CheckpointError::ScenarioMismatch {
                found: 42,
                expected: 43
            })
        ));
        // A flipped payload bit fails the checksum — structured, no panic.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            fresh().restore(&bytes, 42),
            Err(CheckpointError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupt_checkpoints_and_resumes_to_identical_results() {
        let dir = temp_ckpt_dir("interrupt");
        let (rp, wp) = chatter_engine(4, 1);
        // Let a few epochs run, then trip the flag from a probe callback
        // (the supervisor checks it at the next barrier).
        struct Tripwire {
            flag: Arc<AtomicBool>,
            after: u64,
        }
        impl ShardProbe for Tripwire {
            fn window(&mut self, _s: &WindowSample) {}
            fn epoch_end(&mut self, epoch: u64, _w: u64, _m: u64, _mn: u64) {
                if epoch == self.after {
                    self.flag.store(true, Ordering::Relaxed);
                }
            }
            fn run_end(&mut self, _r: &ShardRunReport, _w: u64) {}
        }
        let flag = Arc::new(AtomicBool::new(false));
        let mut trip = Tripwire {
            flag: Arc::clone(&flag),
            after: 6,
        };
        let cfg = SupervisorConfig {
            scenario: 7,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(SimDuration::from_millis(20)),
            interrupt: Some(flag),
            ..SupervisorConfig::default()
        };
        let (ri, _, sup) = chatter_sup_engine(4)
            .run_supervised(2, Some(&mut trip), &cfg)
            .expect("interrupted run");
        assert_eq!(ri.reason, ShardStopReason::Interrupted);
        assert!(sup.interrupted);
        let path = sup.last_checkpoint.expect("final checkpoint written");
        let bytes = checkpoint::read_file(&path).expect("read");
        let mut eng = ShardedEngine::new(
            chatter_worlds(4),
            Lookahead::uniform(4, SimDuration::from_micros(250)),
            SimTime::from_secs(5),
        );
        eng.restore(&bytes, 7).expect("restore");
        let (rr, wr, _) = eng
            .run_supervised(2, None, &SupervisorConfig::default())
            .expect("resumed run");
        assert_eq!(rp.events_processed, rr.events_processed);
        assert_eq!(rp.epochs, rr.epochs);
        assert_eq!(rp.end_time, rr.end_time);
        for (a, b) in wp.iter().zip(&wr) {
            assert_eq!(a.log, b.log);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_plan_from_env_shapes() {
        // from_env reads process-global env; set unique vars and restore.
        std::env::set_var("WMN_CRASH_AT", "3:1, 7:0,bad,9");
        std::env::set_var("WMN_CRASH_RATE", "0.25:1234:5");
        let plan = CrashPlan::from_env();
        std::env::remove_var("WMN_CRASH_AT");
        std::env::remove_var("WMN_CRASH_RATE");
        assert_eq!(plan.scripted, vec![(3, 1), (7, 0)]);
        assert_eq!(
            plan.stochastic,
            Some(StochasticCrash {
                rate: 0.25,
                seed: 1234,
                max: 5
            })
        );
        assert!(CrashPlan::default().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn non_injected_panic_aborts_loudly() {
        struct Bomb;
        impl RegionWorld for Bomb {
            type Event = u32;
            fn handle(&mut self, ev: u32, ctx: &mut RegionCtx<'_, u32>) {
                if ev == 3 {
                    panic!("model bug: unexpected state");
                }
                ctx.send(
                    (ctx.region() + 1) % 2,
                    ctx.now() + SimDuration::from_millis(1),
                    ev + 1,
                );
            }
        }
        impl CheckpointState for Bomb {
            fn encode_state(&self, _out: &mut ByteWriter) {}
            fn decode_state(&mut self, _r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
                Ok(())
            }
            fn encode_event(event: &u32, out: &mut ByteWriter) {
                out.u32(*event);
            }
            fn decode_event(r: &mut ByteReader<'_>) -> Result<u32, CheckpointError> {
                r.u32()
            }
        }
        let mut eng = ShardedEngine::new(
            vec![Bomb, Bomb],
            Lookahead::uniform(2, SimDuration::from_millis(1)),
            SimTime::from_secs(1),
        );
        eng.prime(0, SimTime::ZERO, 0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            eng.run_supervised(1, None, &SupervisorConfig::default())
        }));
        assert!(res.is_err(), "a genuine bug must not be swallowed");
    }
}
