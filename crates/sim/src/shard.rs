//! Shard-parallel conservative event execution.
//!
//! The sequential [`Engine`](crate::Engine) dispatches one global
//! future-event list. This module partitions a model into **regions**, each
//! with its own event queue, clock and (by convention) RNG streams, and
//! advances regions concurrently under the classic *conservative* parallel
//! discrete-event rule (Chandy–Misra / bounded lag): a region may safely
//! process every event strictly before its **safe horizon**
//!
//! ```text
//! H_i = min over non-idle j of ( T_j + D(j → i) )    (including j = i)
//! ```
//!
//! where `T_j` is region `j`'s next pending event time and `D` is the
//! shortest-path closure of the **lookahead** matrix `δ`: `δ(j → i)` is a
//! lower bound on how far in the future any event that region `j` sends
//! directly to region `i` must land, measured from the event `j` is
//! currently processing, and `D` extends that bound to multi-hop influence
//! chains (`D(i → i)` is the minimum cycle — a region's own events can
//! come back to bite it via its neighbours). In a radio mesh the bound is
//! physical — a station cannot react to a reception and put a new frame on
//! the air in less than the PHY preamble/turnaround, and influence between
//! non-adjacent spatial regions additionally pays propagation over the
//! inter-region distance — so the lookahead is free: no model change is
//! needed to expose it.
//!
//! Execution proceeds in epochs. Every epoch the coordinator computes each
//! region's safe horizon from the current queue states, hands the *active*
//! regions (those with an event below their horizon) to a fixed worker
//! pool, waits for all of them, and then merges the cross-region events
//! produced during the epoch into the destination queues in one
//! deterministic pass sorted by `(timestamp, source region, emission
//! sequence)`. Because region state only changes inside `handle` calls that
//! are fully ordered per region, and because the merge order is a pure
//! function of the epoch's outputs (never of worker scheduling), **a run is
//! bit-identical for any worker count, including one**. The worker count
//! changes wall-clock time only; the region count is part of the scenario.
//!
//! The conservative invariant — no cross-region event may arrive below the
//! timestamp its destination has already committed — is enforced at
//! runtime: [`RegionCtx::send`] panics when a world under-declares its
//! lookahead, and the merge re-checks every arrival against the
//! destination's committed horizon.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use std::sync::mpsc;
use std::time::Instant;

/// Identifies one region (shard) of a partitioned model.
pub type RegionId = u32;

/// A pair that never exchanges events directly (see [`Lookahead`]).
pub const NEVER: SimDuration = SimDuration(u64::MAX);

/// Lower bounds on cross-region event latency.
///
/// `between(src, dst)` is the minimum delay, measured from the event being
/// processed at `src`, after which an event emitted by `src` may activate
/// at `dst`. [`NEVER`] marks pairs that never communicate.
#[derive(Clone, Debug)]
pub struct Lookahead {
    n: usize,
    /// Row-major `n × n` matrix of *direct* bounds; the diagonal is unused.
    delta: Vec<SimDuration>,
    /// All-pairs shortest-path closure of `delta` (Floyd–Warshall). The
    /// diagonal holds the minimum cycle back to oneself: an event at `i`
    /// can influence `i` again only via some other region, so `D(i, i)` is
    /// the cheapest round trip. Safe horizons must use this closure — the
    /// direct matrix alone under-counts multi-hop influence chains.
    closed: Vec<SimDuration>,
}

fn close_over(n: usize, delta: &[SimDuration]) -> Vec<SimDuration> {
    let mut d = delta.to_vec();
    // Self-influence must pass through a cycle; seed the diagonal as ∞.
    for i in 0..n {
        d[i * n + i] = NEVER;
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if dik == NEVER {
                continue;
            }
            for j in 0..n {
                let dkj = d[k * n + j];
                if dkj == NEVER {
                    continue;
                }
                let via = SimDuration(dik.0.saturating_add(dkj.0));
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    d
}

impl Lookahead {
    /// A uniform bound: every ordered pair of distinct regions shares the
    /// same minimum latency `delta`.
    pub fn uniform(n: usize, delta: SimDuration) -> Self {
        assert!(n >= 1, "at least one region");
        assert!(
            n == 1 || delta > SimDuration::ZERO,
            "zero lookahead cannot make progress with more than one region"
        );
        let matrix = vec![delta; n * n];
        let closed = close_over(n, &matrix);
        Lookahead {
            n,
            delta: matrix,
            closed,
        }
    }

    /// Build from a per-pair function (e.g. turnaround floor plus
    /// propagation over the inter-region distance). Return [`NEVER`] for
    /// pairs that cannot interact. Every finite bound must be positive.
    pub fn from_fn(n: usize, mut f: impl FnMut(RegionId, RegionId) -> SimDuration) -> Self {
        assert!(n >= 1, "at least one region");
        let mut delta = vec![NEVER; n * n];
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let v = f(s as RegionId, d as RegionId);
                assert!(v > SimDuration::ZERO, "lookahead {s}->{d} must be positive");
                delta[s * n + d] = v;
            }
        }
        let closed = close_over(n, &delta);
        Lookahead { n, delta, closed }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.n
    }

    /// The declared *direct* bound for `src → dst` ([`NEVER`] when they
    /// never interact directly). This is the contract [`RegionCtx::send`]
    /// enforces.
    #[inline]
    pub fn between(&self, src: RegionId, dst: RegionId) -> SimDuration {
        self.delta[src as usize * self.n + dst as usize]
    }

    /// The shortest influence path `src → … → dst` through any chain of
    /// regions; `influence(i, i)` is the minimum cycle. Safe horizons are
    /// computed from this.
    #[inline]
    pub fn influence(&self, src: RegionId, dst: RegionId) -> SimDuration {
        self.closed[src as usize * self.n + dst as usize]
    }
}

/// A cross-region event buffered during an epoch.
struct Outgoing<E> {
    dst: RegionId,
    time: SimTime,
    event: E,
}

/// Scheduling interface handed to a region's world while it processes an
/// event (the sharded analogue of [`Scheduler`](crate::Scheduler)).
pub struct RegionCtx<'a, E> {
    now: SimTime,
    region: RegionId,
    queue: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<Outgoing<E>>,
    lookahead: &'a Lookahead,
    horizon: SimTime,
    stopped: &'a mut bool,
}

impl<E> RegionCtx<'_, E> {
    /// The current simulation time (the event's activation time).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This region's id.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The configured end-of-simulation time.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedule a **local** event after `delay` (same region; any
    /// non-negative delay is allowed, including zero).
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedule a **local** event at an absolute time (not in the past).
    #[inline]
    pub fn at(&mut self, time: SimTime, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.queue.schedule(time, event);
    }

    /// Send an event to another region, activating at `time`.
    ///
    /// Conservative contract: `time` must be at least `now() +
    /// lookahead(self → dst)`. Violations panic — an under-declared
    /// lookahead would silently corrupt causality under parallel execution,
    /// so it is rejected loudly in every mode, single-threaded included.
    /// Sending to one's own region is an ordinary local schedule.
    #[inline]
    pub fn send(&mut self, dst: RegionId, time: SimTime, event: E) {
        if dst == self.region {
            self.at(time, event);
            return;
        }
        let bound = self.lookahead.between(self.region, dst);
        assert!(
            bound != NEVER,
            "region {} sent to region {dst} declared unreachable",
            self.region
        );
        assert!(
            time >= self.now + bound,
            "lookahead violation: region {} -> {dst} event at {time} < now {} + delta {bound}",
            self.region,
            self.now
        );
        self.outbox.push(Outgoing { dst, time, event });
    }

    /// Request the whole run to stop once the current epoch completes (the
    /// epoch boundary is the earliest deterministic cut across regions).
    pub fn stop(&mut self) {
        *self.stopped = true;
    }
}

/// A model shard: the per-region analogue of [`World`](crate::World).
///
/// Implementations own all state of one region. State shared between
/// regions must be immutable for the duration of the run (e.g. behind an
/// `Arc`); every mutation must live in exactly one region and be driven by
/// that region's events.
pub trait RegionWorld: Send {
    /// The unified event type (shared by all regions of the model).
    type Event: Send;

    /// Process one event. `ctx.now()` is the event's activation time.
    fn handle(&mut self, event: Self::Event, ctx: &mut RegionCtx<'_, Self::Event>);
}

/// One region's observation for one epoch, delivered to a [`ShardProbe`].
///
/// Every field except `busy_ns` is **simulation-derived**: a pure function
/// of the scenario, identical for any worker count (the engine computes
/// epoch plans, queue states and horizons before any worker touches a
/// slot). `busy_ns` is wall-clock and varies run to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSample {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// The observed region.
    pub region: RegionId,
    /// Whether the region had an event below its safe horizon this epoch.
    pub active: bool,
    /// Events executed in this window.
    pub events: u64,
    /// Wall-clock nanoseconds spent inside the window (0 when inactive).
    /// The only wall-clock field in the sample.
    pub busy_ns: u64,
    /// Pending-queue depth before the window ran.
    pub queue_depth: u64,
    /// Cross-region events buffered in the outbox after the window.
    pub outbox: u64,
    /// Committed horizon before the window (ns).
    pub window_start_ns: u64,
    /// Safe horizon granted this epoch (ns; `u64::MAX` when unbounded).
    pub window_end_ns: u64,
    /// The region whose pending event bound this horizon (stall
    /// attribution: the barrier cannot open wider than `bound_by`'s next
    /// event plus its influence lookahead). `-1` when unbounded.
    pub bound_by: i64,
}

/// Observer interface for the sharded engine's execution structure.
///
/// Pass one to [`ShardedEngine::run_probed`] to receive per-region window
/// samples and per-epoch barrier timings. All callbacks fire on the
/// coordinator thread in deterministic order (regions ascending within an
/// epoch, epochs ascending); a probe can never influence simulation
/// results — it observes slots only between epochs.
pub trait ShardProbe {
    /// One region's window observation (called for every region each
    /// epoch, active or not, in ascending region order, before the merge).
    fn window(&mut self, sample: &WindowSample);
    /// An epoch completed: total barrier-to-barrier wall time, events
    /// merged across regions, and the merge's own wall cost.
    fn epoch_end(&mut self, epoch: u64, wall_ns: u64, merged: u64, merge_ns: u64);
    /// The run completed.
    fn run_end(&mut self, report: &ShardRunReport, wall_ns: u64);
}

/// Pre-epoch snapshots needed to compute per-window deltas for a probe.
#[derive(Default)]
struct EpochScratch {
    processed: Vec<u64>,
    queue: Vec<u64>,
    committed: Vec<u64>,
    /// Which region bound each region's safe horizon (`-1` = unbounded).
    sources: Vec<i64>,
}

/// Why a sharded run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStopReason {
    /// Every region's queue drained completely.
    QueueEmpty,
    /// The earliest pending event lay beyond the configured horizon.
    HorizonReached,
    /// A region called [`RegionCtx::stop`].
    Stopped,
    /// The event budget was exhausted (runaway protection).
    EventBudget,
}

/// Summary of a completed sharded run.
#[derive(Clone, Debug)]
pub struct ShardRunReport {
    /// Why the run ended.
    pub reason: ShardStopReason,
    /// Events dispatched across all regions.
    pub events_processed: u64,
    /// Events dispatched per region.
    pub per_region: Vec<u64>,
    /// Cross-region events exchanged at epoch barriers.
    pub cross_region: u64,
    /// Number of epochs (barrier rounds).
    pub epochs: u64,
    /// Final simulation time (max over regions' committed clocks, capped
    /// at the horizon).
    pub end_time: SimTime,
}

/// One region's execution state: world, queue, outbox and bookkeeping.
struct Slot<W: RegionWorld> {
    region: RegionId,
    world: W,
    queue: EventQueue<W::Event>,
    outbox: Vec<Outgoing<W::Event>>,
    /// Everything strictly before this instant is committed: no future
    /// arrival below it is legal.
    committed: SimTime,
    processed: u64,
    stopped: bool,
    /// Wall-clock cost of the last window (filled only when timed).
    last_busy_ns: u64,
}

impl<W: RegionWorld> Slot<W> {
    /// Process every pending event strictly below `window_end` (and at or
    /// below the run horizon), then commit the window. `timed` records the
    /// window's wall-clock cost into `last_busy_ns` (profiling only — it
    /// cannot affect event execution).
    fn run_window(
        &mut self,
        window_end: SimTime,
        horizon: SimTime,
        lookahead: &Lookahead,
        timed: bool,
    ) {
        let t0 = timed.then(Instant::now);
        while let Some(t) = self.queue.peek_time() {
            if t >= window_end || t > horizon {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked event vanished");
            self.processed += 1;
            let mut ctx = RegionCtx {
                now,
                region: self.region,
                queue: &mut self.queue,
                outbox: &mut self.outbox,
                lookahead,
                horizon,
                stopped: &mut self.stopped,
            };
            self.world.handle(event, &mut ctx);
        }
        // The window is committed even when it held no events: adjacent
        // regions may have advanced on the promise that nothing older will
        // appear here.
        self.committed = self.committed.max(window_end);
        if let Some(t0) = t0 {
            self.last_busy_ns = t0.elapsed().as_nanos() as u64;
        }
    }
}

/// A job shipped to a worker for one epoch: the region slot plus its safe
/// window end.
struct Job<W: RegionWorld> {
    index: usize,
    slot: Box<Slot<W>>,
    window_end: SimTime,
    timed: bool,
}

/// The shard-parallel conservative engine.
///
/// Build with one world per region plus a [`Lookahead`]; prime initial
/// events; [`run`](ShardedEngine::run). Results are identical for every
/// worker count — see the module docs for the argument.
pub struct ShardedEngine<W: RegionWorld> {
    /// `Some` between epochs; taken while a worker owns the slot.
    slots: Vec<Option<Box<Slot<W>>>>,
    lookahead: Lookahead,
    horizon: SimTime,
    event_budget: u64,
}

impl<W: RegionWorld> ShardedEngine<W> {
    /// Create an engine over `worlds` (one per region, in region-id order)
    /// that will run until `horizon` (inclusive, matching the sequential
    /// engine's convention).
    pub fn new(worlds: Vec<W>, lookahead: Lookahead, horizon: SimTime) -> Self {
        assert_eq!(
            worlds.len(),
            lookahead.regions(),
            "one world per lookahead region"
        );
        let slots = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| {
                Some(Box::new(Slot {
                    region: i as RegionId,
                    world,
                    queue: EventQueue::with_capacity(256),
                    outbox: Vec::new(),
                    committed: SimTime::ZERO,
                    processed: 0,
                    stopped: false,
                    last_busy_ns: 0,
                }))
            })
            .collect();
        ShardedEngine {
            slots,
            lookahead,
            horizon,
            event_budget: u64::MAX,
        }
    }

    /// Cap the total number of dispatched events (runaway protection). The
    /// budget is checked at epoch boundaries, so a run may overshoot by at
    /// most one epoch — deterministically, whatever the worker count.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Schedule an initial event in `region` before the run starts.
    pub fn prime(&mut self, region: RegionId, time: SimTime, event: W::Event) {
        self.slots[region as usize]
            .as_mut()
            .expect("slot present between epochs")
            .queue
            .schedule(time, event);
    }

    fn slot(&self, i: usize) -> &Slot<W> {
        self.slots[i]
            .as_deref()
            .expect("slot present between epochs")
    }

    /// Compute every region's safe horizon from current queue states.
    /// Region `i` may process events strictly below
    /// `min_j (T_j + D(j → i))` over **non-idle** regions `j`, where `D`
    /// is the shortest-path influence closure — including `j = i`, whose
    /// pending events can cascade back through other regions (minimum
    /// cycle). An idle region constrains nobody: any future activity there
    /// descends from some region's currently pending event, which the
    /// closure already accounts for.
    ///
    /// When `sources` is given (profiling), it is filled with the argmin
    /// region `j` that bound each horizon — which pending event the barrier
    /// is waiting on (`-1` when unbounded). Ties break to the lowest `j`,
    /// so attribution is deterministic.
    fn compute_safe_horizons(&self, out: &mut Vec<SimTime>, mut sources: Option<&mut Vec<i64>>) {
        let n = self.slots.len();
        out.clear();
        if let Some(s) = sources.as_deref_mut() {
            s.clear();
        }
        if n == 1 {
            out.push(SimTime::MAX);
            if let Some(s) = sources {
                s.push(-1);
            }
            return;
        }
        let peeks: Vec<Option<SimTime>> = (0..n).map(|i| self.slot(i).queue.peek_time()).collect();
        for i in 0..n {
            let mut h = SimTime::MAX;
            let mut src = -1i64;
            for (j, peek) in peeks.iter().enumerate() {
                let Some(t) = peek else { continue };
                let d = self.lookahead.influence(j as RegionId, i as RegionId);
                if d == NEVER {
                    continue;
                }
                let bound = t.saturating_add(d);
                if bound < h {
                    h = bound;
                    src = j as i64;
                }
            }
            out.push(h);
            if let Some(s) = sources.as_deref_mut() {
                s.push(src);
            }
        }
    }

    /// Merge every region's outbox into the destination queues in
    /// deterministic `(timestamp, source region, emission sequence)` order,
    /// checking the conservative invariant against each destination's
    /// committed horizon. Returns the number of events exchanged.
    fn merge_outboxes(&mut self) -> u64 {
        // (time, src, seq-within-src) is a total order: seq disambiguates
        // within one source and src disambiguates across sources, so no two
        // entries share a key and the merge order is unique.
        let mut batch: Vec<(SimTime, RegionId, u32, RegionId, W::Event)> = Vec::new();
        for i in 0..self.slots.len() {
            let slot = self.slots[i].as_mut().expect("slot present between epochs");
            let region = slot.region;
            for (seq, out) in slot.outbox.drain(..).enumerate() {
                batch.push((out.time, region, seq as u32, out.dst, out.event));
            }
        }
        if batch.is_empty() {
            return 0;
        }
        batch.sort_by_key(|(t, src, seq, _, _)| (*t, *src, *seq));
        let n = batch.len() as u64;
        for (time, src, _, dst, event) in batch {
            let slot = self.slots[dst as usize]
                .as_mut()
                .expect("slot present between epochs");
            assert!(
                time >= slot.committed,
                "conservative invariant violated: region {src} delivered an event at {time:?} \
                 below region {dst}'s committed horizon {:?}",
                slot.committed
            );
            slot.queue.schedule(time, event);
        }
        n
    }

    /// One epoch preamble: decide whether to continue and which regions are
    /// active. Fills `safe` with per-region safe horizons and `jobs` with
    /// the active region indices; returns `Err(reason)` when the run is
    /// over.
    fn epoch_plan(
        &self,
        safe: &mut Vec<SimTime>,
        jobs: &mut Vec<usize>,
        sources: Option<&mut Vec<i64>>,
    ) -> Result<(), ShardStopReason> {
        if (0..self.slots.len()).any(|i| self.slot(i).stopped) {
            return Err(ShardStopReason::Stopped);
        }
        let processed: u64 = (0..self.slots.len()).map(|i| self.slot(i).processed).sum();
        if processed >= self.event_budget {
            return Err(ShardStopReason::EventBudget);
        }
        let Some(t_min) = (0..self.slots.len())
            .filter_map(|i| self.slot(i).queue.peek_time())
            .min()
        else {
            return Err(ShardStopReason::QueueEmpty);
        };
        if t_min > self.horizon {
            return Err(ShardStopReason::HorizonReached);
        }
        self.compute_safe_horizons(safe, sources);
        jobs.clear();
        for (i, &safe_i) in safe.iter().enumerate().take(self.slots.len()) {
            if let Some(t) = self.slot(i).queue.peek_time() {
                if t < safe_i && t <= self.horizon {
                    jobs.push(i);
                }
            }
        }
        // Progress is guaranteed: the region holding t_min has
        // H = min_j(T_j + δ) > t_min because every T_j ≥ t_min and every
        // finite δ is positive, so it is always active.
        debug_assert!(
            !jobs.is_empty(),
            "conservative stall: global min {t_min:?} but no region is active"
        );
        Ok(())
    }

    /// Snapshot per-region counters before an epoch's windows run, so
    /// window samples can report deltas (profiling only).
    fn snapshot_pre_epoch(&self, s: &mut EpochScratch) {
        s.processed.clear();
        s.queue.clear();
        s.committed.clear();
        for i in 0..self.slots.len() {
            let slot = self.slot(i);
            s.processed.push(slot.processed);
            s.queue.push(slot.queue.len() as u64);
            s.committed.push(slot.committed.as_nanos());
        }
    }

    /// Deliver one [`WindowSample`] per region (ascending) for the epoch
    /// just executed. Must run before the merge drains the outboxes.
    fn emit_window_samples(
        &self,
        probe: &mut dyn ShardProbe,
        s: &EpochScratch,
        safe: &[SimTime],
        jobs: &[usize],
        epoch: u64,
    ) {
        for (i, &window_end) in safe.iter().enumerate().take(self.slots.len()) {
            let slot = self.slot(i);
            // `jobs` is built by an ascending scan, so it is sorted.
            let active = jobs.binary_search(&i).is_ok();
            probe.window(&WindowSample {
                epoch,
                region: i as RegionId,
                active,
                events: slot.processed - s.processed[i],
                busy_ns: if active { slot.last_busy_ns } else { 0 },
                queue_depth: s.queue[i],
                outbox: slot.outbox.len() as u64,
                window_start_ns: s.committed[i],
                window_end_ns: window_end.as_nanos(),
                bound_by: s.sources[i],
            });
        }
    }

    /// Run to completion using `threads` workers (clamped to the region
    /// count; 1 executes every window on the calling thread).
    pub fn run(self, threads: usize) -> (ShardRunReport, Vec<W>) {
        self.run_probed(threads, None)
    }

    /// [`run`](ShardedEngine::run) with an optional execution profiler.
    ///
    /// With `None` this is exactly `run` — no timing calls, no extra
    /// branches beyond one `Option` check per epoch. With a probe, windows
    /// are timed and per-epoch samples are delivered on the coordinator
    /// thread; simulation results are identical either way (the probe only
    /// observes slots between epochs).
    pub fn run_probed(
        mut self,
        threads: usize,
        mut probe: Option<&mut dyn ShardProbe>,
    ) -> (ShardRunReport, Vec<W>) {
        assert!(threads >= 1, "at least one thread");
        let workers = threads.min(self.slots.len());
        let t_run = Instant::now();
        let mut epochs = 0u64;
        let mut cross_region = 0u64;
        let mut safe: Vec<SimTime> = Vec::with_capacity(self.slots.len());
        let mut jobs: Vec<usize> = Vec::with_capacity(self.slots.len());
        let mut scratch = EpochScratch::default();

        let reason = if workers <= 1 {
            loop {
                let sources = probe.is_some().then_some(&mut scratch.sources);
                if let Err(reason) = self.epoch_plan(&mut safe, &mut jobs, sources) {
                    break reason;
                }
                let timed = probe.is_some();
                let t_epoch = timed.then(Instant::now);
                if timed {
                    self.snapshot_pre_epoch(&mut scratch);
                }
                epochs += 1;
                for &i in &jobs {
                    let mut slot = self.slots[i].take().expect("slot present");
                    slot.run_window(safe[i], self.horizon, &self.lookahead, timed);
                    self.slots[i] = Some(slot);
                }
                if let Some(p) = probe.as_deref_mut() {
                    self.emit_window_samples(p, &scratch, &safe, &jobs, epochs);
                }
                let t_merge = timed.then(Instant::now);
                let merged = self.merge_outboxes();
                cross_region += merged;
                if let Some(p) = probe.as_deref_mut() {
                    let merge_ns = t_merge.expect("timed").elapsed().as_nanos() as u64;
                    let wall_ns = t_epoch.expect("timed").elapsed().as_nanos() as u64;
                    p.epoch_end(epochs, wall_ns, merged, merge_ns);
                }
            }
        } else {
            // Persistent pool: regions are assigned to workers statically
            // (`region % workers`) so per-region state tends to stay in one
            // worker's cache; each epoch ships the active slots over
            // channels and collects them all back — the channel round-trip
            // is the barrier. Which thread runs a window cannot influence
            // results: a window touches only its own slot.
            let horizon = self.horizon;
            let lookahead = self.lookahead.clone();
            std::thread::scope(|scope| {
                let (done_tx, done_rx) = mpsc::channel::<Job<W>>();
                let mut work_txs: Vec<mpsc::Sender<Job<W>>> = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let (tx, rx) = mpsc::channel::<Job<W>>();
                    let done = done_tx.clone();
                    let lookahead = lookahead.clone();
                    work_txs.push(tx);
                    scope.spawn(move || {
                        while let Ok(mut job) = rx.recv() {
                            job.slot
                                .run_window(job.window_end, horizon, &lookahead, job.timed);
                            if done.send(job).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(done_tx);
                loop {
                    let sources = probe.is_some().then_some(&mut scratch.sources);
                    if let Err(reason) = self.epoch_plan(&mut safe, &mut jobs, sources) {
                        break reason;
                    }
                    let timed = probe.is_some();
                    let t_epoch = timed.then(Instant::now);
                    if timed {
                        self.snapshot_pre_epoch(&mut scratch);
                    }
                    epochs += 1;
                    if jobs.len() == 1 {
                        // A serial epoch: skip the pool round-trip.
                        let i = jobs[0];
                        let mut slot = self.slots[i].take().expect("slot present");
                        slot.run_window(safe[i], horizon, &lookahead, timed);
                        self.slots[i] = Some(slot);
                    } else {
                        for &i in &jobs {
                            let slot = self.slots[i].take().expect("slot present");
                            let job = Job {
                                index: i,
                                slot,
                                window_end: safe[i],
                                timed,
                            };
                            work_txs[i % workers]
                                .send(job)
                                .expect("worker alive for the whole run");
                        }
                        for _ in 0..jobs.len() {
                            let job = done_rx.recv().expect("worker returned its slot");
                            self.slots[job.index] = Some(job.slot);
                        }
                    }
                    if let Some(p) = probe.as_deref_mut() {
                        self.emit_window_samples(p, &scratch, &safe, &jobs, epochs);
                    }
                    let t_merge = timed.then(Instant::now);
                    let merged = self.merge_outboxes();
                    cross_region += merged;
                    if let Some(p) = probe.as_deref_mut() {
                        let merge_ns = t_merge.expect("timed").elapsed().as_nanos() as u64;
                        let wall_ns = t_epoch.expect("timed").elapsed().as_nanos() as u64;
                        p.epoch_end(epochs, wall_ns, merged, merge_ns);
                    }
                }
            })
        };

        let end_time = (0..self.slots.len())
            .map(|i| self.slot(i).committed)
            .max()
            .unwrap_or(SimTime::ZERO)
            .min(self.horizon);
        let per_region: Vec<u64> = (0..self.slots.len())
            .map(|i| self.slot(i).processed)
            .collect();
        let report = ShardRunReport {
            reason,
            events_processed: per_region.iter().sum(),
            per_region,
            cross_region,
            epochs,
            end_time,
        };
        if let Some(p) = probe {
            p.run_end(&report, t_run.elapsed().as_nanos() as u64);
        }
        let worlds = self
            .slots
            .into_iter()
            .map(|s| s.expect("slot present after run").world)
            .collect();
        (report, worlds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of regions passing one token carrying its remaining hop
    /// count; every region logs each visit.
    struct Ring {
        n: u32,
        hop: SimDuration,
        visits: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    struct Token(u32);

    impl RegionWorld for Ring {
        type Event = Token;
        fn handle(&mut self, ev: Token, ctx: &mut RegionCtx<'_, Token>) {
            self.visits.push((ctx.now().as_nanos(), ctx.region()));
            if ev.0 == 0 {
                return;
            }
            let dst = (ctx.region() + 1) % self.n;
            let at = ctx.now() + self.hop;
            ctx.send(dst, at, Token(ev.0 - 1));
        }
    }

    fn ring_engine(n: u32, hops: u32, threads: usize) -> (ShardRunReport, Vec<Ring>) {
        let hop = SimDuration::from_micros(250);
        let worlds: Vec<Ring> = (0..n)
            .map(|_| Ring {
                n,
                hop,
                visits: vec![],
            })
            .collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::uniform(n as usize, hop),
            SimTime::from_secs(10),
        );
        eng.prime(0, SimTime::ZERO, Token(hops));
        eng.run(threads)
    }

    #[test]
    fn token_ring_runs_to_completion() {
        let (report, worlds) = ring_engine(4, 11, 1);
        assert_eq!(report.reason, ShardStopReason::QueueEmpty);
        assert_eq!(report.events_processed, 12);
        assert_eq!(report.cross_region, 11);
        let visited: usize = worlds.iter().map(|w| w.visits.len()).sum();
        assert_eq!(visited, 12);
    }

    #[test]
    fn worker_count_does_not_change_ring_results() {
        let (r1, w1) = ring_engine(6, 100, 1);
        for threads in [2, 3, 8] {
            let (rt, wt) = ring_engine(6, 100, threads);
            assert_eq!(r1.events_processed, rt.events_processed);
            assert_eq!(r1.epochs, rt.epochs);
            assert_eq!(r1.end_time, rt.end_time);
            for (a, b) in w1.iter().zip(&wt) {
                assert_eq!(a.visits, b.visits);
            }
        }
    }

    /// All regions concurrently active: periodic local ticks plus
    /// cross-region messages every third tick. Exercises the real worker
    /// pool (several jobs per epoch), unlike the single-token ring.
    struct Chatter {
        n: u32,
        log: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    enum ChatterEv {
        Tick(u32),
        Msg(u32),
    }

    impl RegionWorld for Chatter {
        type Event = ChatterEv;
        fn handle(&mut self, ev: ChatterEv, ctx: &mut RegionCtx<'_, ChatterEv>) {
            match ev {
                ChatterEv::Tick(k) => {
                    self.log.push((ctx.now().as_nanos(), k));
                    if k < 200 {
                        ctx.after(SimDuration::from_millis(1), ChatterEv::Tick(k + 1));
                    }
                    if k % 3 == 0 {
                        let dst = (ctx.region() + 1) % self.n;
                        ctx.send(
                            dst,
                            ctx.now() + SimDuration::from_micros(250),
                            ChatterEv::Msg(k),
                        );
                    }
                }
                ChatterEv::Msg(k) => {
                    self.log.push((ctx.now().as_nanos(), 1_000_000 + k));
                }
            }
        }
    }

    fn chatter_engine(n: u32, threads: usize) -> (ShardRunReport, Vec<Chatter>) {
        let worlds: Vec<Chatter> = (0..n).map(|_| Chatter { n, log: vec![] }).collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::uniform(n as usize, SimDuration::from_micros(250)),
            SimTime::from_secs(5),
        );
        for r in 0..n {
            // Staggered starts so timestamps across regions interleave.
            eng.prime(r, SimTime::from_micros(7 * r as u64), ChatterEv::Tick(0));
        }
        eng.run(threads)
    }

    #[test]
    fn concurrent_regions_are_bit_identical_across_worker_counts() {
        let (r1, w1) = chatter_engine(8, 1);
        assert_eq!(r1.reason, ShardStopReason::QueueEmpty);
        // 8 regions × (201 ticks + 67 messages received).
        assert_eq!(r1.events_processed, 8 * (201 + 67));
        for threads in [2, 4, 8] {
            let (rt, wt) = chatter_engine(8, threads);
            assert_eq!(r1.events_processed, rt.events_processed);
            assert_eq!(r1.cross_region, rt.cross_region);
            assert_eq!(r1.epochs, rt.epochs);
            assert_eq!(r1.per_region, rt.per_region);
            assert_eq!(r1.end_time, rt.end_time);
            for (a, b) in w1.iter().zip(&wt) {
                assert_eq!(a.log, b.log);
            }
        }
    }

    #[test]
    fn horizon_cuts_off() {
        // 250 µs per hop, 10 s horizon ⇒ visits at 0, 250 µs, …, 10 s
        // exactly: 40 001 events; the next lies past the horizon.
        let (report, worlds) = ring_engine(3, 100_000, 2);
        assert_eq!(report.reason, ShardStopReason::HorizonReached);
        let visited: usize = worlds.iter().map(|w| w.visits.len()).sum();
        assert_eq!(visited, 40_001);
    }

    #[test]
    fn event_budget_stops() {
        let hop = SimDuration::from_micros(250);
        let worlds: Vec<Ring> = (0..4)
            .map(|_| Ring {
                n: 4,
                hop,
                visits: vec![],
            })
            .collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::uniform(4, hop),
            SimTime::MAX - SimDuration::from_secs(1),
        )
        .with_event_budget(57);
        eng.prime(0, SimTime::ZERO, Token(u32::MAX));
        let (report, _) = eng.run(2);
        assert_eq!(report.reason, ShardStopReason::EventBudget);
        assert!(report.events_processed >= 57);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn under_declared_lookahead_panics() {
        struct Cheater;
        impl RegionWorld for Cheater {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut RegionCtx<'_, ()>) {
                // Declared lookahead is 1 ms but the send arrives in 1 µs.
                let at = ctx.now() + SimDuration::from_micros(1);
                ctx.send(1, at, ());
            }
        }
        let mut eng = ShardedEngine::new(
            vec![Cheater, Cheater],
            Lookahead::uniform(2, SimDuration::from_millis(1)),
            SimTime::from_secs(1),
        );
        eng.prime(0, SimTime::ZERO, ());
        let _ = eng.run(1);
    }

    #[test]
    fn stop_is_deterministic_across_threads() {
        /// Stops the run at the 10th visit of region 0.
        struct Stopper {
            n: u32,
            seen: u32,
        }
        impl RegionWorld for Stopper {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut RegionCtx<'_, ()>) {
                if ctx.region() == 0 {
                    self.seen += 1;
                    if self.seen == 10 {
                        ctx.stop();
                        return;
                    }
                }
                let dst = (ctx.region() + 1) % self.n;
                ctx.send(dst, ctx.now() + SimDuration::from_micros(100), ());
            }
        }
        let run = |threads: usize| {
            let worlds: Vec<Stopper> = (0..5).map(|_| Stopper { n: 5, seen: 0 }).collect();
            let mut eng = ShardedEngine::new(
                worlds,
                Lookahead::uniform(5, SimDuration::from_micros(100)),
                SimTime::from_secs(60),
            );
            eng.prime(0, SimTime::ZERO, ());
            let (report, worlds) = eng.run(threads);
            (report.reason, report.events_processed, worlds[0].seen)
        };
        let (ra, ea, sa) = run(1);
        let (rb, eb, sb) = run(4);
        assert_eq!(ra, ShardStopReason::Stopped);
        assert_eq!((ra, ea, sa), (rb, eb, sb));
    }

    #[test]
    fn single_region_degenerates_to_sequential() {
        struct Count {
            fired: Vec<u64>,
        }
        impl RegionWorld for Count {
            type Event = u64;
            fn handle(&mut self, ev: u64, ctx: &mut RegionCtx<'_, u64>) {
                self.fired.push(ev);
                if ev < 5 {
                    ctx.after(SimDuration::from_secs(1), ev + 1);
                }
            }
        }
        let mut eng = ShardedEngine::new(
            vec![Count { fired: vec![] }],
            Lookahead::uniform(1, SimDuration::ZERO),
            SimTime::from_secs(100),
        );
        eng.prime(0, SimTime::ZERO, 0);
        let (report, worlds) = eng.run(1);
        assert_eq!(report.reason, ShardStopReason::QueueEmpty);
        assert_eq!(worlds[0].fired, vec![0, 1, 2, 3, 4, 5]);
        // One region means one unbounded window: the whole run is a single
        // epoch.
        assert_eq!(report.epochs, 1);
    }

    #[test]
    fn never_linked_regions_run_fully_independently() {
        struct Island {
            ticks: u32,
        }
        impl RegionWorld for Island {
            type Event = ();
            fn handle(&mut self, _ev: (), ctx: &mut RegionCtx<'_, ()>) {
                self.ticks += 1;
                if self.ticks < 1000 {
                    ctx.after(SimDuration::from_millis(1), ());
                }
            }
        }
        let worlds: Vec<Island> = (0..4).map(|_| Island { ticks: 0 }).collect();
        let mut eng = ShardedEngine::new(
            worlds,
            Lookahead::from_fn(4, |_, _| NEVER),
            SimTime::from_secs(10),
        );
        for r in 0..4 {
            eng.prime(r, SimTime(r as u64), ());
        }
        let (report, worlds) = eng.run(4);
        assert_eq!(report.reason, ShardStopReason::QueueEmpty);
        assert!(worlds.iter().all(|w| w.ticks == 1000));
        // No links ⇒ every safe horizon is ∞ ⇒ each region drains in one
        // window and the run is a single epoch.
        assert_eq!(report.epochs, 1);
    }

    /// Records everything a probe sees, keeping only sim-derived fields so
    /// runs can be compared across worker counts.
    #[derive(Default)]
    struct Recorder {
        // (epoch, region, active, events, queue_depth, outbox, start, end, bound_by)
        windows: Vec<(u64, u32, bool, u64, u64, u64, u64, u64, i64)>,
        merges: Vec<(u64, u64)>, // (epoch, merged)
        run: Option<(u64, u64)>, // (events_processed, epochs)
    }

    impl ShardProbe for Recorder {
        fn window(&mut self, s: &WindowSample) {
            self.windows.push((
                s.epoch,
                s.region,
                s.active,
                s.events,
                s.queue_depth,
                s.outbox,
                s.window_start_ns,
                s.window_end_ns,
                s.bound_by,
            ));
        }
        fn epoch_end(&mut self, epoch: u64, _wall_ns: u64, merged: u64, _merge_ns: u64) {
            self.merges.push((epoch, merged));
        }
        fn run_end(&mut self, report: &ShardRunReport, _wall_ns: u64) {
            self.run = Some((report.events_processed, report.epochs));
        }
    }

    #[test]
    fn probe_samples_are_identical_across_worker_counts() {
        let run = |threads: usize| {
            let hop = SimDuration::from_micros(250);
            let worlds: Vec<Ring> = (0..6)
                .map(|_| Ring {
                    n: 6,
                    hop,
                    visits: vec![],
                })
                .collect();
            let mut eng =
                ShardedEngine::new(worlds, Lookahead::uniform(6, hop), SimTime::from_secs(1));
            eng.prime(0, SimTime::ZERO, Token(300));
            let mut rec = Recorder::default();
            let (report, _) = eng.run_probed(threads, Some(&mut rec));
            (report.events_processed, rec)
        };
        let (e1, r1) = run(1);
        let (e2, r2) = run(2);
        let (e8, r8) = run(8);
        assert_eq!(e1, 301);
        assert_eq!((e1, e2), (e2, e8));
        assert!(!r1.windows.is_empty());
        assert_eq!(r1.windows, r2.windows);
        assert_eq!(r1.windows, r8.windows);
        assert_eq!(r1.merges, r2.merges);
        assert_eq!(r1.merges, r8.merges);
        assert_eq!(r1.run, r2.run);
        assert_eq!(r1.run, r8.run);
        // Every window's bound is attributable: either a region index or -1.
        assert!(r1
            .windows
            .iter()
            .all(|w| w.8 == -1 || (w.8 >= 0 && w.8 < 6)));
    }

    #[test]
    fn probing_does_not_change_results() {
        let base = ring_engine(5, 400, 2);
        let hop = SimDuration::from_micros(250);
        let worlds: Vec<Ring> = (0..5)
            .map(|_| Ring {
                n: 5,
                hop,
                visits: vec![],
            })
            .collect();
        let mut eng =
            ShardedEngine::new(worlds, Lookahead::uniform(5, hop), SimTime::from_secs(10));
        eng.prime(0, SimTime::ZERO, Token(400));
        let mut rec = Recorder::default();
        let (report, worlds) = eng.run_probed(2, Some(&mut rec));
        assert_eq!(report.events_processed, base.0.events_processed);
        assert_eq!(report.epochs, base.0.epochs);
        for (a, b) in worlds.iter().zip(base.1.iter()) {
            assert_eq!(a.visits, b.visits);
        }
    }
}
