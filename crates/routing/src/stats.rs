//! Routing-layer counters feeding the evaluation figures.

/// Lifetime per-node routing counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutingStats {
    /// Discoveries this node originated (including retries).
    pub rreq_originated: u64,
    /// RREQs this node rebroadcast.
    pub rreq_forwarded: u64,
    /// RREQ copies received (all copies).
    pub rreq_received: u64,
    /// First-copy RREQs the policy decided to suppress.
    pub rreq_suppressed: u64,
    /// Duplicate RREQ copies (never forwarded).
    pub rreq_duplicates: u64,
    /// RREPs generated as discovery target.
    pub rrep_generated: u64,
    /// RREPs forwarded towards an origin.
    pub rrep_forwarded: u64,
    /// RREPs dropped for lack of a reverse route.
    pub rrep_dropped: u64,
    /// RERR packets sent.
    pub rerr_sent: u64,
    /// HELLO beacons sent.
    pub hello_sent: u64,
    /// Data packets forwarded for other nodes.
    pub data_forwarded: u64,
    /// Data packets delivered to the local application.
    pub data_delivered: u64,
    /// Data packets originated by the local application.
    pub data_originated: u64,
    /// Data dropped: no route at an intermediate node.
    pub data_dropped_no_route: u64,
    /// Data dropped: discovery ultimately failed.
    pub data_dropped_discovery: u64,
    /// Data dropped: discovery buffer overflow.
    pub data_dropped_buffer: u64,
    /// Data dropped: link-level failure mid-path.
    pub data_dropped_link: u64,
    /// Discoveries begun (unique targets, not retries).
    pub discoveries_started: u64,
    /// Discoveries that produced a route.
    pub discoveries_succeeded: u64,
    /// Discoveries abandoned after all retries.
    pub discoveries_failed: u64,
}

impl RoutingStats {
    /// Total control packets transmitted by this node
    /// (RREQ + RREP + RERR + HELLO).
    pub fn control_tx(&self) -> u64 {
        self.rreq_originated
            + self.rreq_forwarded
            + self.rrep_generated
            + self.rrep_forwarded
            + self.rerr_sent
            + self.hello_sent
    }

    /// Element-wise accumulation (for network-wide totals).
    pub fn accumulate(&mut self, other: &RoutingStats) {
        self.rreq_originated += other.rreq_originated;
        self.rreq_forwarded += other.rreq_forwarded;
        self.rreq_received += other.rreq_received;
        self.rreq_suppressed += other.rreq_suppressed;
        self.rreq_duplicates += other.rreq_duplicates;
        self.rrep_generated += other.rrep_generated;
        self.rrep_forwarded += other.rrep_forwarded;
        self.rrep_dropped += other.rrep_dropped;
        self.rerr_sent += other.rerr_sent;
        self.hello_sent += other.hello_sent;
        self.data_forwarded += other.data_forwarded;
        self.data_delivered += other.data_delivered;
        self.data_originated += other.data_originated;
        self.data_dropped_no_route += other.data_dropped_no_route;
        self.data_dropped_discovery += other.data_dropped_discovery;
        self.data_dropped_buffer += other.data_dropped_buffer;
        self.data_dropped_link += other.data_dropped_link;
        self.discoveries_started += other.discoveries_started;
        self.discoveries_succeeded += other.discoveries_succeeded;
        self.discoveries_failed += other.discoveries_failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_total() {
        let s = RoutingStats {
            rreq_originated: 2,
            rreq_forwarded: 10,
            rrep_generated: 1,
            rrep_forwarded: 3,
            rerr_sent: 1,
            hello_sent: 20,
            ..Default::default()
        };
        assert_eq!(s.control_tx(), 37);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = RoutingStats { rreq_forwarded: 5, data_delivered: 7, ..Default::default() };
        let b = RoutingStats { rreq_forwarded: 3, data_delivered: 2, ..Default::default() };
        a.accumulate(&b);
        assert_eq!(a.rreq_forwarded, 8);
        assert_eq!(a.data_delivered, 9);
    }
}
