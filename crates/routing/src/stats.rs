//! Routing-layer counters feeding the evaluation figures.

/// Lifetime per-node routing counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutingStats {
    /// Discoveries this node originated (including retries).
    pub rreq_originated: u64,
    /// RREQs this node rebroadcast.
    pub rreq_forwarded: u64,
    /// RREQ copies received (all copies).
    pub rreq_received: u64,
    /// First-copy RREQs the policy decided to suppress.
    pub rreq_suppressed: u64,
    /// Duplicate RREQ copies (never forwarded).
    pub rreq_duplicates: u64,
    /// RREPs generated as discovery target.
    pub rrep_generated: u64,
    /// RREPs forwarded towards an origin.
    pub rrep_forwarded: u64,
    /// RREPs dropped for lack of a reverse route.
    pub rrep_dropped: u64,
    /// RERR packets sent.
    pub rerr_sent: u64,
    /// HELLO beacons sent.
    pub hello_sent: u64,
    /// Data packets forwarded for other nodes.
    pub data_forwarded: u64,
    /// Data packets delivered to the local application.
    pub data_delivered: u64,
    /// Data packets originated by the local application.
    pub data_originated: u64,
    /// Data dropped: no route at an intermediate node.
    pub data_dropped_no_route: u64,
    /// Data dropped: discovery ultimately failed.
    pub data_dropped_discovery: u64,
    /// Data dropped: discovery buffer overflow.
    pub data_dropped_buffer: u64,
    /// Data dropped: link-level failure mid-path.
    pub data_dropped_link: u64,
    /// Discoveries begun (unique targets, not retries).
    pub discoveries_started: u64,
    /// Discoveries that produced a route.
    pub discoveries_succeeded: u64,
    /// Discoveries abandoned after all retries.
    pub discoveries_failed: u64,
}

impl RoutingStats {
    /// Total control packets transmitted by this node
    /// (RREQ + RREP + RERR + HELLO).
    pub fn control_tx(&self) -> u64 {
        self.rreq_originated
            + self.rreq_forwarded
            + self.rrep_generated
            + self.rrep_forwarded
            + self.rerr_sent
            + self.hello_sent
    }

    /// Visit every counter as a stable snake_case `(name, value)` pair —
    /// the export consumed by the unified `wmn_telemetry::Counters`
    /// registry. Names are part of the trace/manifest format; do not
    /// rename without updating `counter_for_event`.
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("rreq_originated", self.rreq_originated);
        f("rreq_forwarded", self.rreq_forwarded);
        f("rreq_received", self.rreq_received);
        f("rreq_suppressed", self.rreq_suppressed);
        f("rreq_duplicates", self.rreq_duplicates);
        f("rrep_generated", self.rrep_generated);
        f("rrep_forwarded", self.rrep_forwarded);
        f("rrep_dropped", self.rrep_dropped);
        f("rerr_sent", self.rerr_sent);
        f("hello_sent", self.hello_sent);
        f("data_forwarded", self.data_forwarded);
        f("data_delivered", self.data_delivered);
        f("data_originated", self.data_originated);
        f("data_dropped_no_route", self.data_dropped_no_route);
        f("data_dropped_discovery", self.data_dropped_discovery);
        f("data_dropped_buffer", self.data_dropped_buffer);
        f("data_dropped_link", self.data_dropped_link);
        f("discoveries_started", self.discoveries_started);
        f("discoveries_succeeded", self.discoveries_succeeded);
        f("discoveries_failed", self.discoveries_failed);
    }

    /// Element-wise accumulation (for network-wide totals).
    pub fn accumulate(&mut self, other: &RoutingStats) {
        self.rreq_originated += other.rreq_originated;
        self.rreq_forwarded += other.rreq_forwarded;
        self.rreq_received += other.rreq_received;
        self.rreq_suppressed += other.rreq_suppressed;
        self.rreq_duplicates += other.rreq_duplicates;
        self.rrep_generated += other.rrep_generated;
        self.rrep_forwarded += other.rrep_forwarded;
        self.rrep_dropped += other.rrep_dropped;
        self.rerr_sent += other.rerr_sent;
        self.hello_sent += other.hello_sent;
        self.data_forwarded += other.data_forwarded;
        self.data_delivered += other.data_delivered;
        self.data_originated += other.data_originated;
        self.data_dropped_no_route += other.data_dropped_no_route;
        self.data_dropped_discovery += other.data_dropped_discovery;
        self.data_dropped_buffer += other.data_dropped_buffer;
        self.data_dropped_link += other.data_dropped_link;
        self.discoveries_started += other.discoveries_started;
        self.discoveries_succeeded += other.discoveries_succeeded;
        self.discoveries_failed += other.discoveries_failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_total() {
        let s = RoutingStats {
            rreq_originated: 2,
            rreq_forwarded: 10,
            rrep_generated: 1,
            rrep_forwarded: 3,
            rerr_sent: 1,
            hello_sent: 20,
            ..Default::default()
        };
        assert_eq!(s.control_tx(), 37);
    }

    #[test]
    fn visit_covers_every_field() {
        // `visit` must export each of the 20 counters exactly once, with
        // distinct names, and the values must match the struct fields.
        let mut s = RoutingStats::default();
        let mut names = Vec::new();
        s.visit(&mut |n, _| names.push(n));
        assert_eq!(names.len(), 20);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate counter names");
        s.rreq_forwarded = 3;
        s.discoveries_failed = 9;
        let mut seen = std::collections::HashMap::new();
        s.visit(&mut |n, v| {
            seen.insert(n, v);
        });
        assert_eq!(seen["rreq_forwarded"], 3);
        assert_eq!(seen["discoveries_failed"], 9);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = RoutingStats {
            rreq_forwarded: 5,
            data_delivered: 7,
            ..Default::default()
        };
        let b = RoutingStats {
            rreq_forwarded: 3,
            data_delivered: 2,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.rreq_forwarded, 8);
        assert_eq!(a.data_delivered, 9);
    }
}
