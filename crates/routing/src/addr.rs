//! Network-layer addressing.

use std::fmt;

/// A network-layer node address. In this stack node ids are dense indices
/// shared with the link layer (one radio per node).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The network-layer broadcast address.
pub const BROADCAST_NODE: NodeId = NodeId(u32::MAX);

impl NodeId {
    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == BROADCAST_NODE
    }

    /// Dense index for table lookups. Must not be called on broadcast.
    pub fn index(self) -> usize {
        debug_assert!(!self.is_broadcast());
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            write!(f, "n*")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_and_format() {
        assert!(BROADCAST_NODE.is_broadcast());
        assert!(!NodeId(3).is_broadcast());
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{BROADCAST_NODE}"), "n*");
        assert_eq!(NodeId(7).index(), 7);
    }
}
