//! The HELLO-maintained neighbour table.
//!
//! This is where the "neighbourhood" of *Neighbourhood Load Routing* lives:
//! each entry stores the neighbour's latest [`LoadDigest`] and velocity, so a
//! node can compute the aggregated neighbourhood load CNLR keys its
//! forwarding probability on.

use crate::addr::NodeId;
use std::collections::HashMap;
use wmn_mac::LoadDigest;
use wmn_sim::{SimDuration, SimTime};

/// Per-neighbour state.
#[derive(Clone, Copy, Debug)]
pub struct Neighbor {
    /// Last time any packet was heard from this neighbour.
    pub last_heard: SimTime,
    /// Their advertised load digest.
    pub load: LoadDigest,
    /// Their advertised velocity, m/s.
    pub velocity: (f64, f64),
}

/// The 1-hop neighbour table.
#[derive(Clone, Debug)]
pub struct NeighborTable {
    entries: HashMap<NodeId, Neighbor>,
    timeout: SimDuration,
}

impl NeighborTable {
    /// Neighbours not heard for `timeout` are considered gone (canonically
    /// `ALLOWED_HELLO_LOSS × hello_interval`).
    pub fn new(timeout: SimDuration) -> Self {
        NeighborTable {
            entries: HashMap::new(),
            timeout,
        }
    }

    /// Record a HELLO (full update).
    pub fn heard_hello(
        &mut self,
        from: NodeId,
        load: LoadDigest,
        velocity: (f64, f64),
        now: SimTime,
    ) {
        self.entries.insert(
            from,
            Neighbor {
                last_heard: now,
                load,
                velocity,
            },
        );
    }

    /// Record that any frame was heard from `from` (refreshes liveness only;
    /// keeps the last digest).
    pub fn heard_any(&mut self, from: NodeId, now: SimTime) {
        self.entries
            .entry(from)
            .and_modify(|n| n.last_heard = now)
            .or_insert(Neighbor {
                last_heard: now,
                load: LoadDigest::default(),
                velocity: (0.0, 0.0),
            });
    }

    /// Look up a live neighbour.
    pub fn get(&self, id: NodeId, now: SimTime) -> Option<&Neighbor> {
        self.entries
            .get(&id)
            .filter(|n| now.since(n.last_heard) < self.timeout)
    }

    /// Number of live neighbours.
    pub fn live_count(&self, now: SimTime) -> usize {
        self.entries
            .values()
            .filter(|n| now.since(n.last_heard) < self.timeout)
            .count()
    }

    /// Mean of a neighbour-load statistic over live neighbours, or `None`
    /// when there are none.
    pub fn mean_neighbor_load<F: Fn(&LoadDigest) -> f64>(&self, now: SimTime, f: F) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for nb in self.entries.values() {
            if now.since(nb.last_heard) < self.timeout {
                sum += f(&nb.load);
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Remove timed-out neighbours, returning their ids (treated as broken
    /// links by the caller).
    pub fn sweep(&mut self, now: SimTime) -> Vec<NodeId> {
        let timeout = self.timeout;
        let mut gone: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|(_, n)| now.since(n.last_heard) >= timeout)
            .map(|(&id, _)| id)
            .collect();
        gone.sort_unstable();
        for id in &gone {
            self.entries.remove(id);
        }
        gone
    }

    /// Iterate live neighbours.
    pub fn iter_live(&self, now: SimTime) -> impl Iterator<Item = (&NodeId, &Neighbor)> {
        let timeout = self.timeout;
        self.entries
            .iter()
            .filter(move |(_, n)| now.since(n.last_heard) < timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn digest(q: f64) -> LoadDigest {
        LoadDigest {
            queue_util: q,
            busy_ratio: q,
            mac_service_s: 0.0,
        }
    }

    #[test]
    fn hello_installs_and_expires() {
        let mut nt = NeighborTable::new(SimDuration::from_secs(3));
        nt.heard_hello(NodeId(1), digest(0.5), (1.0, 0.0), t(0));
        assert!(nt.get(NodeId(1), t(2)).is_some());
        assert!(nt.get(NodeId(1), t(3)).is_none());
        assert_eq!(nt.live_count(t(2)), 1);
        assert_eq!(nt.live_count(t(3)), 0);
    }

    #[test]
    fn heard_any_refreshes_without_clobbering_digest() {
        let mut nt = NeighborTable::new(SimDuration::from_secs(3));
        nt.heard_hello(NodeId(1), digest(0.7), (0.0, 0.0), t(0));
        nt.heard_any(NodeId(1), t(2));
        let n = nt.get(NodeId(1), t(4)).expect("still live");
        assert_eq!(n.load.queue_util, 0.7);
        assert_eq!(n.last_heard, t(2));
    }

    #[test]
    fn heard_any_creates_default_entry() {
        let mut nt = NeighborTable::new(SimDuration::from_secs(3));
        nt.heard_any(NodeId(2), t(1));
        let n = nt.get(NodeId(2), t(2)).unwrap();
        assert_eq!(n.load.queue_util, 0.0);
    }

    #[test]
    fn mean_load_over_live_only() {
        let mut nt = NeighborTable::new(SimDuration::from_secs(3));
        nt.heard_hello(NodeId(1), digest(0.2), (0.0, 0.0), t(0));
        nt.heard_hello(NodeId(2), digest(0.6), (0.0, 0.0), t(5));
        // At t = 6, node 1 is stale; only node 2 counts.
        let m = nt.mean_neighbor_load(t(6), |d| d.queue_util).unwrap();
        assert!((m - 0.6).abs() < 1e-12);
        // At t = 1 both alive → mean 0.4... only node1 exists then (node2
        // heard at t=5). Check empty case too.
        let empty = NeighborTable::new(SimDuration::from_secs(3));
        assert!(empty.mean_neighbor_load(t(0), |d| d.queue_util).is_none());
    }

    #[test]
    fn sweep_returns_departed() {
        let mut nt = NeighborTable::new(SimDuration::from_secs(3));
        nt.heard_hello(NodeId(1), digest(0.1), (0.0, 0.0), t(0));
        nt.heard_hello(NodeId(2), digest(0.1), (0.0, 0.0), t(4));
        let gone = nt.sweep(t(5));
        assert_eq!(gone, vec![NodeId(1)]);
        assert_eq!(nt.live_count(t(5)), 1);
        assert!(nt.sweep(t(5)).is_empty());
    }

    #[test]
    fn iter_live_filters() {
        let mut nt = NeighborTable::new(SimDuration::from_secs(3));
        nt.heard_hello(NodeId(1), digest(0.1), (0.0, 0.0), t(0));
        nt.heard_hello(NodeId(2), digest(0.1), (0.0, 0.0), t(4));
        let live: Vec<NodeId> = nt.iter_live(t(5)).map(|(&id, _)| id).collect();
        assert_eq!(live, vec![NodeId(2)]);
    }
}
