//! The route table (AODV-style, with a scheme-defined route cost).

use crate::addr::NodeId;
use std::collections::HashMap;
use wmn_sim::{SimDuration, SimTime};

/// One forwarding entry.
#[derive(Clone, Debug)]
pub struct RouteEntry {
    /// Next hop towards the destination.
    pub next_hop: NodeId,
    /// Hop count to the destination.
    pub hop_count: u8,
    /// Destination sequence number.
    pub seq: u32,
    /// Scheme cost (hop count for baselines; load-weighted for CNLR).
    /// Lower is better.
    pub cost: f64,
    /// Entry expiry (refreshed on use).
    pub expires: SimTime,
    /// False after a link break until re-discovered.
    pub valid: bool,
    /// Upstream nodes that route through us to this destination (for RERR
    /// propagation).
    pub precursors: Vec<NodeId>,
}

/// A node's route table.
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    entries: HashMap<NodeId, RouteEntry>,
}

/// Outcome of a table update offer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// New or strictly fresher/cheaper route installed.
    Installed,
    /// Existing route kept (offer not better); lifetime still refreshed.
    Kept,
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> Self {
        RouteTable {
            entries: HashMap::new(),
        }
    }

    /// Look up a currently valid, unexpired route.
    pub fn valid_route(&self, dst: NodeId, now: SimTime) -> Option<&RouteEntry> {
        self.entries
            .get(&dst)
            .filter(|e| e.valid && e.expires > now)
    }

    /// Look up regardless of validity (e.g. for sequence numbers in RERRs).
    pub fn any_entry(&self, dst: NodeId) -> Option<&RouteEntry> {
        self.entries.get(&dst)
    }

    /// Offer a route learned from a RREQ/RREP/data overheard. AODV rules:
    /// install when (a) no entry, (b) strictly newer `seq`, or (c) same
    /// `seq` and strictly lower `cost`. An invalid entry is always replaced.
    #[allow(clippy::too_many_arguments)]
    pub fn offer(
        &mut self,
        dst: NodeId,
        next_hop: NodeId,
        hop_count: u8,
        seq: u32,
        cost: f64,
        lifetime: SimDuration,
        now: SimTime,
    ) -> UpdateOutcome {
        let expires = now + lifetime;
        match self.entries.get_mut(&dst) {
            None => {
                self.entries.insert(
                    dst,
                    RouteEntry {
                        next_hop,
                        hop_count,
                        seq,
                        cost,
                        expires,
                        valid: true,
                        precursors: Vec::new(),
                    },
                );
                UpdateOutcome::Installed
            }
            Some(e) => {
                let better = !e.valid || seq_newer(seq, e.seq) || (seq == e.seq && cost < e.cost);
                if better {
                    e.next_hop = next_hop;
                    e.hop_count = hop_count;
                    e.seq = seq;
                    e.cost = cost;
                    e.valid = true;
                    e.expires = e.expires.max(expires);
                    UpdateOutcome::Installed
                } else {
                    e.expires = e.expires.max(expires);
                    UpdateOutcome::Kept
                }
            }
        }
    }

    /// Extend the lifetime of an active route (called on each use).
    pub fn refresh(&mut self, dst: NodeId, lifetime: SimDuration, now: SimTime) {
        if let Some(e) = self.entries.get_mut(&dst) {
            e.expires = e.expires.max(now + lifetime);
        }
    }

    /// Record that `precursor` routes through us towards `dst`.
    pub fn add_precursor(&mut self, dst: NodeId, precursor: NodeId) {
        if let Some(e) = self.entries.get_mut(&dst) {
            if !e.precursors.contains(&precursor) {
                e.precursors.push(precursor);
            }
        }
    }

    /// Invalidate every route whose next hop is `via`; returns the affected
    /// `(destination, bumped seq)` pairs for RERR generation.
    pub fn break_link(&mut self, via: NodeId) -> Vec<(NodeId, u32)> {
        let mut broken = Vec::new();
        for (&dst, e) in self.entries.iter_mut() {
            if e.valid && e.next_hop == via {
                e.valid = false;
                e.seq = e.seq.wrapping_add(1); // per AODV: bump on break
                broken.push((dst, e.seq));
            }
        }
        broken.sort_unstable_by_key(|&(d, _)| d);
        broken
    }

    /// Invalidate a specific destination if currently routed via `via`.
    /// Returns the bumped seq when invalidated.
    pub fn invalidate(&mut self, dst: NodeId, via: NodeId) -> Option<u32> {
        let e = self.entries.get_mut(&dst)?;
        if e.valid && e.next_hop == via {
            e.valid = false;
            e.seq = e.seq.wrapping_add(1);
            Some(e.seq)
        } else {
            None
        }
    }

    /// Remove entries expired before `now`; returns how many were removed.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires > now);
        before - self.entries.len()
    }

    /// Number of entries (any state).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &RouteEntry)> {
        self.entries.iter()
    }
}

/// Sequence-number comparison with wrap-around (RFC 3561 §10: signed
/// 32-bit difference).
pub fn seq_newer(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIFE: SimDuration = SimDuration(3_000_000_000);

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn install_and_lookup() {
        let mut rt = RouteTable::new();
        assert!(rt.valid_route(NodeId(9), t(0)).is_none());
        let out = rt.offer(NodeId(9), NodeId(1), 3, 10, 3.0, LIFE, t(0));
        assert_eq!(out, UpdateOutcome::Installed);
        let e = rt.valid_route(NodeId(9), t(1)).unwrap();
        assert_eq!(e.next_hop, NodeId(1));
        assert_eq!(e.hop_count, 3);
    }

    #[test]
    fn expiry_hides_routes_and_sweep_removes() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(9), NodeId(1), 3, 10, 3.0, LIFE, t(0));
        assert!(rt.valid_route(NodeId(9), t(2)).is_some());
        assert!(rt.valid_route(NodeId(9), t(4)).is_none());
        assert_eq!(rt.sweep(t(4)), 1);
        assert!(rt.is_empty());
    }

    #[test]
    fn newer_seq_replaces_even_if_costlier() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(9), NodeId(1), 2, 10, 2.0, LIFE, t(0));
        let out = rt.offer(NodeId(9), NodeId(2), 5, 11, 5.0, LIFE, t(0));
        assert_eq!(out, UpdateOutcome::Installed);
        assert_eq!(rt.valid_route(NodeId(9), t(1)).unwrap().next_hop, NodeId(2));
    }

    #[test]
    fn same_seq_requires_lower_cost() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(9), NodeId(1), 2, 10, 2.0, LIFE, t(0));
        let kept = rt.offer(NodeId(9), NodeId(2), 3, 10, 3.0, LIFE, t(0));
        assert_eq!(kept, UpdateOutcome::Kept);
        assert_eq!(rt.valid_route(NodeId(9), t(1)).unwrap().next_hop, NodeId(1));
        let swapped = rt.offer(NodeId(9), NodeId(3), 1, 10, 1.0, LIFE, t(0));
        assert_eq!(swapped, UpdateOutcome::Installed);
        assert_eq!(rt.valid_route(NodeId(9), t(1)).unwrap().next_hop, NodeId(3));
    }

    #[test]
    fn stale_seq_is_rejected_but_refreshes_lifetime() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(9), NodeId(1), 2, 10, 2.0, LIFE, t(0));
        let out = rt.offer(NodeId(9), NodeId(2), 1, 9, 1.0, LIFE, t(2));
        assert_eq!(out, UpdateOutcome::Kept);
        // Lifetime extended to t(2) + 3 s = t(5).
        assert!(rt.valid_route(NodeId(9), t(4)).is_some());
        assert_eq!(rt.valid_route(NodeId(9), t(4)).unwrap().next_hop, NodeId(1));
    }

    #[test]
    fn break_link_invalidates_and_bumps_seq() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(9), NodeId(1), 2, 10, 2.0, LIFE, t(0));
        rt.offer(NodeId(8), NodeId(1), 4, 6, 4.0, LIFE, t(0));
        rt.offer(NodeId(7), NodeId(2), 1, 3, 1.0, LIFE, t(0));
        let broken = rt.break_link(NodeId(1));
        assert_eq!(broken, vec![(NodeId(8), 7), (NodeId(9), 11)]);
        assert!(rt.valid_route(NodeId(9), t(1)).is_none());
        assert!(rt.valid_route(NodeId(7), t(1)).is_some());
        // An invalid entry is replaced by any fresh offer.
        let out = rt.offer(NodeId(9), NodeId(3), 6, 11, 6.0, LIFE, t(1));
        assert_eq!(out, UpdateOutcome::Installed);
        assert!(rt.valid_route(NodeId(9), t(2)).is_some());
    }

    #[test]
    fn invalidate_specific() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(9), NodeId(1), 2, 10, 2.0, LIFE, t(0));
        assert_eq!(rt.invalidate(NodeId(9), NodeId(2)), None); // wrong via
        assert_eq!(rt.invalidate(NodeId(9), NodeId(1)), Some(11));
        assert_eq!(rt.invalidate(NodeId(9), NodeId(1)), None); // already invalid
    }

    #[test]
    fn precursors_dedup() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(9), NodeId(1), 2, 10, 2.0, LIFE, t(0));
        rt.add_precursor(NodeId(9), NodeId(5));
        rt.add_precursor(NodeId(9), NodeId(5));
        rt.add_precursor(NodeId(9), NodeId(6));
        assert_eq!(
            rt.any_entry(NodeId(9)).unwrap().precursors,
            vec![NodeId(5), NodeId(6)]
        );
    }

    #[test]
    fn seq_comparison_wraps() {
        assert!(seq_newer(11, 10));
        assert!(!seq_newer(10, 10));
        assert!(!seq_newer(9, 10));
        assert!(seq_newer(1, u32::MAX)); // wrap-around
        assert!(!seq_newer(u32::MAX, 1));
    }
}
