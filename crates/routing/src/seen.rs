//! Duplicate-RREQ bookkeeping.
//!
//! Every broadcast scheme needs to know whether an RREQ was seen before;
//! counter-based schemes additionally need *how many* copies arrived during
//! the random assessment delay.

use crate::packet::RreqKey;
use std::collections::HashMap;
use wmn_sim::{SimDuration, SimTime};

/// Per-RREQ reception record.
#[derive(Clone, Copy, Debug)]
pub struct SeenEntry {
    /// First reception time.
    pub first_seen: SimTime,
    /// Copies received (including the first).
    pub copies: u32,
    /// Whether this node has already transmitted (or irrevocably decided
    /// not to transmit) this RREQ.
    pub resolved: bool,
}

/// Bounded-lifetime duplicate cache.
#[derive(Clone, Debug)]
pub struct SeenCache {
    entries: HashMap<RreqKey, SeenEntry>,
    lifetime: SimDuration,
}

impl SeenCache {
    /// Entries are forgotten `lifetime` after first reception (must exceed
    /// the network traversal time of an RREQ, per RFC 3561's
    /// `PATH_DISCOVERY_TIME`).
    pub fn new(lifetime: SimDuration) -> Self {
        SeenCache {
            entries: HashMap::new(),
            lifetime,
        }
    }

    /// Record a reception; returns the number of copies seen *before* this
    /// one (0 ⇒ first copy).
    pub fn record(&mut self, key: RreqKey, now: SimTime) -> u32 {
        let e = self.entries.entry(key).or_insert(SeenEntry {
            first_seen: now,
            copies: 0,
            resolved: false,
        });
        let before = e.copies;
        e.copies += 1;
        before
    }

    /// Copies observed so far.
    pub fn copies(&self, key: RreqKey) -> u32 {
        self.entries.get(&key).map_or(0, |e| e.copies)
    }

    /// Mark the forwarding decision for `key` as final.
    pub fn resolve(&mut self, key: RreqKey) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.resolved = true;
        }
    }

    /// Whether the decision for `key` is final.
    pub fn is_resolved(&self, key: RreqKey) -> bool {
        self.entries.get(&key).is_some_and(|e| e.resolved)
    }

    /// Drop entries older than the lifetime. Returns removed count.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let lifetime = self.lifetime;
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.since(e.first_seen) < lifetime);
        before - self.entries.len()
    }

    /// Current number of tracked RREQs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NodeId;

    fn key(id: u32) -> RreqKey {
        RreqKey {
            origin: NodeId(1),
            id,
        }
    }

    #[test]
    fn first_copy_returns_zero() {
        let mut c = SeenCache::new(SimDuration::from_secs(5));
        assert_eq!(c.record(key(1), SimTime::ZERO), 0);
        assert_eq!(c.record(key(1), SimTime::ZERO), 1);
        assert_eq!(c.record(key(1), SimTime::ZERO), 2);
        assert_eq!(c.copies(key(1)), 3);
        assert_eq!(c.copies(key(2)), 0);
    }

    #[test]
    fn resolution_flag() {
        let mut c = SeenCache::new(SimDuration::from_secs(5));
        c.record(key(1), SimTime::ZERO);
        assert!(!c.is_resolved(key(1)));
        c.resolve(key(1));
        assert!(c.is_resolved(key(1)));
        assert!(!c.is_resolved(key(2)));
    }

    #[test]
    fn sweep_by_first_seen() {
        let mut c = SeenCache::new(SimDuration::from_secs(5));
        c.record(key(1), SimTime::from_secs(0));
        c.record(key(2), SimTime::from_secs(4));
        // A late duplicate does not rejuvenate the entry.
        c.record(key(1), SimTime::from_secs(4));
        assert_eq!(c.sweep(SimTime::from_secs(6)), 1);
        assert_eq!(c.copies(key(1)), 0);
        assert_eq!(c.copies(key(2)), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn distinct_origins_are_distinct_keys() {
        let mut c = SeenCache::new(SimDuration::from_secs(5));
        let a = RreqKey {
            origin: NodeId(1),
            id: 7,
        };
        let b = RreqKey {
            origin: NodeId(2),
            id: 7,
        };
        c.record(a, SimTime::ZERO);
        assert_eq!(c.copies(b), 0);
    }
}
