//! Network-layer packet formats.
//!
//! Wire sizes follow RFC 3561 (AODV) with CNLR's extra fields: RREQs carry an
//! accumulated *path-load* metric and HELLOs carry the sender's
//! [`LoadDigest`] and velocity — the cross-layer payload of the scheme.

use crate::addr::NodeId;
use wmn_mac::LoadDigest;
use wmn_sim::SimTime;

/// Identifier of an application flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// Globally unique identifier of one route-discovery attempt.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RreqKey {
    /// The node that originated the discovery.
    pub origin: NodeId,
    /// Its per-origin discovery counter.
    pub id: u32,
}

/// Route request (broadcast, scheme-controlled rebroadcast).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rreq {
    /// Duplicate-detection key.
    pub key: RreqKey,
    /// Origin's current sequence number.
    pub origin_seq: u32,
    /// The node a route is sought to.
    pub target: NodeId,
    /// Last known sequence number of the target (`None` = unknown).
    pub target_seq: Option<u32>,
    /// Hops travelled so far.
    pub hop_count: u8,
    /// Accumulated neighbourhood-load metric along the reverse path
    /// (CNLR; zero under the baselines).
    pub path_load: f64,
    /// Remaining time-to-live.
    pub ttl: u8,
}

/// Route reply (unicast hop-by-hop along the reverse path).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rrep {
    /// The discovery origin this RREP travels to.
    pub origin: NodeId,
    /// The route target the RREP describes.
    pub target: NodeId,
    /// Target's sequence number.
    pub target_seq: u32,
    /// Hops from the responder to the target (0 when the target answers).
    pub hop_count: u8,
    /// Accumulated path load from responder to target plus the discovered
    /// forward path (CNLR route-selection metric).
    pub path_load: f64,
}

/// Route error: destinations no longer reachable through the sender.
#[derive(Clone, Debug, PartialEq)]
pub struct Rerr {
    /// `(destination, last known seq)` pairs now unreachable.
    pub unreachable: Vec<(NodeId, u32)>,
}

/// Periodic one-hop beacon carrying the cross-layer digest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hello {
    /// Sender's sequence number.
    pub seq: u32,
    /// Sender's local load digest.
    pub load: LoadDigest,
    /// Sender's velocity (m/s) for VAP link-stability estimation.
    pub velocity: (f64, f64),
}

/// Application data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataPacket {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Per-flow sequence number.
    pub seq: u32,
    /// Flow source.
    pub src: NodeId,
    /// Flow destination.
    pub dst: NodeId,
    /// Application payload bytes.
    pub payload: usize,
    /// Creation timestamp (for end-to-end delay accounting).
    pub created: SimTime,
}

/// Any network-layer packet.
#[derive(Clone, Debug, PartialEq)]
pub enum Packet {
    /// Route request.
    Rreq(Rreq),
    /// Route reply.
    Rrep(Rrep),
    /// Route error.
    Rerr(Rerr),
    /// HELLO beacon.
    Hello(Hello),
    /// Application data.
    Data(DataPacket),
}

impl Packet {
    /// On-air network-layer size in bytes (headers per RFC 3561, plus the
    /// CNLR load field where applicable).
    pub fn wire_bytes(&self) -> usize {
        match self {
            // RFC 3561 RREQ is 24 B; + 4 B path-load field.
            Packet::Rreq(_) => 28,
            // RREP 20 B; + 4 B path-load.
            Packet::Rrep(_) => 24,
            Packet::Rerr(r) => 4 + 8 * r.unreachable.len(),
            // HELLO: 20 B RREP-shaped beacon + 12 B digest/velocity.
            Packet::Hello(_) => 32,
            // 20 B network header + payload.
            Packet::Data(d) => 20 + d.payload,
        }
    }

    /// True for packets every scheme floods (RREQs).
    pub fn is_rreq(&self) -> bool {
        matches!(self, Packet::Rreq(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> DataPacket {
        DataPacket {
            flow: FlowId(1),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(9),
            payload: 512,
            created: SimTime::ZERO,
        }
    }

    #[test]
    fn wire_sizes() {
        let rreq = Packet::Rreq(Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 1,
            target: NodeId(9),
            target_seq: None,
            hop_count: 0,
            path_load: 0.0,
            ttl: 32,
        });
        assert_eq!(rreq.wire_bytes(), 28);
        assert!(rreq.is_rreq());

        let rrep = Packet::Rrep(Rrep {
            origin: NodeId(0),
            target: NodeId(9),
            target_seq: 2,
            hop_count: 0,
            path_load: 0.0,
        });
        assert_eq!(rrep.wire_bytes(), 24);

        let rerr = Packet::Rerr(Rerr {
            unreachable: vec![(NodeId(1), 5), (NodeId(2), 6)],
        });
        assert_eq!(rerr.wire_bytes(), 20);

        let hello = Packet::Hello(Hello {
            seq: 1,
            load: LoadDigest::default(),
            velocity: (0.0, 0.0),
        });
        assert_eq!(hello.wire_bytes(), 32);

        assert_eq!(Packet::Data(data()).wire_bytes(), 532);
        assert!(!Packet::Data(data()).is_rreq());
    }
}
