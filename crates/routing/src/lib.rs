//! `wmn-routing` — the reactive routing substrate and baseline broadcast
//! schemes.
//!
//! An AODV-style on-demand engine ([`Routing`]) with sequence-numbered route
//! tables, duplicate caches, HELLO-maintained neighbour tables (carrying the
//! cross-layer [`wmn_mac::LoadDigest`]s), RERR propagation, and discovery
//! retry/buffering — everything RFC 3561 prescribes minus the pieces the
//! era's evaluations disable (expanding-ring search, intermediate replies by
//! default, local repair).
//!
//! The route-discovery broadcast strategy is pluggable through
//! [`RebroadcastPolicy`]; this crate ships the literature baselines (blind
//! [`Flooding`], [`Gossip`], [`GossipK`], [`CounterBased`]) while the CNLR
//! contribution lives in the `cnlr` crate.

#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod engine;
pub mod neighbors;
pub mod packet;
pub mod policy;
pub mod seen;
pub mod stats;
pub mod table;

pub use addr::{NodeId, BROADCAST_NODE};
pub use config::RoutingConfig;
pub use engine::{CrossLayer, DataDropReason, RouteProbe, Routing, RoutingAction, RoutingTimer};
pub use neighbors::NeighborTable;
pub use packet::{DataPacket, FlowId, Hello, Packet, Rerr, Rrep, Rreq, RreqKey};
pub use policy::{
    CounterBased, Decision, DistanceBased, Flooding, Gossip, GossipK, RebroadcastPolicy,
    RreqContext,
};
pub use seen::SeenCache;
pub use stats::RoutingStats;
pub use table::{RouteEntry, RouteTable};
