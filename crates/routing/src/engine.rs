//! The reactive (AODV-style) routing engine.
//!
//! Like the MAC, the engine is a pure state machine: packets, timers and
//! link reports go in; [`RoutingAction`]s come out. The rebroadcast scheme is
//! a [`RebroadcastPolicy`] plug-in, so the *same* engine runs blind flooding,
//! the gossip/counter baselines and CNLR — the comparison isolates exactly
//! the paper's variable.

use crate::addr::NodeId;
use crate::config::RoutingConfig;
use crate::neighbors::NeighborTable;
use crate::packet::{DataPacket, Hello, Packet, Rerr, Rrep, Rreq, RreqKey};
use crate::policy::{Decision, RebroadcastPolicy, RreqContext};
use crate::seen::SeenCache;
use crate::stats::RoutingStats;
use crate::table::{RouteTable, UpdateOutcome};
use std::collections::{HashMap, VecDeque};
use wmn_mac::LoadDigest;
use wmn_sim::{SimDuration, SimRng, SimTime};
use wmn_telemetry::{EventKind, Tel};

/// Cross-layer inputs supplied by the node stack on every call.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrossLayer {
    /// This node's MAC load digest.
    pub own_load: LoadDigest,
    /// This node's velocity, m/s.
    pub own_velocity: (f64, f64),
    /// Receive power of the frame being processed, dBm (set by the node
    /// stack on packet reception; `None` on timer paths).
    pub last_rx_dbm: Option<f64>,
}

/// Timers owned by the routing layer (scheduled via
/// [`RoutingAction::SetTimer`] and returned through `on_timer`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RoutingTimer {
    /// Route-discovery timeout for `target` (stale if `gen` mismatches).
    DiscoveryRetry {
        /// Discovery target.
        target: NodeId,
        /// Generation guard.
        gen: u64,
    },
    /// Counter-scheme assessment delay expired for `key`.
    RadAssess {
        /// The deferred RREQ.
        key: RreqKey,
    },
    /// Periodic HELLO beacon.
    Hello,
    /// Periodic table/cache sweep.
    Sweep,
}

/// Why a data packet was dropped by the routing layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataDropReason {
    /// Intermediate node without a route.
    NoRoute,
    /// Discovery buffer overflowed.
    BufferOverflow,
    /// All discovery retries failed.
    DiscoveryFailed,
    /// Link-level transmission failure mid-path.
    LinkFailure,
    /// RREQ TTL exhausted before reaching the destination — packet expired
    /// in the origin buffer.
    Expired,
}

/// Engine output, executed by the node stack.
#[derive(Clone, Debug, PartialEq)]
pub enum RoutingAction {
    /// Broadcast `packet` after `delay` (forwarding jitter / RAD).
    Broadcast {
        /// The packet.
        packet: Packet,
        /// Transmit delay.
        delay: SimDuration,
    },
    /// Unicast `packet` to `next_hop` now.
    Unicast {
        /// The packet.
        packet: Packet,
        /// Link-layer destination.
        next_hop: NodeId,
    },
    /// Deliver data to the local application.
    Deliver(DataPacket),
    /// Arm a routing timer at `at`.
    SetTimer {
        /// The timer payload to return.
        timer: RoutingTimer,
        /// Absolute expiry.
        at: SimTime,
    },
    /// A data packet was discarded.
    DataDropped {
        /// The packet.
        packet: DataPacket,
        /// Why.
        reason: DataDropReason,
    },
}

#[derive(Debug)]
struct PendingDiscovery {
    retries: u32,
    gen: u64,
    buffer: VecDeque<DataPacket>,
}

/// The per-node routing entity.
pub struct Routing {
    me: NodeId,
    config: RoutingConfig,
    policy: Box<dyn RebroadcastPolicy>,
    rng: SimRng,
    seq: u32,
    rreq_id: u32,
    hello_seq: u32,
    table: RouteTable,
    seen: SeenCache,
    neighbors: NeighborTable,
    pending: HashMap<NodeId, PendingDiscovery>,
    /// RREQs deferred by a counter policy, waiting for their RAD timer.
    deferred: HashMap<RreqKey, Rreq>,
    /// Best cost already answered per RREQ (targets re-answer improvements).
    answered: HashMap<RreqKey, f64>,
    discovery_gen: u64,
    stats: RoutingStats,
    tel: Tel,
}

/// A diagnostic snapshot of the cross-layer signals driving the
/// rebroadcast decision at one node (the periodic probe payload).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteProbe {
    /// Live 1-hop neighbour count.
    pub neighbor_count: usize,
    /// The policy's neighbourhood-load estimate `[0, 1]` (0 when the
    /// scheme is load-blind).
    pub load: f64,
    /// The rebroadcast probability the policy would apply right now.
    pub forward_probability: f64,
}

impl Routing {
    /// Create the engine for node `me` with the given scheme.
    pub fn new(
        me: NodeId,
        config: RoutingConfig,
        policy: Box<dyn RebroadcastPolicy>,
        rng: SimRng,
    ) -> Self {
        let seen = SeenCache::new(config.seen_lifetime);
        let neighbors = NeighborTable::new(config.neighbor_timeout);
        Routing {
            me,
            config,
            policy,
            rng,
            seq: 0,
            rreq_id: 0,
            hello_seq: 0,
            table: RouteTable::new(),
            seen,
            neighbors,
            pending: HashMap::new(),
            deferred: HashMap::new(),
            answered: HashMap::new(),
            discovery_gen: 0,
            stats: RoutingStats::default(),
            tel: Tel::off(),
        }
    }

    /// Attach a telemetry handle (disabled by default; call once after
    /// construction when event collection is on).
    pub fn set_telemetry(&mut self, tel: Tel) {
        self.tel = tel;
    }

    /// Sample the cross-layer signals as the policy sees them right now
    /// (the periodic probe; does not touch policy or RNG state).
    pub fn probe(&mut self, cross: &CrossLayer, now: SimTime) -> RouteProbe {
        let ctx = self.rreq_context(self.me, 0, cross, now);
        RouteProbe {
            neighbor_count: ctx.neighbor_count,
            load: self.policy.load_estimate(&ctx),
            forward_probability: self.policy.forward_probability(&ctx),
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Scheme name (for reports).
    pub fn scheme_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Counters.
    pub fn stats(&self) -> &RoutingStats {
        &self.stats
    }

    /// Route-table access (read-only, for assertions and reports).
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    /// Empty every pending-discovery buffer and return the parked data
    /// packets. Used when the node crashes: the packets had a
    /// `DataOriginate` trace event, so the caller must account each one
    /// with a terminal drop to keep packet conservation exact.
    pub fn drain_buffered(&mut self) -> Vec<DataPacket> {
        let mut out = Vec::new();
        for (_, p) in self.pending.drain() {
            out.extend(p.buffer);
        }
        out.sort_by_key(|d| (d.flow, d.seq));
        out
    }

    /// Neighbour-table access.
    pub fn neighbors(&self) -> &NeighborTable {
        &self.neighbors
    }

    /// Prime the periodic timers. Call once at startup.
    pub fn start(&mut self, now: SimTime, out: &mut Vec<RoutingAction>) {
        // Stagger HELLOs uniformly over one interval so beacons do not
        // synchronise network-wide.
        let hello_offset =
            SimDuration(self.rng.below(self.config.hello_interval.as_nanos().max(1)));
        out.push(RoutingAction::SetTimer {
            timer: RoutingTimer::Hello,
            at: now + hello_offset,
        });
        out.push(RoutingAction::SetTimer {
            timer: RoutingTimer::Sweep,
            at: now + self.config.sweep_interval,
        });
    }

    // ------------------------------------------------------------------
    // Application input
    // ------------------------------------------------------------------

    /// The local application submits a packet.
    pub fn send_data(&mut self, packet: DataPacket, now: SimTime, out: &mut Vec<RoutingAction>) {
        self.stats.data_originated += 1;
        if packet.dst == self.me {
            // Loopback (degenerate but legal).
            self.stats.data_delivered += 1;
            out.push(RoutingAction::Deliver(packet));
            return;
        }
        if let Some(entry) = self.table.valid_route(packet.dst, now) {
            let next_hop = entry.next_hop;
            self.table
                .refresh(packet.dst, self.config.route_lifetime, now);
            out.push(RoutingAction::Unicast {
                packet: Packet::Data(packet),
                next_hop,
            });
            return;
        }
        self.buffer_and_discover(packet, now, out);
    }

    fn buffer_and_discover(
        &mut self,
        packet: DataPacket,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        let target = packet.dst;
        let cap = self.config.buffer_capacity;
        if let Some(p) = self.pending.get_mut(&target) {
            if p.buffer.len() >= cap {
                self.stats.data_dropped_buffer += 1;
                out.push(RoutingAction::DataDropped {
                    packet,
                    reason: DataDropReason::BufferOverflow,
                });
            } else {
                p.buffer.push_back(packet);
            }
            return;
        }
        // New discovery.
        self.stats.discoveries_started += 1;
        self.discovery_gen += 1;
        let gen = self.discovery_gen;
        let mut buffer = VecDeque::with_capacity(4);
        buffer.push_back(packet);
        self.pending.insert(
            target,
            PendingDiscovery {
                retries: 0,
                gen,
                buffer,
            },
        );
        self.emit_rreq(target, 0, now, out);
        out.push(RoutingAction::SetTimer {
            timer: RoutingTimer::DiscoveryRetry { target, gen },
            at: now + self.config.timeout_for_attempt(0),
        });
    }

    fn emit_rreq(
        &mut self,
        target: NodeId,
        retry: u32,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        self.seq = self.seq.wrapping_add(1);
        self.rreq_id = self.rreq_id.wrapping_add(1);
        let rreq = Rreq {
            key: RreqKey {
                origin: self.me,
                id: self.rreq_id,
            },
            origin_seq: self.seq,
            target,
            target_seq: self.table.any_entry(target).map(|e| e.seq),
            hop_count: 0,
            path_load: 0.0,
            ttl: self.config.ttl_for_attempt(retry),
        };
        // Mark our own RREQ as seen so echoes are ignored.
        self.seen.record(rreq.key, now);
        self.seen.resolve(rreq.key);
        self.stats.rreq_originated += 1;
        self.tel.emit(
            now,
            EventKind::RreqOriginate {
                id: self.rreq_id,
                target: target.0,
            },
        );
        out.push(RoutingAction::Broadcast {
            packet: Packet::Rreq(rreq),
            delay: SimDuration::ZERO,
        });
    }

    // ------------------------------------------------------------------
    // Packet reception
    // ------------------------------------------------------------------

    /// A network-layer packet arrived from 1-hop neighbour `from`.
    pub fn on_packet(
        &mut self,
        packet: Packet,
        from: NodeId,
        cross: &CrossLayer,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        debug_assert_ne!(from, self.me, "received own packet");
        match packet {
            Packet::Hello(h) => {
                self.neighbors.heard_hello(from, h.load, h.velocity, now);
                // A HELLO also constitutes a 1-hop route.
                self.table
                    .offer(from, from, 1, h.seq, 1.0, self.config.route_lifetime, now);
            }
            Packet::Rreq(rreq) => self.on_rreq(rreq, from, cross, now, out),
            Packet::Rrep(rrep) => self.on_rrep(rrep, from, cross, now, out),
            Packet::Rerr(rerr) => self.on_rerr(rerr, from, now, out),
            Packet::Data(data) => self.on_data(data, from, now, out),
        }
    }

    fn rreq_context(
        &mut self,
        from: NodeId,
        prior_copies: u32,
        cross: &CrossLayer,
        now: SimTime,
    ) -> RreqContext {
        RreqContext {
            now,
            prior_copies,
            neighbor_count: self.neighbors.live_count(now),
            own_load: cross.own_load,
            nbr_mean_queue: self.neighbors.mean_neighbor_load(now, |d| d.queue_util),
            nbr_mean_busy: self.neighbors.mean_neighbor_load(now, |d| d.busy_ratio),
            own_velocity: cross.own_velocity,
            sender_velocity: self.neighbors.get(from, now).map(|n| n.velocity),
            rx_power_dbm: cross.last_rx_dbm,
        }
    }

    fn on_rreq(
        &mut self,
        rreq: Rreq,
        from: NodeId,
        cross: &CrossLayer,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        if rreq.key.origin == self.me {
            return; // own discovery echoed back
        }
        self.stats.rreq_received += 1;
        self.tel.emit(
            now,
            EventKind::RreqRecv {
                origin: rreq.key.origin.0,
                id: rreq.key.id,
            },
        );
        self.neighbors.heard_any(from, now);

        let prior = self.seen.record(rreq.key, now);

        // Reverse-route offer (improvable by later, better copies — this is
        // the mechanism by which load-aware discovery picks better paths).
        let rev_hops = rreq.hop_count.saturating_add(1);
        let rev_cost = self.policy.route_cost(rev_hops, rreq.path_load);
        let installed = self.table.offer(
            rreq.key.origin,
            from,
            rev_hops,
            rreq.origin_seq,
            rev_cost,
            self.config.route_lifetime,
            now,
        );

        if rreq.target == self.me {
            // Destination: answer the first copy and any strictly better one.
            let best = self.answered.get(&rreq.key).copied();
            let improved = best.is_none_or(|b| rev_cost < b);
            if installed == UpdateOutcome::Installed && improved {
                self.answered.insert(rreq.key, rev_cost);
                // RFC 3561 §6.6.1: dst seq = max(own, rreq hint).
                if let Some(hint) = rreq.target_seq {
                    if crate::table::seq_newer(hint, self.seq) {
                        self.seq = hint;
                    }
                }
                self.seq = self.seq.wrapping_add(1);
                let rrep = Rrep {
                    origin: rreq.key.origin,
                    target: self.me,
                    target_seq: self.seq,
                    hop_count: 0,
                    path_load: 0.0,
                };
                self.stats.rrep_generated += 1;
                self.tel.emit(
                    now,
                    EventKind::RrepGenerate {
                        origin: rrep.origin.0,
                        target: rrep.target.0,
                    },
                );
                out.push(RoutingAction::Unicast {
                    packet: Packet::Rrep(rrep),
                    next_hop: from,
                });
            }
            return;
        }

        if prior > 0 {
            self.stats.rreq_duplicates += 1;
            self.tel.emit(
                now,
                EventKind::RreqDuplicate {
                    origin: rreq.key.origin.0,
                    id: rreq.key.id,
                },
            );
            return;
        }

        // Optional intermediate reply for targets we hold a fresh route to.
        if self.config.intermediate_reply {
            if let Some(e) = self.table.valid_route(rreq.target, now) {
                let fresh = rreq
                    .target_seq
                    .is_none_or(|want| !crate::table::seq_newer(want, e.seq));
                if fresh {
                    let rrep = Rrep {
                        origin: rreq.key.origin,
                        target: rreq.target,
                        target_seq: e.seq,
                        hop_count: e.hop_count,
                        path_load: e.cost,
                    };
                    self.stats.rrep_generated += 1;
                    self.tel.emit(
                        now,
                        EventKind::RrepGenerate {
                            origin: rrep.origin.0,
                            target: rrep.target.0,
                        },
                    );
                    self.seen.resolve(rreq.key);
                    out.push(RoutingAction::Unicast {
                        packet: Packet::Rrep(rrep),
                        next_hop: from,
                    });
                    return;
                }
            }
        }

        if rreq.ttl <= 1 {
            self.seen.resolve(rreq.key);
            self.stats.rreq_suppressed += 1;
            self.tel.emit(
                now,
                EventKind::RreqSuppress {
                    origin: rreq.key.origin.0,
                    id: rreq.key.id,
                },
            );
            return;
        }

        let ctx = self.rreq_context(from, prior, cross, now);
        match self.policy.on_first_copy(&rreq, &ctx, &mut self.rng) {
            Decision::Forward { jitter } => {
                self.seen.resolve(rreq.key);
                let fwd = self.prepare_forward(rreq, &ctx);
                self.stats.rreq_forwarded += 1;
                self.tel.emit(
                    now,
                    EventKind::RreqForward {
                        origin: fwd.key.origin.0,
                        id: fwd.key.id,
                    },
                );
                out.push(RoutingAction::Broadcast {
                    packet: Packet::Rreq(fwd),
                    delay: jitter,
                });
            }
            Decision::Discard => {
                self.seen.resolve(rreq.key);
                self.stats.rreq_suppressed += 1;
                self.tel.emit(
                    now,
                    EventKind::RreqSuppress {
                        origin: rreq.key.origin.0,
                        id: rreq.key.id,
                    },
                );
            }
            Decision::Defer { delay } => {
                self.deferred.insert(rreq.key, rreq);
                out.push(RoutingAction::SetTimer {
                    timer: RoutingTimer::RadAssess { key: rreq.key },
                    at: now + delay,
                });
            }
        }
    }

    fn prepare_forward(&mut self, mut rreq: Rreq, ctx: &RreqContext) -> Rreq {
        rreq.hop_count = rreq.hop_count.saturating_add(1);
        rreq.ttl -= 1;
        self.policy.annotate(&mut rreq, ctx);
        rreq
    }

    fn on_rrep(
        &mut self,
        rrep: Rrep,
        from: NodeId,
        cross: &CrossLayer,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        self.neighbors.heard_any(from, now);
        let hops = rrep.hop_count.saturating_add(1);
        let cost = self.policy.route_cost(hops, rrep.path_load);
        self.table.offer(
            rrep.target,
            from,
            hops,
            rrep.target_seq,
            cost,
            self.config.route_lifetime,
            now,
        );

        if rrep.origin == self.me {
            // Our discovery answered: flush the buffer.
            if let Some(mut p) = self.pending.remove(&rrep.target) {
                self.stats.discoveries_succeeded += 1;
                while let Some(data) = p.buffer.pop_front() {
                    if let Some(e) = self.table.valid_route(data.dst, now) {
                        let next_hop = e.next_hop;
                        out.push(RoutingAction::Unicast {
                            packet: Packet::Data(data),
                            next_hop,
                        });
                    } else {
                        self.stats.data_dropped_discovery += 1;
                        out.push(RoutingAction::DataDropped {
                            packet: data,
                            reason: DataDropReason::DiscoveryFailed,
                        });
                    }
                }
            }
            // Later (better) RREPs just improve the table via `offer`.
            return;
        }

        // Forward towards the origin along the reverse route.
        if let Some(e) = self.table.valid_route(rrep.origin, now) {
            let next_hop = e.next_hop;
            self.table.add_precursor(rrep.target, next_hop);
            self.table
                .refresh(rrep.origin, self.config.route_lifetime, now);
            let mut fwd = rrep;
            fwd.hop_count = hops;
            // Cross-layer accumulation on the forward path as well.
            fwd.path_load += cross.own_load.index(1.0, 1.0);
            self.stats.rrep_forwarded += 1;
            self.tel.emit(
                now,
                EventKind::RrepForward {
                    origin: fwd.origin.0,
                    target: fwd.target.0,
                },
            );
            out.push(RoutingAction::Unicast {
                packet: Packet::Rrep(fwd),
                next_hop,
            });
        } else {
            self.stats.rrep_dropped += 1;
            self.tel.emit(
                now,
                EventKind::RrepDrop {
                    origin: rrep.origin.0,
                    target: rrep.target.0,
                },
            );
        }
    }

    fn on_rerr(&mut self, rerr: Rerr, from: NodeId, now: SimTime, out: &mut Vec<RoutingAction>) {
        self.neighbors.heard_any(from, now);
        let mut propagate = Vec::new();
        for (dst, _seq) in &rerr.unreachable {
            if let Some(bumped) = self.table.invalidate(*dst, from) {
                propagate.push((*dst, bumped));
            }
        }
        if !propagate.is_empty() {
            self.stats.rerr_sent += 1;
            self.tel.emit(
                now,
                EventKind::RerrSend {
                    count: propagate.len() as u32,
                },
            );
            out.push(RoutingAction::Broadcast {
                packet: Packet::Rerr(Rerr {
                    unreachable: propagate,
                }),
                delay: SimDuration::ZERO,
            });
        }
    }

    fn on_data(
        &mut self,
        data: DataPacket,
        from: NodeId,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        self.neighbors.heard_any(from, now);
        if data.dst == self.me {
            self.stats.data_delivered += 1;
            self.table
                .refresh(data.src, self.config.route_lifetime, now);
            out.push(RoutingAction::Deliver(data));
            return;
        }
        if let Some(e) = self.table.valid_route(data.dst, now) {
            let next_hop = e.next_hop;
            self.table.add_precursor(data.dst, from);
            self.table
                .refresh(data.dst, self.config.route_lifetime, now);
            self.table
                .refresh(data.src, self.config.route_lifetime, now);
            self.stats.data_forwarded += 1;
            self.tel.emit(
                now,
                EventKind::DataForward {
                    flow: data.flow.0,
                    seq: data.seq,
                },
            );
            out.push(RoutingAction::Unicast {
                packet: Packet::Data(data),
                next_hop,
            });
        } else {
            self.stats.data_dropped_no_route += 1;
            let seq = self.table.any_entry(data.dst).map_or(0, |e| e.seq);
            self.stats.rerr_sent += 1;
            self.tel.emit(now, EventKind::RerrSend { count: 1 });
            out.push(RoutingAction::DataDropped {
                packet: data,
                reason: DataDropReason::NoRoute,
            });
            out.push(RoutingAction::Broadcast {
                packet: Packet::Rerr(Rerr {
                    unreachable: vec![(data.dst, seq)],
                }),
                delay: SimDuration::ZERO,
            });
        }
    }

    // ------------------------------------------------------------------
    // Link feedback from the MAC
    // ------------------------------------------------------------------

    /// The MAC failed to deliver a unicast `packet` to `next_hop`
    /// (retry limit). Breaks the link and salvages own-origin data.
    pub fn on_link_failure(
        &mut self,
        next_hop: NodeId,
        packet: Option<Packet>,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        let broken = self.table.break_link(next_hop);
        if !broken.is_empty() {
            self.stats.rerr_sent += 1;
            self.tel.emit(
                now,
                EventKind::RerrSend {
                    count: broken.len() as u32,
                },
            );
            out.push(RoutingAction::Broadcast {
                packet: Packet::Rerr(Rerr {
                    unreachable: broken,
                }),
                delay: SimDuration::ZERO,
            });
        }
        match packet {
            Some(Packet::Data(data)) => {
                if data.src == self.me {
                    // Salvage by re-discovering.
                    self.buffer_and_discover(data, now, out);
                } else {
                    self.stats.data_dropped_link += 1;
                    out.push(RoutingAction::DataDropped {
                        packet: data,
                        reason: DataDropReason::LinkFailure,
                    });
                }
            }
            // A unicast RREP that exhausted its MAC retries is a lost
            // route answer; count it with the other RREP losses (this was
            // previously a silent drop).
            Some(Packet::Rrep(rrep)) => {
                self.stats.rrep_dropped += 1;
                self.tel.emit(
                    now,
                    EventKind::RrepDrop {
                        origin: rrep.origin.0,
                        target: rrep.target.0,
                    },
                );
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// A timer armed via [`RoutingAction::SetTimer`] fired.
    pub fn on_timer(
        &mut self,
        timer: RoutingTimer,
        cross: &CrossLayer,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        match timer {
            RoutingTimer::DiscoveryRetry { target, gen } => {
                self.on_discovery_timeout(target, gen, now, out)
            }
            RoutingTimer::RadAssess { key } => {
                if let Some(rreq) = self.deferred.remove(&key) {
                    if self.seen.is_resolved(key) {
                        return;
                    }
                    self.seen.resolve(key);
                    let copies = self.seen.copies(key);
                    if self.policy.assess(&rreq, copies, &mut self.rng) {
                        // Context at assessment time, sender unknown now.
                        let ctx = self.rreq_context(key.origin, copies, cross, now);
                        let fwd = self.prepare_forward(rreq, &ctx);
                        self.stats.rreq_forwarded += 1;
                        self.tel.emit(
                            now,
                            EventKind::RreqForward {
                                origin: key.origin.0,
                                id: key.id,
                            },
                        );
                        out.push(RoutingAction::Broadcast {
                            packet: Packet::Rreq(fwd),
                            delay: SimDuration::ZERO,
                        });
                    } else {
                        self.stats.rreq_suppressed += 1;
                        self.tel.emit(
                            now,
                            EventKind::RreqSuppress {
                                origin: key.origin.0,
                                id: key.id,
                            },
                        );
                    }
                }
            }
            RoutingTimer::Hello => {
                self.hello_seq = self.hello_seq.wrapping_add(1);
                self.stats.hello_sent += 1;
                self.tel.emit(
                    now,
                    EventKind::HelloSend {
                        seq: self.hello_seq,
                    },
                );
                let hello = Hello {
                    seq: self.hello_seq,
                    load: cross.own_load,
                    velocity: cross.own_velocity,
                };
                // Small jitter so neighbours do not collide beacon-on-beacon.
                let jitter = SimDuration(self.rng.below(10_000_000)); // ≤ 10 ms
                out.push(RoutingAction::Broadcast {
                    packet: Packet::Hello(hello),
                    delay: jitter,
                });
                out.push(RoutingAction::SetTimer {
                    timer: RoutingTimer::Hello,
                    at: now + self.config.hello_interval,
                });
            }
            RoutingTimer::Sweep => {
                self.table.sweep(now);
                self.seen.sweep(now);
                self.answered.retain(|k, _| self.seen.copies(*k) > 0);
                let gone = self.neighbors.sweep(now);
                let mut all_broken = Vec::new();
                for n in gone {
                    all_broken.extend(self.table.break_link(n));
                }
                if !all_broken.is_empty() {
                    self.stats.rerr_sent += 1;
                    self.tel.emit(
                        now,
                        EventKind::RerrSend {
                            count: all_broken.len() as u32,
                        },
                    );
                    out.push(RoutingAction::Broadcast {
                        packet: Packet::Rerr(Rerr {
                            unreachable: all_broken,
                        }),
                        delay: SimDuration::ZERO,
                    });
                }
                out.push(RoutingAction::SetTimer {
                    timer: RoutingTimer::Sweep,
                    at: now + self.config.sweep_interval,
                });
            }
        }
    }

    fn on_discovery_timeout(
        &mut self,
        target: NodeId,
        gen: u64,
        now: SimTime,
        out: &mut Vec<RoutingAction>,
    ) {
        let Some(p) = self.pending.get_mut(&target) else {
            return; // already succeeded
        };
        if p.gen != gen {
            return; // stale timer
        }
        // The route may have appeared through other traffic.
        if self.table.valid_route(target, now).is_some() {
            let mut p = self.pending.remove(&target).expect("checked above");
            self.stats.discoveries_succeeded += 1;
            while let Some(data) = p.buffer.pop_front() {
                if let Some(e) = self.table.valid_route(data.dst, now) {
                    let next_hop = e.next_hop;
                    out.push(RoutingAction::Unicast {
                        packet: Packet::Data(data),
                        next_hop,
                    });
                } else {
                    // Defensive: the buffer is keyed by `target == dst`, so
                    // this branch should be unreachable — but a buffered
                    // packet must never vanish without a counted drop.
                    self.stats.data_dropped_discovery += 1;
                    out.push(RoutingAction::DataDropped {
                        packet: data,
                        reason: DataDropReason::DiscoveryFailed,
                    });
                }
            }
            return;
        }
        if p.retries >= self.config.rreq_retries {
            let p = self.pending.remove(&target).expect("checked above");
            self.stats.discoveries_failed += 1;
            for data in p.buffer {
                self.stats.data_dropped_discovery += 1;
                out.push(RoutingAction::DataDropped {
                    packet: data,
                    reason: DataDropReason::DiscoveryFailed,
                });
            }
            return;
        }
        p.retries += 1;
        let retry = p.retries;
        self.discovery_gen += 1;
        let gen = self.discovery_gen;
        p.gen = gen;
        self.emit_rreq(target, retry, now, out);
        out.push(RoutingAction::SetTimer {
            timer: RoutingTimer::DiscoveryRetry { target, gen },
            at: now + self.config.timeout_for_attempt(retry),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Flooding;
    use wmn_sim::SimTime;

    fn engine(me: u32) -> Routing {
        Routing::new(
            NodeId(me),
            RoutingConfig::default(),
            Box::new(Flooding::new()),
            SimRng::new(me as u64 + 1),
        )
    }

    fn data(src: u32, dst: u32) -> DataPacket {
        DataPacket {
            flow: crate::packet::FlowId(1),
            seq: 0,
            src: NodeId(src),
            dst: NodeId(dst),
            payload: 512,
            created: SimTime::ZERO,
        }
    }

    fn cross() -> CrossLayer {
        CrossLayer::default()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn find_rreq(out: &[RoutingAction]) -> Option<Rreq> {
        out.iter().find_map(|a| match a {
            RoutingAction::Broadcast {
                packet: Packet::Rreq(r),
                ..
            } => Some(*r),
            _ => None,
        })
    }

    #[test]
    fn start_arms_hello_and_sweep() {
        let mut r = engine(0);
        let mut out = Vec::new();
        r.start(t(0), &mut out);
        let timers: Vec<_> = out
            .iter()
            .filter(|a| matches!(a, RoutingAction::SetTimer { .. }))
            .collect();
        assert_eq!(timers.len(), 2);
    }

    #[test]
    fn send_without_route_starts_discovery() {
        let mut r = engine(0);
        let mut out = Vec::new();
        r.send_data(data(0, 9), t(0), &mut out);
        let rreq = find_rreq(&out).expect("rreq broadcast");
        assert_eq!(rreq.target, NodeId(9));
        assert_eq!(rreq.hop_count, 0);
        assert_eq!(rreq.key.origin, NodeId(0));
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::SetTimer {
                timer: RoutingTimer::DiscoveryRetry { .. },
                ..
            }
        )));
        assert_eq!(r.stats().discoveries_started, 1);
        // Second packet buffers without a second RREQ.
        out.clear();
        r.send_data(data(0, 9), t(10), &mut out);
        assert!(find_rreq(&out).is_none());
    }

    #[test]
    fn intermediate_forwards_rreq_and_installs_reverse_route() {
        let mut r = engine(5);
        let mut out = Vec::new();
        let rreq = Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 3,
            target: NodeId(9),
            target_seq: None,
            hop_count: 1,
            path_load: 0.0,
            ttl: 30,
        };
        r.on_packet(Packet::Rreq(rreq), NodeId(2), &cross(), t(0), &mut out);
        let fwd = find_rreq(&out).expect("forwarded");
        assert_eq!(fwd.hop_count, 2);
        assert_eq!(fwd.ttl, 29);
        // Reverse route to origin via the sender.
        let e = r
            .table()
            .valid_route(NodeId(0), t(1))
            .expect("reverse route");
        assert_eq!(e.next_hop, NodeId(2));
        assert_eq!(e.hop_count, 2);
        // Duplicate is not forwarded again.
        out.clear();
        r.on_packet(Packet::Rreq(rreq), NodeId(3), &cross(), t(1), &mut out);
        assert!(find_rreq(&out).is_none());
        assert_eq!(r.stats().rreq_duplicates, 1);
    }

    #[test]
    fn target_answers_with_rrep() {
        let mut r = engine(9);
        let mut out = Vec::new();
        let rreq = Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 3,
            target: NodeId(9),
            target_seq: None,
            hop_count: 2,
            path_load: 0.0,
            ttl: 28,
        };
        r.on_packet(Packet::Rreq(rreq), NodeId(4), &cross(), t(0), &mut out);
        let rrep = out
            .iter()
            .find_map(|a| match a {
                RoutingAction::Unicast {
                    packet: Packet::Rrep(p),
                    next_hop,
                } => Some((*p, *next_hop)),
                _ => None,
            })
            .expect("rrep");
        assert_eq!(rrep.0.origin, NodeId(0));
        assert_eq!(rrep.0.target, NodeId(9));
        assert_eq!(rrep.0.hop_count, 0);
        assert_eq!(rrep.1, NodeId(4));
        // The target does not rebroadcast.
        assert!(find_rreq(&out).is_none());
        assert_eq!(r.stats().rrep_generated, 1);
    }

    #[test]
    fn full_discovery_round_trip_flushes_buffer() {
        let mut origin = engine(0);
        let mut out = Vec::new();
        origin.send_data(data(0, 9), t(0), &mut out);
        out.clear();
        // An RREP arrives from neighbour 4 describing a 3-hop route.
        let rrep = Rrep {
            origin: NodeId(0),
            target: NodeId(9),
            target_seq: 5,
            hop_count: 2,
            path_load: 0.0,
        };
        origin.on_packet(Packet::Rrep(rrep), NodeId(4), &cross(), t(50), &mut out);
        // The buffered packet goes out via node 4.
        let sent = out
            .iter()
            .find_map(|a| match a {
                RoutingAction::Unicast {
                    packet: Packet::Data(d),
                    next_hop,
                } => Some((*d, *next_hop)),
                _ => None,
            })
            .expect("data flushed");
        assert_eq!(sent.1, NodeId(4));
        assert_eq!(sent.0.dst, NodeId(9));
        assert_eq!(origin.stats().discoveries_succeeded, 1);
        // Subsequent sends use the route directly.
        out.clear();
        origin.send_data(data(0, 9), t(60), &mut out);
        assert!(find_rreq(&out).is_none());
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::Unicast {
                packet: Packet::Data(_),
                ..
            }
        )));
    }

    #[test]
    fn rrep_forwarded_along_reverse_route() {
        let mut mid = engine(5);
        let mut out = Vec::new();
        // Establish the reverse route via an RREQ from origin 0 through 2.
        let rreq = Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 3,
            target: NodeId(9),
            target_seq: None,
            hop_count: 1,
            path_load: 0.0,
            ttl: 30,
        };
        mid.on_packet(Packet::Rreq(rreq), NodeId(2), &cross(), t(0), &mut out);
        out.clear();
        // The RREP comes back from node 7 (towards target 9).
        let rrep = Rrep {
            origin: NodeId(0),
            target: NodeId(9),
            target_seq: 5,
            hop_count: 0,
            path_load: 0.0,
        };
        mid.on_packet(Packet::Rrep(rrep), NodeId(7), &cross(), t(10), &mut out);
        let (fwd, nh) = out
            .iter()
            .find_map(|a| match a {
                RoutingAction::Unicast {
                    packet: Packet::Rrep(p),
                    next_hop,
                } => Some((*p, *next_hop)),
                _ => None,
            })
            .expect("rrep forwarded");
        assert_eq!(nh, NodeId(2));
        assert_eq!(fwd.hop_count, 1);
        // Forward route to 9 installed via 7.
        assert_eq!(
            mid.table().valid_route(NodeId(9), t(11)).unwrap().next_hop,
            NodeId(7)
        );
    }

    #[test]
    fn data_forwarding_and_delivery() {
        let mut mid = engine(5);
        let mut out = Vec::new();
        // Install a route to 9 via 7 (via an RREP).
        let rrep = Rrep {
            origin: NodeId(0),
            target: NodeId(9),
            target_seq: 5,
            hop_count: 0,
            path_load: 0.0,
        };
        mid.on_packet(Packet::Rrep(rrep), NodeId(7), &cross(), t(0), &mut out);
        out.clear();
        mid.on_packet(
            Packet::Data(data(0, 9)),
            NodeId(2),
            &cross(),
            t(1),
            &mut out,
        );
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::Unicast { packet: Packet::Data(_), next_hop } if *next_hop == NodeId(7)
        )));
        assert_eq!(mid.stats().data_forwarded, 1);
        // Delivery at the destination.
        let mut dst = engine(9);
        out.clear();
        dst.on_packet(
            Packet::Data(data(0, 9)),
            NodeId(5),
            &cross(),
            t(2),
            &mut out,
        );
        assert!(out.iter().any(|a| matches!(a, RoutingAction::Deliver(_))));
        assert_eq!(dst.stats().data_delivered, 1);
    }

    #[test]
    fn no_route_triggers_rerr_and_drop() {
        let mut mid = engine(5);
        let mut out = Vec::new();
        mid.on_packet(
            Packet::Data(data(0, 9)),
            NodeId(2),
            &cross(),
            t(0),
            &mut out,
        );
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::DataDropped {
                reason: DataDropReason::NoRoute,
                ..
            }
        )));
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::Broadcast {
                packet: Packet::Rerr(_),
                ..
            }
        )));
    }

    #[test]
    fn discovery_retries_then_fails() {
        let mut r = engine(0);
        let mut out = Vec::new();
        r.send_data(data(0, 9), t(0), &mut out);
        let mut timers: Vec<(RoutingTimer, SimTime)> = out
            .iter()
            .filter_map(|a| match a {
                RoutingAction::SetTimer { timer, at } => Some((*timer, *at)),
                _ => None,
            })
            .collect();
        let mut rreqs = 1;
        let mut drops = 0;
        // Fire discovery timers until the engine gives up.
        while let Some((timer, at)) = timers.pop() {
            out.clear();
            r.on_timer(timer, &cross(), at, &mut out);
            rreqs += find_rreq(&out).is_some() as u32;
            drops += out
                .iter()
                .filter(|a| matches!(a, RoutingAction::DataDropped { .. }))
                .count();
            timers.extend(out.iter().filter_map(|a| match a {
                RoutingAction::SetTimer {
                    timer: t2 @ RoutingTimer::DiscoveryRetry { .. },
                    at,
                } => Some((*t2, *at)),
                _ => None,
            }));
        }
        assert_eq!(rreqs, 3, "1 initial + 2 retries");
        assert_eq!(drops, 1, "buffered packet dropped at failure");
        assert_eq!(r.stats().discoveries_failed, 1);
    }

    #[test]
    fn stale_discovery_timer_ignored_after_success() {
        let mut r = engine(0);
        let mut out = Vec::new();
        r.send_data(data(0, 9), t(0), &mut out);
        let (timer, at) = out
            .iter()
            .find_map(|a| match a {
                RoutingAction::SetTimer {
                    timer: t2 @ RoutingTimer::DiscoveryRetry { .. },
                    at,
                } => Some((*t2, *at)),
                _ => None,
            })
            .unwrap();
        // Discovery succeeds before the timer.
        let rrep = Rrep {
            origin: NodeId(0),
            target: NodeId(9),
            target_seq: 5,
            hop_count: 1,
            path_load: 0.0,
        };
        out.clear();
        r.on_packet(Packet::Rrep(rrep), NodeId(4), &cross(), t(100), &mut out);
        out.clear();
        r.on_timer(timer, &cross(), at, &mut out);
        assert!(out.is_empty(), "stale timer acted: {out:?}");
    }

    #[test]
    fn link_failure_breaks_routes_and_salvages_own_data() {
        let mut r = engine(0);
        let mut out = Vec::new();
        // Install a route to 9 via 4 and use it.
        let rrep = Rrep {
            origin: NodeId(0),
            target: NodeId(9),
            target_seq: 5,
            hop_count: 1,
            path_load: 0.0,
        };
        r.on_packet(Packet::Rrep(rrep), NodeId(4), &cross(), t(0), &mut out);
        out.clear();
        r.on_link_failure(NodeId(4), Some(Packet::Data(data(0, 9))), t(10), &mut out);
        // RERR broadcast + fresh discovery for the salvaged packet.
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::Broadcast {
                packet: Packet::Rerr(_),
                ..
            }
        )));
        assert!(find_rreq(&out).is_some(), "salvage re-discovers");
        assert!(r.table().valid_route(NodeId(9), t(11)).is_none());
    }

    #[test]
    fn transit_data_dropped_on_link_failure() {
        let mut r = engine(5);
        let mut out = Vec::new();
        r.on_link_failure(NodeId(4), Some(Packet::Data(data(0, 9))), t(10), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::DataDropped {
                reason: DataDropReason::LinkFailure,
                ..
            }
        )));
        assert_eq!(r.stats().data_dropped_link, 1);
    }

    #[test]
    fn rerr_propagates_only_for_affected_routes() {
        let mut r = engine(5);
        let mut out = Vec::new();
        // Route to 9 via 4.
        let rrep = Rrep {
            origin: NodeId(0),
            target: NodeId(9),
            target_seq: 5,
            hop_count: 1,
            path_load: 0.0,
        };
        r.on_packet(Packet::Rrep(rrep), NodeId(4), &cross(), t(0), &mut out);
        out.clear();
        // RERR from node 4 about 9 → we invalidate and propagate.
        let rerr = Rerr {
            unreachable: vec![(NodeId(9), 6)],
        };
        r.on_packet(
            Packet::Rerr(rerr.clone()),
            NodeId(4),
            &cross(),
            t(1),
            &mut out,
        );
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::Broadcast {
                packet: Packet::Rerr(_),
                ..
            }
        )));
        assert!(r.table().valid_route(NodeId(9), t(2)).is_none());
        // RERR from an unrelated node → nothing.
        out.clear();
        r.on_packet(Packet::Rerr(rerr), NodeId(8), &cross(), t(3), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hello_updates_neighbors_and_one_hop_route() {
        let mut r = engine(0);
        let mut out = Vec::new();
        let hello = Hello {
            seq: 1,
            load: LoadDigest {
                queue_util: 0.4,
                busy_ratio: 0.2,
                mac_service_s: 0.0,
            },
            velocity: (1.0, 0.0),
        };
        r.on_packet(Packet::Hello(hello), NodeId(3), &cross(), t(0), &mut out);
        assert_eq!(r.neighbors().live_count(t(1)), 1);
        let e = r.table().valid_route(NodeId(3), t(1)).unwrap();
        assert_eq!(e.next_hop, NodeId(3));
        assert_eq!(e.hop_count, 1);
    }

    #[test]
    fn hello_timer_emits_beacon_and_rearms() {
        let mut r = engine(0);
        let mut out = Vec::new();
        r.on_timer(RoutingTimer::Hello, &cross(), t(1000), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::Broadcast {
                packet: Packet::Hello(_),
                ..
            }
        )));
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::SetTimer { timer: RoutingTimer::Hello, at } if *at == t(2000)
        )));
        assert_eq!(r.stats().hello_sent, 1);
    }

    #[test]
    fn sweep_expires_neighbors_and_breaks_their_routes() {
        let mut r = engine(0);
        let mut out = Vec::new();
        let hello = Hello {
            seq: 1,
            load: LoadDigest::default(),
            velocity: (0.0, 0.0),
        };
        r.on_packet(Packet::Hello(hello), NodeId(3), &cross(), t(0), &mut out);
        // Also a 2-hop route via 3.
        let rrep = Rrep {
            origin: NodeId(0),
            target: NodeId(9),
            target_seq: 5,
            hop_count: 1,
            path_load: 0.0,
        };
        r.on_packet(Packet::Rrep(rrep), NodeId(3), &cross(), t(0), &mut out);
        out.clear();
        // 5 s later the neighbour has timed out (3 × 1 s hello).
        r.on_timer(RoutingTimer::Sweep, &cross(), t(5000), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::Broadcast {
                packet: Packet::Rerr(_),
                ..
            }
        )));
        assert!(r.table().valid_route(NodeId(9), t(5001)).is_none());
        assert!(out.iter().any(|a| matches!(
            a,
            RoutingAction::SetTimer {
                timer: RoutingTimer::Sweep,
                ..
            }
        )));
    }

    #[test]
    fn ttl_exhaustion_suppresses() {
        let mut r = engine(5);
        let mut out = Vec::new();
        let rreq = Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 3,
            target: NodeId(9),
            target_seq: None,
            hop_count: 31,
            path_load: 0.0,
            ttl: 1,
        };
        r.on_packet(Packet::Rreq(rreq), NodeId(2), &cross(), t(0), &mut out);
        assert!(find_rreq(&out).is_none());
        assert_eq!(r.stats().rreq_suppressed, 1);
        // Reverse route still learned.
        assert!(r.table().valid_route(NodeId(0), t(1)).is_some());
    }

    #[test]
    fn counter_policy_defers_and_assesses() {
        use crate::policy::CounterBased;
        let mut r = Routing::new(
            NodeId(5),
            RoutingConfig::default(),
            Box::new(CounterBased::new(2, SimDuration::from_millis(8))),
            SimRng::new(3),
        );
        let mut out = Vec::new();
        let rreq = Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 3,
            target: NodeId(9),
            target_seq: None,
            hop_count: 0,
            path_load: 0.0,
            ttl: 30,
        };
        r.on_packet(Packet::Rreq(rreq), NodeId(0), &cross(), t(0), &mut out);
        // Deferred: no broadcast yet, a RAD timer armed.
        assert!(find_rreq(&out).is_none());
        let (timer, at) = out
            .iter()
            .find_map(|a| match a {
                RoutingAction::SetTimer {
                    timer: t2 @ RoutingTimer::RadAssess { .. },
                    at,
                } => Some((*t2, *at)),
                _ => None,
            })
            .expect("rad timer");
        // One duplicate arrives during the RAD (copies = 2 ≥ threshold).
        out.clear();
        r.on_packet(Packet::Rreq(rreq), NodeId(2), &cross(), t(1), &mut out);
        out.clear();
        r.on_timer(timer, &cross(), at, &mut out);
        assert!(find_rreq(&out).is_none(), "suppressed by counter");
        assert_eq!(r.stats().rreq_suppressed, 1);
    }

    #[test]
    fn counter_policy_forwards_when_quiet() {
        use crate::policy::CounterBased;
        let mut r = Routing::new(
            NodeId(5),
            RoutingConfig::default(),
            Box::new(CounterBased::new(3, SimDuration::from_millis(8))),
            SimRng::new(3),
        );
        let mut out = Vec::new();
        let rreq = Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 3,
            target: NodeId(9),
            target_seq: None,
            hop_count: 0,
            path_load: 0.0,
            ttl: 30,
        };
        r.on_packet(Packet::Rreq(rreq), NodeId(0), &cross(), t(0), &mut out);
        let (timer, at) = out
            .iter()
            .find_map(|a| match a {
                RoutingAction::SetTimer {
                    timer: t2 @ RoutingTimer::RadAssess { .. },
                    at,
                } => Some((*t2, *at)),
                _ => None,
            })
            .expect("rad timer");
        out.clear();
        r.on_timer(timer, &cross(), at, &mut out);
        let fwd = find_rreq(&out).expect("forwarded after quiet RAD");
        assert_eq!(fwd.hop_count, 1);
    }
}
