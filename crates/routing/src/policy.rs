//! The pluggable rebroadcast-policy interface and the baseline schemes.
//!
//! Every scheme the paper compares against is expressed as a
//! [`RebroadcastPolicy`]: the AODV engine asks the policy what to do with a
//! freshly received RREQ, and how to cost routes. The CNLR policy itself
//! lives in the `cnlr` crate; this module provides the literature baselines:
//! blind flooding, GOSSIP1(p), GOSSIP1(p, k) and the counter-based scheme.

use crate::packet::Rreq;
use wmn_mac::LoadDigest;
use wmn_sim::{SimDuration, SimRng, SimTime};

/// Everything a policy may condition its decision on. Cross-layer fields
/// (load digests, velocities) are filled in by the node stack; the baselines
/// ignore them, CNLR aggregates them with its own weights.
#[derive(Clone, Copy, Debug)]
pub struct RreqContext {
    /// Current time.
    pub now: SimTime,
    /// Copies of this RREQ received *before* the current one.
    pub prior_copies: u32,
    /// Live 1-hop neighbour count.
    pub neighbor_count: usize,
    /// This node's own MAC load digest.
    pub own_load: LoadDigest,
    /// Mean queue utilisation over live neighbours (from HELLOs), if any.
    pub nbr_mean_queue: Option<f64>,
    /// Mean channel-busy ratio over live neighbours, if any.
    pub nbr_mean_busy: Option<f64>,
    /// This node's velocity, m/s.
    pub own_velocity: (f64, f64),
    /// Velocity advertised by the neighbour the RREQ arrived from, if known.
    pub sender_velocity: Option<(f64, f64)>,
    /// Receive power of the frame carrying this RREQ, dBm (RSSI — the
    /// distance-based scheme's cross-layer signal).
    pub rx_power_dbm: Option<f64>,
}

/// A forwarding decision for a first-copy RREQ.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// Rebroadcast after `jitter` (decorrelates simultaneous rebroadcasts).
    Forward {
        /// Transmit delay.
        jitter: SimDuration,
    },
    /// Never rebroadcast this RREQ.
    Discard,
    /// Re-assess after a random assessment delay (counter-based schemes):
    /// the engine calls [`RebroadcastPolicy::assess`] at `now + delay`.
    Defer {
        /// Assessment delay.
        delay: SimDuration,
    },
}

/// A pluggable route-discovery scheme.
pub trait RebroadcastPolicy: Send {
    /// Decide what to do with the *first copy* of an RREQ. (Duplicates are
    /// counted by the engine and never re-forwarded.)
    fn on_first_copy(&mut self, rreq: &Rreq, ctx: &RreqContext, rng: &mut SimRng) -> Decision;

    /// For [`Decision::Defer`]: final verdict once the assessment delay has
    /// elapsed. `copies` is the total number of copies received by then.
    fn assess(&mut self, rreq: &Rreq, copies: u32, rng: &mut SimRng) -> bool {
        let _ = (rreq, copies, rng);
        true
    }

    /// Amend the RREQ before rebroadcast (CNLR accumulates path load here).
    /// The hop count/TTL bookkeeping is done by the engine.
    fn annotate(&mut self, rreq: &mut Rreq, ctx: &RreqContext) {
        let _ = (rreq, ctx);
    }

    /// The route cost a path with `hop_count` hops and accumulated
    /// `path_load` represents. Lower is better. Baselines use hop count.
    fn route_cost(&self, hop_count: u8, path_load: f64) -> f64 {
        let _ = path_load;
        hop_count as f64
    }

    /// The rebroadcast probability this policy would apply in `ctx` — a
    /// side-effect-free diagnostic mirror of `on_first_copy` for the
    /// telemetry probes (deterministic-forward schemes report 1.0).
    fn forward_probability(&self, ctx: &RreqContext) -> f64 {
        let _ = ctx;
        1.0
    }

    /// The neighbourhood-load estimate this policy derives from `ctx`
    /// (0 for load-blind schemes; CNLR reports its blended index).
    fn load_estimate(&self, ctx: &RreqContext) -> f64 {
        let _ = ctx;
        0.0
    }

    /// Short scheme name for reports.
    fn name(&self) -> &'static str;
}

/// Uniform forwarding jitter used by all schemes, per the broadcast-storm
/// literature (decorrelates neighbours that received the same RREQ).
pub fn draw_jitter(max: SimDuration, rng: &mut SimRng) -> SimDuration {
    SimDuration(rng.below(max.as_nanos().max(1)))
}

/// Blind flooding: every node rebroadcasts every RREQ exactly once
/// (classic AODV discovery; the paper's main baseline).
#[derive(Clone, Debug)]
pub struct Flooding {
    jitter_max: SimDuration,
}

impl Flooding {
    /// Create with the standard 10 ms jitter cap.
    pub fn new() -> Self {
        Flooding {
            jitter_max: SimDuration::from_millis(10),
        }
    }
}

impl Default for Flooding {
    fn default() -> Self {
        Self::new()
    }
}

impl RebroadcastPolicy for Flooding {
    fn on_first_copy(&mut self, _rreq: &Rreq, _ctx: &RreqContext, rng: &mut SimRng) -> Decision {
        Decision::Forward {
            jitter: draw_jitter(self.jitter_max, rng),
        }
    }

    fn name(&self) -> &'static str {
        "flooding"
    }
}

/// GOSSIP1(p): rebroadcast with fixed probability `p`
/// (Haas, Halpern & Li 2002).
#[derive(Clone, Debug)]
pub struct Gossip {
    p: f64,
    jitter_max: SimDuration,
}

impl Gossip {
    /// Fixed forwarding probability `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        Gossip {
            p,
            jitter_max: SimDuration::from_millis(10),
        }
    }
}

impl RebroadcastPolicy for Gossip {
    fn on_first_copy(&mut self, _rreq: &Rreq, _ctx: &RreqContext, rng: &mut SimRng) -> Decision {
        if rng.chance(self.p) {
            Decision::Forward {
                jitter: draw_jitter(self.jitter_max, rng),
            }
        } else {
            Decision::Discard
        }
    }

    fn forward_probability(&self, _ctx: &RreqContext) -> f64 {
        self.p
    }

    fn name(&self) -> &'static str {
        "gossip"
    }
}

/// GOSSIP1(p, k): flood with probability 1 for the first `k` hops (so the
/// gossip never dies near the origin), probability `p` beyond.
#[derive(Clone, Debug)]
pub struct GossipK {
    p: f64,
    k: u8,
    jitter_max: SimDuration,
}

impl GossipK {
    /// `p` beyond hop `k`, certainty within.
    pub fn new(p: f64, k: u8) -> Self {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        GossipK {
            p,
            k,
            jitter_max: SimDuration::from_millis(10),
        }
    }
}

impl RebroadcastPolicy for GossipK {
    fn on_first_copy(&mut self, rreq: &Rreq, _ctx: &RreqContext, rng: &mut SimRng) -> Decision {
        let forward = rreq.hop_count < self.k || rng.chance(self.p);
        if forward {
            Decision::Forward {
                jitter: draw_jitter(self.jitter_max, rng),
            }
        } else {
            Decision::Discard
        }
    }

    fn forward_probability(&self, _ctx: &RreqContext) -> f64 {
        // Beyond the certainty radius (the steady-state regime).
        self.p
    }

    fn name(&self) -> &'static str {
        "gossip-k"
    }
}

/// Counter-based scheme (Ni et al.; Bani-Yassein et al. variants): defer a
/// random assessment delay; forward only if fewer than `threshold` copies
/// have been overheard by then (many copies ⇒ the neighbourhood is already
/// covered).
#[derive(Clone, Debug)]
pub struct CounterBased {
    threshold: u32,
    rad_max: SimDuration,
}

impl CounterBased {
    /// Suppress when `threshold` or more copies were heard within the RAD.
    pub fn new(threshold: u32, rad_max: SimDuration) -> Self {
        assert!(threshold >= 1);
        CounterBased { threshold, rad_max }
    }
}

impl RebroadcastPolicy for CounterBased {
    fn on_first_copy(&mut self, _rreq: &Rreq, _ctx: &RreqContext, rng: &mut SimRng) -> Decision {
        Decision::Defer {
            delay: draw_jitter(self.rad_max, rng),
        }
    }

    fn assess(&mut self, _rreq: &Rreq, copies: u32, _rng: &mut SimRng) -> bool {
        copies < self.threshold
    }

    fn name(&self) -> &'static str {
        "counter"
    }
}

/// Distance-based scheme (Ni et al.): a copy heard at high power came from
/// a nearby sender, so rebroadcasting adds little extra coverage — suppress
/// it. Distance is inferred from RSSI: rebroadcast only when the first copy
/// arrived *below* `strong_dbm`.
#[derive(Clone, Debug)]
pub struct DistanceBased {
    strong_dbm: f64,
    jitter_max: SimDuration,
}

impl DistanceBased {
    /// Suppress first copies stronger than `strong_dbm` (a value between
    /// the receive threshold and the near-field power; −75 dBm ≈ 60 %
    /// of nominal range under the classic two-ray calibration).
    pub fn new(strong_dbm: f64) -> Self {
        DistanceBased {
            strong_dbm,
            jitter_max: SimDuration::from_millis(10),
        }
    }
}

impl RebroadcastPolicy for DistanceBased {
    fn on_first_copy(&mut self, _rreq: &Rreq, ctx: &RreqContext, rng: &mut SimRng) -> Decision {
        match ctx.rx_power_dbm {
            // Strong signal ⇒ close sender ⇒ little extra coverage.
            Some(p) if p > self.strong_dbm => Decision::Discard,
            // Weak/unknown signal ⇒ border node ⇒ forward.
            _ => Decision::Forward {
                jitter: draw_jitter(self.jitter_max, rng),
            },
        }
    }

    fn name(&self) -> &'static str {
        "distance"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NodeId;
    use crate::packet::RreqKey;

    fn rreq(hops: u8) -> Rreq {
        Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 1,
            target: NodeId(9),
            target_seq: None,
            hop_count: hops,
            path_load: 0.0,
            ttl: 30,
        }
    }

    fn ctx() -> RreqContext {
        RreqContext {
            now: SimTime::ZERO,
            prior_copies: 0,
            neighbor_count: 8,
            own_load: LoadDigest::default(),
            nbr_mean_queue: None,
            nbr_mean_busy: None,
            own_velocity: (0.0, 0.0),
            sender_velocity: None,
            rx_power_dbm: None,
        }
    }

    #[test]
    fn flooding_always_forwards_with_bounded_jitter() {
        let mut p = Flooding::new();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            match p.on_first_copy(&rreq(2), &ctx(), &mut rng) {
                Decision::Forward { jitter } => {
                    assert!(jitter < SimDuration::from_millis(10));
                }
                other => panic!("flooding produced {other:?}"),
            }
        }
        assert_eq!(p.name(), "flooding");
    }

    #[test]
    fn gossip_matches_probability() {
        let mut p = Gossip::new(0.6);
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let fwd = (0..n)
            .filter(|_| {
                matches!(
                    p.on_first_copy(&rreq(2), &ctx(), &mut rng),
                    Decision::Forward { .. }
                )
            })
            .count();
        let frac = fwd as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.02, "forwarded {frac}");
    }

    #[test]
    fn gossip_extremes() {
        let mut rng = SimRng::new(3);
        let mut p0 = Gossip::new(0.0);
        let mut p1 = Gossip::new(1.0);
        assert_eq!(
            p0.on_first_copy(&rreq(1), &ctx(), &mut rng),
            Decision::Discard
        );
        assert!(matches!(
            p1.on_first_copy(&rreq(1), &ctx(), &mut rng),
            Decision::Forward { .. }
        ));
    }

    #[test]
    fn gossip_k_floods_near_origin() {
        let mut p = GossipK::new(0.0, 3);
        let mut rng = SimRng::new(4);
        // Inside k hops: always forward even with p = 0.
        for h in 0..3 {
            assert!(matches!(
                p.on_first_copy(&rreq(h), &ctx(), &mut rng),
                Decision::Forward { .. }
            ));
        }
        // Beyond: never (p = 0).
        assert_eq!(
            p.on_first_copy(&rreq(3), &ctx(), &mut rng),
            Decision::Discard
        );
    }

    #[test]
    fn counter_defers_then_thresholds() {
        let mut p = CounterBased::new(3, SimDuration::from_millis(10));
        let mut rng = SimRng::new(5);
        assert!(matches!(
            p.on_first_copy(&rreq(2), &ctx(), &mut rng),
            Decision::Defer { .. }
        ));
        assert!(p.assess(&rreq(2), 1, &mut rng));
        assert!(p.assess(&rreq(2), 2, &mut rng));
        assert!(!p.assess(&rreq(2), 3, &mut rng));
        assert!(!p.assess(&rreq(2), 7, &mut rng));
    }

    #[test]
    fn default_route_cost_is_hops() {
        let p = Flooding::new();
        assert_eq!(p.route_cost(4, 0.9), 4.0);
        assert_eq!(p.route_cost(0, 0.0), 0.0);
    }

    #[test]
    fn default_annotate_is_noop() {
        let mut p = Gossip::new(0.5);
        let mut r = rreq(2);
        let before = r;
        p.annotate(&mut r, &ctx());
        assert_eq!(r, before);
    }

    #[test]
    fn distance_based_uses_rssi() {
        let mut p = DistanceBased::new(-75.0);
        let mut rng = SimRng::new(7);
        let mut near = ctx();
        near.rx_power_dbm = Some(-60.0);
        assert_eq!(
            p.on_first_copy(&rreq(1), &near, &mut rng),
            Decision::Discard
        );
        let mut far = ctx();
        far.rx_power_dbm = Some(-85.0);
        assert!(matches!(
            p.on_first_copy(&rreq(1), &far, &mut rng),
            Decision::Forward { .. }
        ));
        // Unknown RSSI: forward (safe default).
        assert!(matches!(
            p.on_first_copy(&rreq(1), &ctx(), &mut rng),
            Decision::Forward { .. }
        ));
        assert_eq!(p.name(), "distance");
    }

    #[test]
    fn jitter_draw_handles_zero_cap() {
        let mut rng = SimRng::new(6);
        let j = draw_jitter(SimDuration::ZERO, &mut rng);
        assert_eq!(j, SimDuration::ZERO);
    }
}
