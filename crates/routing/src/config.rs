//! Routing-engine configuration (AODV constants, RFC 3561 era defaults).

use wmn_sim::SimDuration;

/// Tunables of the reactive routing engine, identical across schemes so
/// that comparisons isolate the rebroadcast policy.
#[derive(Clone, Debug)]
pub struct RoutingConfig {
    /// Maximum additional discovery attempts after the first (RREQ_RETRIES).
    pub rreq_retries: u32,
    /// Base wait for a route reply; doubles per retry (NET_TRAVERSAL_TIME).
    pub rreq_timeout: SimDuration,
    /// Initial TTL on RREQs (fixed; no expanding-ring search so that
    /// overhead comparisons across schemes are not confounded).
    pub rreq_ttl: u8,
    /// Active-route lifetime, refreshed on every use.
    pub route_lifetime: SimDuration,
    /// Duplicate-cache lifetime (PATH_DISCOVERY_TIME).
    pub seen_lifetime: SimDuration,
    /// HELLO beacon interval.
    pub hello_interval: SimDuration,
    /// Neighbour considered lost after this silence
    /// (ALLOWED_HELLO_LOSS × hello_interval).
    pub neighbor_timeout: SimDuration,
    /// Table/cache sweep cadence.
    pub sweep_interval: SimDuration,
    /// Data packets buffered per destination while discovering.
    pub buffer_capacity: usize,
    /// Whether intermediate nodes with fresh routes may answer RREQs
    /// (off = destination-only, the setting used for overhead studies).
    pub intermediate_reply: bool,
    /// Expanding-ring search (RFC 3561 §6.4): first RREQ goes out with
    /// `ring_start_ttl`, each retry adds `ring_increment` until
    /// `ring_threshold`, beyond which the full `rreq_ttl` is used. Off by
    /// default so that overhead comparisons across schemes are not
    /// confounded; the ablation harness switches it on.
    pub expanding_ring: bool,
    /// Initial ring TTL.
    pub ring_start_ttl: u8,
    /// Ring growth per retry.
    pub ring_increment: u8,
    /// Ring ceiling before jumping to the full TTL.
    pub ring_threshold: u8,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        let hello = SimDuration::from_secs(1);
        RoutingConfig {
            rreq_retries: 2,
            rreq_timeout: SimDuration::from_millis(1000),
            rreq_ttl: 32,
            route_lifetime: SimDuration::from_secs(10),
            seen_lifetime: SimDuration::from_secs(5),
            hello_interval: hello,
            neighbor_timeout: hello * 3,
            sweep_interval: SimDuration::from_millis(500),
            buffer_capacity: 64,
            intermediate_reply: false,
            expanding_ring: false,
            ring_start_ttl: 2,
            ring_increment: 2,
            ring_threshold: 7,
        }
    }
}

impl RoutingConfig {
    /// Discovery timeout for attempt `retry` (0-based): binary backoff.
    pub fn timeout_for_attempt(&self, retry: u32) -> SimDuration {
        self.rreq_timeout * (1u64 << retry.min(6))
    }

    /// The TTL for discovery attempt `retry` (0-based) under the current
    /// ring policy.
    pub fn ttl_for_attempt(&self, retry: u32) -> u8 {
        if !self.expanding_ring {
            return self.rreq_ttl;
        }
        let ttl = self
            .ring_start_ttl
            .saturating_add(self.ring_increment.saturating_mul(retry.min(255) as u8));
        if ttl > self.ring_threshold {
            self.rreq_ttl
        } else {
            ttl.min(self.rreq_ttl)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_consistent() {
        let c = RoutingConfig::default();
        assert_eq!(c.neighbor_timeout, c.hello_interval * 3);
        assert!(c.seen_lifetime < c.route_lifetime);
        assert!(!c.intermediate_reply);
    }

    #[test]
    fn ring_ttl_schedule() {
        let mut c = RoutingConfig::default();
        assert_eq!(c.ttl_for_attempt(0), c.rreq_ttl, "ring off by default");
        c.expanding_ring = true;
        assert_eq!(c.ttl_for_attempt(0), 2);
        assert_eq!(c.ttl_for_attempt(1), 4);
        assert_eq!(c.ttl_for_attempt(2), 6);
        // 8 > threshold 7 → full TTL.
        assert_eq!(c.ttl_for_attempt(3), c.rreq_ttl);
        assert_eq!(c.ttl_for_attempt(200), c.rreq_ttl);
    }

    #[test]
    fn timeout_backoff() {
        let c = RoutingConfig::default();
        assert_eq!(c.timeout_for_attempt(0), SimDuration::from_secs(1));
        assert_eq!(c.timeout_for_attempt(1), SimDuration::from_secs(2));
        assert_eq!(c.timeout_for_attempt(2), SimDuration::from_secs(4));
        // Clamped exponent guards against overflow.
        assert_eq!(c.timeout_for_attempt(40), SimDuration::from_secs(64));
    }
}
