//! Property-based tests of routing-table and duplicate-cache invariants.

use proptest::prelude::*;
use wmn_routing::table::seq_newer;
use wmn_routing::{NodeId, RouteTable, RreqKey, SeenCache};
use wmn_sim::{SimDuration, SimTime};

proptest! {
    /// After any sequence of offers/breaks/sweeps, a valid route is never
    /// expired and never points through a broken link that was not
    /// re-offered.
    #[test]
    fn route_table_invariants(
        ops in prop::collection::vec(
            (0u8..4, 0u32..6, 0u32..6, 0u32..40, 0u64..30), 0..120),
    ) {
        let mut rt = RouteTable::new();
        let life = SimDuration::from_secs(3);
        let mut now = SimTime::ZERO;
        for (op, dst, via, seq, dt) in ops {
            now += SimDuration::from_millis(dt * 100);
            let dst = NodeId(dst);
            let via = NodeId(via);
            match op {
                0 => { rt.offer(dst, via, 2, seq, 2.0, life, now); }
                1 => { rt.break_link(via); }
                2 => { rt.sweep(now); }
                _ => { rt.refresh(dst, life, now); }
            }
            // Invariant: valid_route() results are valid and unexpired.
            for probe in 0..6u32 {
                if let Some(e) = rt.valid_route(NodeId(probe), now) {
                    prop_assert!(e.valid);
                    prop_assert!(e.expires > now);
                }
            }
        }
    }

    /// Sequence-number ordering is a strict total order on distinct values
    /// within half the wrap range.
    #[test]
    fn seq_newer_antisymmetric(a in any::<u32>(), delta in 1u32..(u32::MAX / 2)) {
        let b = a.wrapping_add(delta);
        prop_assert!(seq_newer(b, a));
        prop_assert!(!seq_newer(a, b));
        prop_assert!(!seq_newer(a, a));
    }

    /// The seen cache counts copies exactly and sweeps strictly by first
    /// reception time.
    #[test]
    fn seen_cache_counts(
        records in prop::collection::vec((0u32..8, 0u64..100), 0..100),
    ) {
        let mut cache = SeenCache::new(SimDuration::from_secs(5));
        let mut model: std::collections::HashMap<u32, u32> = Default::default();
        for (id, t_ms) in records {
            let key = RreqKey { origin: NodeId(1), id };
            let prior = cache.record(key, SimTime::from_millis(t_ms));
            let m = model.entry(id).or_insert(0);
            prop_assert_eq!(prior, *m);
            *m += 1;
            prop_assert_eq!(cache.copies(key), *m);
        }
    }
}
