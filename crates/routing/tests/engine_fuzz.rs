//! Fuzzing the routing engine with random packet/timer/link-event scripts.
//!
//! The engine must never panic, and its actions must satisfy basic sanity
//! for any input interleaving: unicasts go to real neighbours-ish ids,
//! forwarded RREQs always have decremented TTL and incremented hop count,
//! and timers are never armed in the past.

use proptest::prelude::*;
use wmn_mac::LoadDigest;
use wmn_routing::{
    CounterBased, CrossLayer, DataPacket, Flooding, FlowId, Gossip, Hello, NodeId, Packet, Rerr,
    Routing, RoutingAction, RoutingConfig, RoutingTimer, Rrep, Rreq, RreqKey,
};
use wmn_sim::{SimDuration, SimRng, SimTime};

fn make_packet(op: u8, rng: &mut SimRng, now: SimTime) -> Packet {
    let node = |r: &mut SimRng| NodeId(r.below(8) as u32);
    match op % 5 {
        0 => Packet::Rreq(Rreq {
            key: RreqKey {
                origin: node(rng),
                id: rng.below(6) as u32,
            },
            origin_seq: rng.below(100) as u32,
            target: node(rng),
            target_seq: (rng.chance(0.5)).then(|| rng.below(100) as u32),
            hop_count: rng.below(30) as u8,
            path_load: rng.f64() * 5.0,
            ttl: 1 + rng.below(32) as u8,
        }),
        1 => Packet::Rrep(Rrep {
            origin: node(rng),
            target: node(rng),
            target_seq: rng.below(100) as u32,
            hop_count: rng.below(30) as u8,
            path_load: rng.f64() * 5.0,
        }),
        2 => Packet::Rerr(Rerr {
            unreachable: (0..rng.below(4))
                .map(|_| (node(rng), rng.below(100) as u32))
                .collect(),
        }),
        3 => Packet::Hello(Hello {
            seq: rng.below(1000) as u32,
            load: LoadDigest {
                queue_util: rng.f64(),
                busy_ratio: rng.f64(),
                mac_service_s: rng.f64() * 0.1,
            },
            velocity: (rng.range_f64(-20.0, 20.0), rng.range_f64(-20.0, 20.0)),
        }),
        _ => Packet::Data(DataPacket {
            flow: FlowId(rng.below(4) as u32),
            seq: rng.below(1000) as u32,
            src: node(rng),
            dst: node(rng),
            payload: 512,
            created: now,
        }),
    }
}

fn check_actions(me: NodeId, now: SimTime, actions: &[RoutingAction]) -> Result<(), TestCaseError> {
    for a in actions {
        match a {
            RoutingAction::Unicast { next_hop, .. } => {
                prop_assert_ne!(*next_hop, me, "self next hop");
                prop_assert!(!next_hop.is_broadcast(), "broadcast next hop");
            }
            RoutingAction::Broadcast {
                packet: Packet::Rreq(r),
                ..
            } => {
                prop_assert!(r.ttl >= 1, "forwarded dead RREQ");
            }
            RoutingAction::SetTimer { at, .. } => {
                prop_assert!(*at >= now, "timer in the past");
            }
            _ => {}
        }
    }
    Ok(())
}

fn run_script(policy_sel: u8, seed: u64, script: Vec<(u8, u8, u64)>) -> Result<(), TestCaseError> {
    let me = NodeId(0);
    let policy: Box<dyn wmn_routing::RebroadcastPolicy> = match policy_sel % 3 {
        0 => Box::new(Flooding::new()),
        1 => Box::new(Gossip::new(0.6)),
        _ => Box::new(CounterBased::new(2, SimDuration::from_millis(10))),
    };
    let mut engine = Routing::new(me, RoutingConfig::default(), policy, SimRng::new(seed));
    let mut rng = SimRng::new(seed ^ 0xABCD);
    let mut now = SimTime::ZERO;
    let mut out = Vec::new();
    let mut timers: Vec<(RoutingTimer, SimTime)> = Vec::new();
    engine.start(now, &mut out);
    timers.extend(out.iter().filter_map(|a| match a {
        RoutingAction::SetTimer { timer, at } => Some((*timer, *at)),
        _ => None,
    }));
    let cross = CrossLayer::default();

    for (op, sub, dt) in script {
        now += SimDuration::from_micros(1 + dt % 2_000_000);
        out.clear();
        match op % 4 {
            0 => {
                // Receive a random packet from a random non-self neighbour.
                let from = NodeId(1 + rng.below(7) as u32);
                let pkt = make_packet(sub, &mut rng, now);
                engine.on_packet(pkt, from, &cross, now, &mut out);
            }
            1 => {
                // Application send.
                let dst = NodeId(1 + rng.below(7) as u32);
                let data = DataPacket {
                    flow: FlowId(0),
                    seq: rng.below(1000) as u32,
                    src: me,
                    dst,
                    payload: 512,
                    created: now,
                };
                engine.send_data(data, now, &mut out);
            }
            2 => {
                // Fire a previously armed timer (may be stale — engine must
                // cope).
                if let Some((timer, _)) = timers.pop() {
                    engine.on_timer(timer, &cross, now, &mut out);
                }
            }
            _ => {
                // Link failure report.
                let nh = NodeId(1 + rng.below(7) as u32);
                let pkt = rng.chance(0.5).then(|| make_packet(4, &mut rng, now));
                engine.on_link_failure(nh, pkt, now, &mut out);
            }
        }
        check_actions(me, now, &out)?;
        timers.extend(out.iter().filter_map(|a| match a {
            RoutingAction::SetTimer { timer, at } => Some((*timer, *at)),
            _ => None,
        }));
        // Bound the timer backlog so the script terminates.
        if timers.len() > 256 {
            timers.drain(0..128);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routing_engine_never_panics(
        policy in 0u8..3,
        seed in any::<u64>(),
        script in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 1..150),
    ) {
        run_script(policy, seed, script)?;
    }
}
