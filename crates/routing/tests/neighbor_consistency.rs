//! Randomised consistency between NeighborTable operations.

use wmn_mac::LoadDigest;
use wmn_routing::{NeighborTable, NodeId};
use wmn_sim::{SimDuration, SimRng, SimTime};

#[test]
fn live_count_matches_iter_and_sweep_under_random_traffic() {
    let mut rng = SimRng::new(99);
    let timeout = SimDuration::from_secs(3);
    let mut nt = NeighborTable::new(timeout);
    let mut last_heard: std::collections::HashMap<u32, u64> = Default::default();
    let mut now_ms = 0u64;
    for _ in 0..2_000 {
        now_ms += rng.below(800);
        let now = SimTime::from_millis(now_ms);
        let id = rng.below(12) as u32;
        match rng.below(3) {
            0 => {
                nt.heard_hello(
                    NodeId(id),
                    LoadDigest {
                        queue_util: rng.f64(),
                        busy_ratio: rng.f64(),
                        mac_service_s: 0.0,
                    },
                    (0.0, 0.0),
                    now,
                );
                last_heard.insert(id, now_ms);
            }
            1 => {
                nt.heard_any(NodeId(id), now);
                last_heard.insert(id, now_ms);
            }
            _ => {
                let gone = nt.sweep(now);
                for g in &gone {
                    let heard = last_heard.remove(&g.0).expect("swept unknown neighbour");
                    assert!(now_ms - heard >= 3_000, "swept live neighbour");
                }
            }
        }
        // Model check: live_count equals the reference count.
        let expect = last_heard.values().filter(|&&h| now_ms - h < 3_000).count();
        assert_eq!(nt.live_count(now), expect, "at t={now_ms}ms");
        assert_eq!(nt.iter_live(now).count(), expect);
        // Mean load defined iff someone is live.
        assert_eq!(
            nt.mean_neighbor_load(now, |d| d.queue_util).is_some(),
            expect > 0
        );
    }
}
