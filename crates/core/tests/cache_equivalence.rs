//! The link-budget cache is a pure memoization: with it on or off, a run
//! from the same seed must be *bit-identical* — same delivery counts, same
//! delays, same per-second delivery trace, same physics counters. These
//! property tests drive full scenarios both ways and compare everything
//! except the cache's own bookkeeping counters.

use cnlr::{FaultPlan, LinkFlapModel, NoiseStormModel, RunResults, ScenarioBuilder, Scheme};
use proptest::prelude::*;
use wmn_mobility::MobilityConfig;
use wmn_sim::{SimDuration, SimTime};

/// Everything observable about a run except the cache's perf counters
/// (`pathloss_evals` / `link_cache_hits` differ by design). Floats are
/// compared as raw bits: "close" is not good enough for a memoization.
fn signature(r: &RunResults) -> (String, [u64; 7], u64, u64, Vec<u64>, String, String) {
    (
        format!("{:?}", r.summary),
        r.medium.physics(),
        r.events,
        r.goodput_kbps.to_bits(),
        r.delivery_rate_pps.iter().map(|v| v.to_bits()).collect(),
        format!("{:?} {:?}", r.routing, r.mac),
        format!("{:?}", r.drops),
    )
}

fn base(seed: u64, scheme: Scheme, flows: usize) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .seed(seed)
        .grid(4, 4, 180.0)
        .scheme(scheme)
        .flows(flows, 2.0, 256)
        .duration(SimDuration::from_secs(8))
        .warmup(SimDuration::from_secs(2))
}

fn run(b: ScenarioBuilder, cache: bool) -> RunResults {
    b.link_cache(cache).build().expect("scenario builds").run()
}

fn scheme_from(pick: u8) -> Scheme {
    let set = Scheme::evaluation_set();
    set[pick as usize % set.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn static_grid_cached_equals_uncached(seed in 0u64..1_000, pick in 0u8..8, flows in 2usize..5) {
        let scheme = scheme_from(pick);
        let cached = run(base(seed, scheme.clone(), flows), true);
        let uncached = run(base(seed, scheme, flows), false);
        prop_assert_eq!(signature(&cached), signature(&uncached));

        // On a static grid the epoch never changes, so each transmitter
        // misses at most once: everything after warm-up is a cache hit and
        // does zero pathloss (log10) evaluations.
        let misses = cached.medium.tx_started - cached.medium.link_cache_hits;
        prop_assert!(
            misses <= cached.nodes as u64,
            "static grid recomputed links {} times for {} nodes",
            misses, cached.nodes
        );
        prop_assert!(cached.medium.link_cache_hits > 0, "cache never used");
        prop_assert!(
            cached.medium.pathloss_evals < uncached.medium.pathloss_evals,
            "cache did not reduce pathloss work: {} vs {}",
            cached.medium.pathloss_evals, uncached.medium.pathloss_evals
        );
    }

    #[test]
    fn mobility_invalidation_cached_equals_uncached(seed in 0u64..1_000, pick in 0u8..8) {
        // Mobile clients force mid-run epoch bumps: the cache must
        // invalidate and still reproduce the uncached run bit-for-bit.
        let scheme = scheme_from(pick);
        let mobile = MobilityConfig::RandomWaypoint { v_min: 1.0, v_max: 8.0, pause_s: 0.5 };
        let b = || base(seed, scheme.clone(), 3).mobile_clients(3, mobile);
        let cached = run(b(), true);
        let uncached = run(b(), false);
        prop_assert_eq!(signature(&cached), signature(&uncached));
        // Movement means recomputes: strictly more misses than the static
        // once-per-transmitter bound would allow on any busy run.
        prop_assert!(
            cached.medium.tx_started >= cached.medium.link_cache_hits,
            "hit counter outran transmissions"
        );
    }

    /// The hardest invalidation workload: RWP mobility *and* a stochastic
    /// fault schedule (crash/reboot churn, noise storms, link flapping) in
    /// the same run. Every invalidation path of the sharded cache fires —
    /// per-cell position epochs, per-node gain versions, noise-burst
    /// re-sensing — and the run must still be bit-identical to uncached.
    #[test]
    fn mobility_plus_faults_cached_equals_uncached(
        seed in 0u64..1_000,
        pick in 0u8..8,
        mtbf_s in 4u64..12,
        storm in any::<bool>(),
    ) {
        let scheme = scheme_from(pick);
        let mobile = MobilityConfig::RandomWaypoint { v_min: 1.0, v_max: 10.0, pause_s: 0.25 };
        let mut plan = FaultPlan::new()
            .churn(SimDuration::from_secs(mtbf_s), SimDuration::from_secs(1))
            .link_flap(LinkFlapModel {
                interarrival: SimDuration::from_secs(6),
                hold: SimDuration::from_secs(2),
                delta_db: 12.0,
            })
            // One scripted crash/reboot so at least one down-node window is
            // guaranteed regardless of how the stochastic draws land.
            .fail_node_for(5, SimTime::from_secs(3), SimDuration::from_secs(2));
        if storm {
            plan = plan.noise_storm(NoiseStormModel {
                interarrival: SimDuration::from_secs(5),
                duration: SimDuration::from_secs(2),
                radius_m: 300.0,
                delta_db: 15.0,
            });
        }
        let b = || base(seed, scheme.clone(), 3).mobile_clients(3, mobile).faults(plan.clone());
        let cached = run(b(), true);
        let uncached = run(b(), false);
        prop_assert_eq!(signature(&cached), signature(&uncached));
        prop_assert!(
            cached.medium.pathloss_evals <= uncached.medium.pathloss_evals,
            "cache increased pathloss work: {} vs {}",
            cached.medium.pathloss_evals, uncached.medium.pathloss_evals
        );
    }
}
