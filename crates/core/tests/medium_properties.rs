//! Property/fuzz tests of the radio medium's bookkeeping.
//!
//! Random frames are injected at random nodes/times and the returned
//! effects are executed in timestamp order (as the engine would). The
//! medium must maintain its invariants for every interleaving: every
//! transmission ends exactly once, every scheduled reception window closes,
//! the transmission record drains, carrier-sense states return to idle, and
//! every delivered frame was decodable at its receiver.

use cnlr::medium::{Medium, MediumEffect};
use proptest::prelude::*;
use wmn_mac::{FrameKind, MacAddr, MacFrame, BROADCAST};
use wmn_radio::PhyParams;
use wmn_sim::{SimRng, SimTime};
use wmn_topology::{Region, SpatialIndex, Vec2};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Pending {
    TxEnd { at: u64, tx_id: u64, seq: u64 },
    RxEnd { at: u64, tx_id: u64, seq: u64 },
}

impl Pending {
    fn at(&self) -> (u64, u64) {
        match *self {
            Pending::TxEnd { at, seq, .. } => (at, seq),
            Pending::RxEnd { at, seq, .. } => (at, seq),
        }
    }
}

fn drive(
    n_nodes: usize,
    frames: Vec<(usize, u64, bool)>, // (src, start_offset_us, broadcast)
    seed: u64,
) -> Result<(), TestCaseError> {
    let region = Region::square(1200.0);
    let mut rng = SimRng::new(seed);
    let positions: Vec<Vec2> = (0..n_nodes)
        .map(|_| Vec2::new(rng.range_f64(0.0, 1200.0), rng.range_f64(0.0, 1200.0)))
        .collect();
    let idx = SpatialIndex::new(region, 300.0, &positions);
    let mut medium = Medium::new(
        PhyParams::classic_802_11b(),
        n_nodes,
        SimRng::new(seed ^ 1),
        25.0,
    );

    // Track which nodes are transmitting so we only inject legal start_tx
    // calls (the MAC guarantees no double transmit).
    let mut transmitting = vec![false; n_nodes];
    let mut pending: Vec<Pending> = Vec::new();
    let mut seq = 0u64;
    let mut effects = Vec::new();
    let mut delivered = 0u64;
    let mut started = 0u64;

    let mut inject = frames.into_iter().peekable();
    let mut now_us = 0u64;

    loop {
        // Alternate: inject due frames, then process due pending events.
        let next_pending = pending.iter().min_by_key(|p| p.at()).copied();
        let next_inject = inject.peek().map(|&(_, t, _)| t);
        match (next_pending, next_inject) {
            (None, None) => break,
            (p, i) => {
                let take_inject = match (p, i) {
                    (Some(p), Some(i)) => i <= p.at().0,
                    (None, Some(_)) => true,
                    _ => false,
                };
                if take_inject {
                    let (src, t, bcast) = inject.next().expect("peeked");
                    now_us = now_us.max(t);
                    let src = src % n_nodes;
                    if transmitting[src] {
                        continue; // illegal injection; skip
                    }
                    transmitting[src] = true;
                    started += 1;
                    let frame = MacFrame {
                        kind: FrameKind::Data,
                        src: MacAddr(src as u32),
                        dst: if bcast {
                            BROADCAST
                        } else {
                            MacAddr(((src + 1) % n_nodes) as u32)
                        },
                        air_bytes: 100,
                        sdu_id: seq + 1,
                        nav_us: 0,
                    };
                    effects.clear();
                    medium.start_tx(
                        src as u32,
                        frame,
                        None,
                        SimTime::from_micros(now_us),
                        &idx,
                        &mut effects,
                    );
                    for e in effects.drain(..) {
                        seq += 1;
                        match e {
                            MediumEffect::ScheduleTxEnd { tx_id, at, .. } => {
                                pending.push(Pending::TxEnd {
                                    at: at.as_nanos() / 1_000,
                                    tx_id,
                                    seq,
                                });
                            }
                            MediumEffect::ScheduleRxEnd { tx_id, at } => {
                                pending.push(Pending::RxEnd {
                                    at: at.as_nanos() / 1_000,
                                    tx_id,
                                    seq,
                                });
                            }
                            MediumEffect::Deliver { .. } => {
                                prop_assert!(false, "delivery before rx end");
                            }
                            _ => {}
                        }
                    }
                } else {
                    let p = next_pending.expect("checked");
                    pending.retain(|q| q != &p);
                    now_us = now_us.max(p.at().0);
                    effects.clear();
                    match p {
                        Pending::TxEnd { tx_id, at, .. } => {
                            medium.tx_end(tx_id, SimTime::from_micros(at), &mut effects);
                        }
                        Pending::RxEnd { tx_id, at, .. } => {
                            medium.rx_end(tx_id, SimTime::from_micros(at), &mut effects);
                        }
                    }
                    for e in effects.drain(..) {
                        match e {
                            MediumEffect::TxComplete { node } => {
                                prop_assert!(transmitting[node as usize]);
                                transmitting[node as usize] = false;
                            }
                            MediumEffect::Deliver { node, frame, .. } => {
                                delivered += 1;
                                prop_assert_ne!(frame.src.0, node, "self-delivery");
                            }
                            MediumEffect::ScheduleRxEnd { .. }
                            | MediumEffect::ScheduleTxEnd { .. } => {
                                prop_assert!(false, "late scheduling from end events");
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    // Every transmission ended; sense states all idle.
    prop_assert!(transmitting.iter().all(|t| !t), "a radio never finished");
    for node in 0..n_nodes as u32 {
        prop_assert!(!medium.sensed_busy(node), "node {node} stuck busy");
    }
    prop_assert_eq!(medium.stats().tx_started, started);
    prop_assert!(medium.stats().delivered >= delivered);
    // Energy meters are finite and ordered (tx costs more than idle).
    let end = SimTime::from_micros(now_us + 1_000_000);
    for node in 0..n_nodes as u32 {
        let e = medium.energy_joules(node, end);
        let c = medium.comm_energy_joules(node, end);
        prop_assert!(e.is_finite() && e > 0.0);
        prop_assert!(c >= 0.0 && c < e);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn medium_invariants_hold_under_random_traffic(
        seed in any::<u64>(),
        n_nodes in 2usize..20,
        frames in prop::collection::vec((0usize..20, 0u64..2_000_000, any::<bool>()), 1..60),
    ) {
        let mut sorted = frames;
        sorted.sort_by_key(|&(_, t, _)| t);
        drive(n_nodes, sorted, seed)?;
    }
}
