use cnlr::{presets, Scheme};

#[test]
fn small_scenario_delivers_packets() {
    let r = presets::small(1)
        .scheme(Scheme::Flooding)
        .build()
        .unwrap()
        .run();
    eprintln!(
        "sent={} delivered={} pdr={:.3} delay={:.1}ms rreq_tx={} events={} disc_ok={:.2}",
        r.summary.sent,
        r.summary.delivered,
        r.pdr(),
        r.mean_delay_ms(),
        r.rreq_tx,
        r.events,
        r.discovery_success
    );
    eprintln!("drops={:?}", r.drops);
    eprintln!("medium={:?}", r.medium);
    eprintln!("routing: {:?}", r.routing);
    assert!(r.summary.sent > 0, "no packets sent");
    assert!(r.pdr() > 0.5, "pdr {}", r.pdr());
}
