//! Canonical evaluation presets (the reconstructed Table 1).

use crate::builder::ScenarioBuilder;
use crate::scheme::Scheme;
use wmn_sim::SimDuration;

/// The reconstructed simulation-parameter table (Tab. 1). Values are the
/// ns-2-era defaults documented in DESIGN.md; the sweeps bracket any
/// plausible original choice.
pub fn parameter_table() -> Vec<(&'static str, String)> {
    vec![
        ("Field", "1000 m × 1000 m (scaled with grid size)".into()),
        ("Topology", "mesh-router grid, 15 % placement jitter".into()),
        ("Network sizes", "25–196 routers (5×5 … 14×14)".into()),
        ("PHY", "802.11b DSSS, two-ray ground".into()),
        (
            "Tx power / ranges",
            "24.5 dBm; 250 m rx, 550 m carrier sense".into(),
        ),
        ("Rates", "2 Mb/s data, 1 Mb/s broadcast/basic".into()),
        (
            "MAC",
            "CSMA/CA DCF, CW 31–1023, retry limit 7, ifq 50".into(),
        ),
        (
            "Routing",
            "AODV-style reactive, destination-only replies".into(),
        ),
        ("HELLO interval", "1 s (load digests piggybacked)".into()),
        ("Traffic", "CBR 4 pkt/s, 512 B payload, 5–40 flows".into()),
        ("Duration / warm-up", "60 s / 10 s".into()),
        ("Replications", "5 seeds, 95 % t-intervals".into()),
        (
            "Schemes",
            "flooding, gossip(0.65), counter(C=3), CNLR, VAP-CNLR".into(),
        ),
        (
            "CNLR",
            "p ∈ [0.35, 0.95] linear in neighbourhood load; cost = hops + 2·load".into(),
        ),
    ]
}

/// The standard backbone scenario used by most figures: `side × side`
/// router grid at 180 m pitch (mean degree ≈ 8–12), `flows` CBR flows at
/// 4 pkt/s × 512 B.
pub fn backbone(side: usize, flows: usize, seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .seed(seed)
        .grid(side, side, 180.0)
        .flows(flows, 4.0, 512)
        .duration(SimDuration::from_secs(60))
        .warmup(SimDuration::from_secs(10))
}

/// A faster, smaller variant used in tests and the quickstart example.
pub fn small(seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .seed(seed)
        .grid(5, 5, 180.0)
        .flows(4, 2.0, 512)
        .duration(SimDuration::from_secs(20))
        .warmup(SimDuration::from_secs(5))
}

/// Large-scale grid preset: about `n` routers on a near-square grid at the
/// standard 180 m pitch (the side is rounded to the nearest square, so the
/// actual count is `side²`). Density — and therefore mean degree and the
/// interference-disc population — matches [`backbone`]; only the field
/// grows, which is exactly the regime the neighbourhood-sharded medium
/// targets (disc ≪ field).
pub fn scale_grid(n: usize, flows: usize, seed: u64) -> ScenarioBuilder {
    let side = (n as f64).sqrt().round().max(2.0) as usize;
    ScenarioBuilder::new()
        .seed(seed)
        .grid(side, side, 180.0)
        .flows(flows, 4.0, 512)
        .duration(SimDuration::from_secs(60))
        .warmup(SimDuration::from_secs(10))
}

/// Large-scale random preset: exactly `n` routers placed uniformly in a
/// field sized for the same density as [`scale_grid`] (one node per
/// 180 m × 180 m on average). Uniform placement at this density can leave
/// small disconnected pockets at large `n`, so connectivity is not
/// required — flow endpoints are still drawn reachable-pairs-only.
pub fn scale_random(n: usize, flows: usize, seed: u64) -> ScenarioBuilder {
    let side_m = (n as f64).sqrt() * 180.0;
    ScenarioBuilder::new()
        .seed(seed)
        .region(wmn_topology::Region::new(side_m, side_m))
        .placement(wmn_topology::Placement::UniformRandom { count: n })
        .require_connected(false)
        .flows(flows, 4.0, 512)
        .duration(SimDuration::from_secs(60))
        .warmup(SimDuration::from_secs(10))
}

/// The scheme set every figure sweeps, in presentation order.
pub fn schemes() -> Vec<Scheme> {
    Scheme::evaluation_set()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_table_nonempty() {
        let t = parameter_table();
        assert!(t.len() >= 10);
        assert!(t.iter().any(|(k, _)| *k == "CNLR"));
    }

    #[test]
    fn presets_build() {
        assert!(small(1).build().is_ok());
        assert!(backbone(5, 3, 2).build().is_ok());
    }

    #[test]
    fn scale_presets_build_and_size() {
        let sim = scale_grid(100, 3, 1).build().expect("scale grid");
        assert_eq!(sim.network.nodes.len(), 100);
        let sim = scale_grid(1000, 3, 1).build().expect("1k grid");
        // Nearest square to 1000 is 32² = 1024.
        assert_eq!(sim.network.nodes.len(), 1024);
        let sim = scale_random(200, 3, 1).build().expect("scale random");
        assert_eq!(sim.network.nodes.len(), 200);
    }
}
