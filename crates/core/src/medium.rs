//! The shared radio medium.
//!
//! Tracks which transmissions are in the air, what power each receiver sees,
//! carrier-sense state, and per-reception outcomes (capture / collision /
//! noise). Pure bookkeeping: the network layer turns the returned
//! [`MediumEffect`]s into engine events and MAC calls.
//!
//! Reception model (ns-2 lineage, documented in DESIGN.md):
//! * a signal is *sensible* when its receive power ≥ the carrier-sense
//!   threshold; only sensible signals are tracked,
//! * an idle, non-transmitting radio locks onto a decodable
//!   (≥ receive-threshold) signal at its onset,
//! * a later overlapping signal within `capture_threshold_db` of the locked
//!   signal corrupts it (collision); a signal *stronger* by at least the
//!   capture threshold steals the receiver (capture),
//! * at reception end a surviving frame faces the noise-only BER draw,
//! * radios are half duplex: transmitting aborts and forbids reception.

use crate::energy::{EnergyMeter, EnergyParams, RadioMode};
use std::collections::HashMap;
use wmn_mac::{FrameKind, MacFrame};
use wmn_radio::{frame as radio_frame, PhyParams, Rate};
use wmn_routing::Packet;
use wmn_sim::{SimDuration, SimRng, SimTime};
use wmn_telemetry::{EventKind, Tel};
use wmn_topology::{SpatialIndex, Vec2};

/// An in-flight transmission.
#[derive(Clone, Debug)]
struct ActiveTx {
    src: u32,
    frame: MacFrame,
    packet: Option<Packet>,
    /// Every radio that sensed the frame, in ascending id order. All their
    /// reception windows close at the same instant (fixed propagation
    /// allowance), so one batched RxEnd event serves the whole list.
    receivers: Vec<u32>,
}

/// A reception attempt in progress at one radio.
#[derive(Clone, Copy, Debug)]
struct RxAttempt {
    tx_id: u64,
    power_dbm: f64,
    corrupted: bool,
}

/// Per-node radio state.
#[derive(Clone, Debug, Default)]
struct RadioState {
    transmitting: Option<u64>,
    /// Sensible signals currently impinging: `(tx_id, rx_dbm)`.
    signals: Vec<(u64, f64)>,
    receiving: Option<RxAttempt>,
    sensed_busy: bool,
}

/// Medium loss/delivery counters (inputs to several figures).
#[derive(Clone, Copy, Debug, Default)]
pub struct MediumStats {
    /// Transmissions started.
    pub tx_started: u64,
    /// Frame receptions destroyed by collision.
    pub collisions: u64,
    /// Receptions stolen by a stronger frame (counted once per loser).
    pub captures: u64,
    /// Frames lost to the noise draw.
    pub noise_losses: u64,
    /// Frames delivered to a MAC.
    pub delivered: u64,
    /// Receptions aborted because the radio started transmitting.
    pub aborted_by_tx: u64,
    /// Signal onsets ignored because the radio was already transmitting.
    pub missed_while_tx: u64,
    /// Perf counter: deterministic link-budget (pathloss) evaluations.
    /// On a static topology this stops growing once every transmitter has
    /// warmed its cache line — the per-tx hot path then performs zero
    /// `log10` evaluations.
    pub pathloss_evals: u64,
    /// Perf counter: transmissions served entirely from the link cache.
    pub link_cache_hits: u64,
    /// Perf counter: link budgets consumed (Σ sensible receivers per
    /// transmission). With `pathloss_evals` this yields the budget-level
    /// reuse rate `1 − evals/budgets`: the fraction of per-receiver
    /// budgets served from memory. Identical cached/uncached (the entry
    /// lists are identical), unlike the eval/hit counters.
    pub link_budgets: u64,
}

impl MediumStats {
    /// Visit every physics counter as a stable snake_case `(name, value)`
    /// pair — the export consumed by the unified `wmn_telemetry::Counters`
    /// registry. The perf counters (`pathloss_evals`, `link_cache_hits`)
    /// are deliberately excluded: they vary with the cache setting while
    /// the physics must not, and manifests should agree across both.
    /// Names are part of the trace/manifest format; do not rename without
    /// updating `counter_for_event`.
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("phy_tx_started", self.tx_started);
        f("phy_collisions", self.collisions);
        f("phy_captures", self.captures);
        f("phy_noise_losses", self.noise_losses);
        f("phy_delivered", self.delivered);
        f("phy_aborted_by_tx", self.aborted_by_tx);
        f("phy_missed_while_tx", self.missed_while_tx);
    }
}

impl MediumStats {
    /// The physics outcome counters (everything except the perf counters).
    ///
    /// Cached and uncached runs of the same seed must agree on these
    /// exactly; they intentionally differ on `pathloss_evals` /
    /// `link_cache_hits`.
    pub fn physics(&self) -> [u64; 7] {
        [
            self.tx_started,
            self.collisions,
            self.captures,
            self.noise_losses,
            self.delivered,
            self.aborted_by_tx,
            self.missed_while_tx,
        ]
    }
}

/// Memoized link budgets for one transmitter.
///
/// Validity is checked at two levels. **L1** (O(1), the static fast path):
/// the global position epoch and global gain-event count are unchanged, so
/// *nothing* in the world moved or faulted. **L2** (neighbourhood-sharded):
/// the transmitter itself is where it was (`src_pos` bit-equal) and the
/// epoch-sums over the grid cells covering its interference disc — position
/// epochs plus the medium's per-cell fault-gain epochs — match the sums at
/// compute time. Cell epochs are monotone, so for the fixed rectangle an
/// unchanged sum proves no node moved or changed gain in, into, or out of
/// the disc; a mobile client or crash on the far side of the field no
/// longer touches this transmitter's cache. The `src_pos` guard is what
/// pins the rectangle: if the transmitter moved, sums over *different*
/// rectangles could coincide.
#[derive(Clone, Debug)]
struct CachedLinks {
    /// Global position epoch at compute time (`u64::MAX` = never).
    epoch: u64,
    /// Global gain-event count at compute time.
    gain_events: u64,
    /// Transmitter position the entries were computed at (NaN = never,
    /// which can never compare equal).
    src_pos: Vec2,
    /// Transmitter gain version at compute time.
    src_gain_ver: u64,
    /// Position epoch-sum over the disc's cell rectangle at compute time.
    pos_sum: u64,
    /// Fault-gain epoch-sum over the same rectangle at compute time.
    gain_sum: u64,
    /// Sensible receivers in ascending id order.
    entries: Vec<LinkEntry>,
}

/// One memoized link budget. `rx_dbm` is a pure function of the two
/// endpoint positions and gain states, so an entry whose receiver is
/// bit-identically where it was (and at the same gain version) can be
/// reused without re-evaluating the pathloss — even when *other* nodes in
/// the transmitter's disc moved. This per-entry reuse is what keeps the
/// recompute cost proportional to the disturbance, not the disc population.
#[derive(Clone, Copy, Debug)]
struct LinkEntry {
    /// Receiver id.
    r: u32,
    /// Receive power at `r`, dBm.
    rx_dbm: f64,
    /// Receiver position the budget was evaluated at.
    rx_pos: Vec2,
    /// Receiver gain version the budget was evaluated at.
    gain_ver: u64,
}

/// An exported link-budget cache: the warm state of one medium's
/// per-transmitter memo, transferable to another run over the *same*
/// topology (see [`Medium::export_link_cache`] /
/// [`Medium::import_link_cache`]). Opaque by design — the validity rules
/// live with the cache implementation.
#[derive(Clone, Debug)]
pub struct LinkCacheSnapshot {
    links: Vec<CachedLinks>,
}

impl LinkCacheSnapshot {
    /// Number of transmitters whose cache line is warm (has been computed
    /// at least once).
    pub fn warmed(&self) -> usize {
        self.links.iter().filter(|c| !c.src_pos.x.is_nan()).count()
    }
}

impl CachedLinks {
    fn empty() -> Self {
        CachedLinks {
            epoch: u64::MAX,
            gain_events: u64::MAX,
            src_pos: Vec2::new(f64::NAN, f64::NAN),
            src_gain_ver: 0,
            pos_sum: 0,
            gain_sum: 0,
            entries: Vec::new(),
        }
    }
}

/// What the network layer must do after a medium call.
#[derive(Clone, Debug)]
pub enum MediumEffect {
    /// Physical-carrier-sense transition at `node`.
    Channel {
        /// Affected node.
        node: u32,
        /// New sensed state.
        busy: bool,
    },
    /// Schedule the end-of-transmission event.
    ScheduleTxEnd {
        /// Transmitter.
        node: u32,
        /// Transmission id.
        tx_id: u64,
        /// Absolute time.
        at: SimTime,
    },
    /// Schedule the batched end-of-reception event for a transmission.
    ///
    /// All receivers of one frame close their reception windows at the same
    /// instant, so a single event covers every radio that sensed it — this
    /// keeps the future-event list ~an order of magnitude smaller than a
    /// per-receiver schedule.
    ScheduleRxEnd {
        /// Transmission id.
        tx_id: u64,
        /// Absolute time.
        at: SimTime,
    },
    /// The transmitter's own frame left the air.
    TxComplete {
        /// Transmitter.
        node: u32,
    },
    /// A frame was successfully decoded at `node`.
    Deliver {
        /// Receiver.
        node: u32,
        /// Link-layer frame.
        frame: MacFrame,
        /// Network payload (`None` for control frames).
        packet: Option<Packet>,
        /// Receive power, dBm (the RSSI handed to cross-layer consumers).
        rx_dbm: f64,
    },
}

/// The medium.
pub struct Medium {
    phy: PhyParams,
    /// Fixed air-propagation allowance added to every reception.
    prop: SimDuration,
    states: Vec<RadioState>,
    active: HashMap<u64, ActiveTx>,
    next_tx_id: u64,
    rng: SimRng,
    stats: MediumStats,
    /// Cached interference cutoff (metres).
    interference_range: f64,
    /// Query slack for mobile nodes between position samples (metres).
    range_slack: f64,
    /// Scratch buffer for neighbour queries.
    scratch: Vec<u32>,
    /// Scratch buffer for partial cache rebuilds.
    scratch_entries: Vec<LinkEntry>,
    /// Per-transmitter link-budget cache, keyed on the spatial epoch.
    links: Vec<CachedLinks>,
    /// Whether the link cache is consulted (disable to cross-check
    /// determinism; results must be bit-identical either way).
    cache_enabled: bool,
    energy_params: EnergyParams,
    energy: Vec<EnergyMeter>,
    tel: Tel,
    /// Per-node crashed flag (fault schedule): a down radio neither
    /// transmits, senses, nor receives.
    down: Vec<bool>,
    /// Per-node extra pathloss, dB (link-flap faults; applied to every
    /// frame the node sends or receives).
    node_atten_db: Vec<f64>,
    /// Per-node extra noise floor, dB above thermal (noise-burst faults).
    extra_noise_db: Vec<f64>,
    /// Active noise bursts: id → (delta_db, affected nodes), so the
    /// matching burst end can subtract exactly what it added.
    bursts: HashMap<u32, (f64, Vec<u32>)>,
    /// Count of gain-affecting fault events (crash/reboot/attenuation
    /// shift). Constant 0 in no-fault runs; the L1 cache key.
    gain_events: u64,
    /// Per-node gain versions: how many gain events have hit each node.
    gain_version: Vec<u64>,
    /// Per-cell gain epochs mirroring the spatial index's cell geometry
    /// (lazily sized on the first fault; empty means "no gain event ever").
    /// A node's gain bump lands in the cell it currently occupies, so the
    /// disc rect-sum scopes fault invalidation exactly like movement.
    gain_cells: Vec<u64>,
    /// True once any fault touched the medium (relaxes the unknown-tx
    /// assertions: a crash mid-transmission retires the record before its
    /// TxEnd/RxEnd events fire).
    faults_seen: bool,
}

impl Medium {
    /// Create a medium for `n` radios.
    pub fn new(phy: PhyParams, n: usize, rng: SimRng, range_slack: f64) -> Self {
        let interference_range = phy.interference_range_m();
        Medium {
            phy,
            prop: SimDuration::from_micros(radio_frame::PROPAGATION_US),
            // Signal lists start empty and grow on first use: a radio that
            // ever senses a frame pays one small allocation for the whole
            // run, while idle nodes in a large network pay nothing.
            states: vec![RadioState::default(); n],
            active: HashMap::new(),
            next_tx_id: 0,
            rng,
            stats: MediumStats::default(),
            interference_range,
            range_slack,
            scratch: Vec::new(),
            scratch_entries: Vec::new(),
            links: vec![CachedLinks::empty(); n],
            cache_enabled: true,
            energy_params: EnergyParams::default(),
            energy: vec![EnergyMeter::new(SimTime::ZERO); n],
            tel: Tel::off(),
            down: vec![false; n],
            node_atten_db: vec![0.0; n],
            extra_noise_db: vec![0.0; n],
            bursts: HashMap::new(),
            gain_events: 0,
            gain_version: vec![0; n],
            gain_cells: Vec::new(),
            faults_seen: false,
        }
    }

    /// Attach a telemetry handle (disabled by default). The medium emits
    /// on behalf of many nodes, so events are attributed explicitly.
    pub fn set_telemetry(&mut self, tel: Tel) {
        self.tel = tel;
    }

    /// Enable or disable the link-budget cache (enabled by default).
    ///
    /// Disabling recomputes every link budget per transmission — useful only
    /// to cross-check that cached runs are bit-identical.
    pub fn with_link_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Export the per-transmitter link-budget cache for warm-starting an
    /// identical-topology run (see [`Medium::import_link_cache`]).
    ///
    /// Returns `None` when there is nothing safely transferable: the cache
    /// is disabled, or faults/gain events have touched this medium (a
    /// donor with gain history would smuggle stale epoch keys into a fresh
    /// world).
    pub fn export_link_cache(&self) -> Option<LinkCacheSnapshot> {
        if !self.cache_enabled || self.faults_seen || self.gain_events != 0 {
            return None;
        }
        Some(LinkCacheSnapshot {
            links: self.links.clone(),
        })
    }

    /// Warm this medium's link-budget cache from a snapshot exported by an
    /// **identical-topology** run: same node count and bit-identical
    /// positions (in practice: the same
    /// [`ScenarioBuilder::prefix_fingerprint`](crate::ScenarioBuilder::prefix_fingerprint),
    /// which pins seed, placement and PHY). Purely a performance hand-off —
    /// a warmed run is bit-identical to a cold one except for the
    /// `pathloss_evals`/`link_cache_hits` perf counters, exactly like the
    /// cache itself.
    ///
    /// Returns `false` (importing nothing) unless the guarantees hold:
    /// cache enabled, fault-free fresh medium, matching node count, and
    /// every warmed entry's transmitter position bit-equal to the current
    /// position in `positions` — the defence against a caller sharing
    /// caches across genuinely different topologies, where the O(1) epoch
    /// check alone could falsely validate foreign budgets.
    pub fn import_link_cache(
        &mut self,
        snap: &LinkCacheSnapshot,
        positions: &SpatialIndex,
    ) -> bool {
        if !self.cache_enabled
            || self.faults_seen
            || self.gain_events != 0
            || snap.links.len() != self.states.len()
        {
            return false;
        }
        for (i, cl) in snap.links.iter().enumerate() {
            if cl.src_pos.x.is_nan() {
                continue; // never warmed; carries no entries worth guarding
            }
            if cl.src_pos != positions.position(i) {
                return false;
            }
        }
        self.links = snap.links.clone();
        true
    }

    /// Energy consumed by `node` up to `until`, joules.
    pub fn energy_joules(&self, node: u32, until: SimTime) -> f64 {
        self.energy[node as usize].total_joules(until, &self.energy_params)
    }

    /// Communication-only (tx + rx) energy of `node` up to `until`, joules.
    pub fn comm_energy_joules(&self, node: u32, until: SimTime) -> f64 {
        self.energy[node as usize].comm_joules(until, &self.energy_params)
    }

    /// The energy model in force.
    pub fn energy_params(&self) -> &EnergyParams {
        &self.energy_params
    }

    /// Recompute a node's radio mode after a state transition.
    fn update_energy(&mut self, node: u32, now: SimTime) {
        let st = &self.states[node as usize];
        let mode = if self.down[node as usize] {
            RadioMode::Off
        } else if st.transmitting.is_some() {
            RadioMode::Tx
        } else if st.receiving.is_some() {
            RadioMode::Rx
        } else {
            RadioMode::Idle
        };
        self.energy[node as usize].set_mode(mode, now, &self.energy_params);
    }

    /// True while `node` is crashed.
    pub fn is_down(&self, node: u32) -> bool {
        self.down[node as usize]
    }

    /// Record a gain-affecting fault event at `node`: bump its version,
    /// the global event count, and the gain epoch of the cell it currently
    /// occupies — so only link caches whose disc covers that cell recompute.
    fn bump_gain(&mut self, node: u32, positions: &SpatialIndex) {
        self.gain_events += 1;
        self.gain_version[node as usize] += 1;
        if self.gain_cells.is_empty() {
            self.gain_cells.resize(positions.cell_count(), 0);
        }
        self.gain_cells[positions.cell_index(node as usize)] += 1;
    }

    /// Crash `node`'s radio: abort any transmission mid-air (receivers
    /// lose the signal — the frame is cut off, never decodable), drop all
    /// incoming signal state, power the radio off. `out` receives the
    /// carrier-sense transitions of receivers that go quiet.
    pub fn set_node_down(
        &mut self,
        node: u32,
        now: SimTime,
        positions: &SpatialIndex,
        out: &mut Vec<MediumEffect>,
    ) {
        self.faults_seen = true;
        self.down[node as usize] = true;
        // Abort an outgoing frame mid-air. Its TxEnd/RxEnd events still
        // fire but find no record, which `tx_end`/`rx_end` tolerate once
        // faults are active.
        if let Some(tx_id) = self.states[node as usize].transmitting.take() {
            if let Some(tx) = self.active.remove(&tx_id) {
                for &r in &tx.receivers {
                    let st = &mut self.states[r as usize];
                    if let Some(pos) = st.signals.iter().position(|&(id, _)| id == tx_id) {
                        st.signals.swap_remove(pos);
                    }
                    if matches!(st.receiving, Some(a) if a.tx_id == tx_id) {
                        st.receiving = None;
                    }
                    self.update_sense(r, out);
                    self.update_energy(r, now);
                }
            }
        }
        let st = &mut self.states[node as usize];
        st.signals.clear();
        st.receiving = None;
        // Dead radios sense nothing; no Channel effect — the MAC state is
        // about to be discarded anyway, and a rebooted MAC starts idle.
        st.sensed_busy = false;
        self.bump_gain(node, positions);
        self.update_energy(node, now);
    }

    /// Power `node`'s radio back on (state was cleaned at crash time).
    pub fn set_node_up(&mut self, node: u32, now: SimTime, positions: &SpatialIndex) {
        self.faults_seen = true;
        self.down[node as usize] = false;
        self.bump_gain(node, positions);
        self.update_energy(node, now);
    }

    /// Raise the noise floor at `nodes` by `delta_db` for the duration of
    /// burst `id`. Affects reception adjudication (SINR at the PER draw),
    /// not carrier sense.
    pub fn apply_noise(&mut self, id: u32, delta_db: f64, nodes: &[u32]) {
        self.faults_seen = true;
        for &n in nodes {
            self.extra_noise_db[n as usize] += delta_db;
        }
        self.bursts.insert(id, (delta_db, nodes.to_vec()));
    }

    /// End noise burst `id`, subtracting exactly what it added.
    pub fn clear_noise(&mut self, id: u32) {
        if let Some((delta_db, nodes)) = self.bursts.remove(&id) {
            for n in nodes {
                self.extra_noise_db[n as usize] -= delta_db;
            }
        }
    }

    /// Shift `node`'s pathloss by `delta_db` on every link it terminates
    /// (link-flap faults; negative deltas undo prior shifts).
    pub fn shift_node_atten(&mut self, node: u32, delta_db: f64, positions: &SpatialIndex) {
        self.faults_seen = true;
        self.node_atten_db[node as usize] += delta_db;
        self.bump_gain(node, positions);
    }

    /// Loss/delivery counters.
    pub fn stats(&self) -> &MediumStats {
        &self.stats
    }

    /// PHY parameters in force.
    pub fn phy(&self) -> &PhyParams {
        &self.phy
    }

    /// Whether `node` currently senses the channel busy.
    pub fn sensed_busy(&self, node: u32) -> bool {
        self.states[node as usize].sensed_busy
    }

    fn rate_for(&self, frame: &MacFrame) -> Rate {
        // Control frames (ACK/RTS/CTS) and broadcasts go at the basic rate.
        if frame.kind != FrameKind::Data || frame.dst.is_broadcast() {
            self.phy.basic_rate
        } else {
            self.phy.data_rate
        }
    }

    /// Airtime of `frame` under this PHY.
    pub fn airtime(&self, frame: &MacFrame) -> SimDuration {
        radio_frame::airtime(frame.air_bytes, self.rate_for(frame))
    }

    fn update_sense(&mut self, node: u32, out: &mut Vec<MediumEffect>) {
        let st = &mut self.states[node as usize];
        let busy = !st.signals.is_empty();
        if busy != st.sensed_busy {
            st.sensed_busy = busy;
            out.push(MediumEffect::Channel { node, busy });
        }
    }

    /// Begin a transmission by `src`. `positions` supplies current node
    /// coordinates; `exact` yields the precise position of a node at `now`
    /// (the spatial index may lag for mobile nodes).
    pub fn start_tx(
        &mut self,
        src: u32,
        frame: MacFrame,
        packet: Option<Packet>,
        now: SimTime,
        positions: &SpatialIndex,
        out: &mut Vec<MediumEffect>,
    ) {
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        self.stats.tx_started += 1;
        self.tel.emit_at(
            src,
            now,
            EventKind::PhyTxStart {
                tx_id,
                bytes: frame.air_bytes as u32,
            },
        );

        // Half duplex: abort any reception in progress at the transmitter.
        {
            let st = &mut self.states[src as usize];
            debug_assert!(st.transmitting.is_none(), "double transmit at {src}");
            if st.receiving.take().is_some() {
                self.stats.aborted_by_tx += 1;
            }
            st.transmitting = Some(tx_id);
        }
        self.update_energy(src, now);

        let airtime = self.airtime(&frame);
        let end = now + airtime;
        out.push(MediumEffect::ScheduleTxEnd {
            node: src,
            tx_id,
            at: end,
        });

        // Find every radio that can sense this transmission. The
        // (receiver, rx power) list is invariant while nothing inside the
        // transmitter's interference disc changed, so it is memoized with a
        // two-level check: L1 compares the global position epoch and
        // gain-event count (O(1); always current on a quiet world), L2
        // falls back to the neighbourhood-sharded epoch-sums over the
        // disc's cell rectangle — movement or faults *elsewhere* leave
        // this transmitter's cache valid (see [`CachedLinks`]).
        let epoch = positions.epoch();
        let radius = self.interference_range + self.range_slack;
        let src_pos = positions.position(src as usize);
        let mut pos_sum = 0u64;
        let mut gain_sum = 0u64;
        let mut sums_current = false;
        // The transmitter's side of every budget is unchanged: entries may
        // be reused (wholesale on an L2 hit, per-entry on a partial miss).
        let reusable = self.cache_enabled
            && self.links[src as usize].src_pos == src_pos
            && self.links[src as usize].src_gain_ver == self.gain_version[src as usize];
        let hit = self.cache_enabled && {
            let cl = &self.links[src as usize];
            if cl.epoch == epoch && cl.gain_events == self.gain_events {
                true
            } else if reusable {
                pos_sum = positions.epoch_sum(src_pos, radius);
                gain_sum = if self.gain_cells.is_empty() {
                    0
                } else {
                    positions.rect_sum(src_pos, radius, &self.gain_cells)
                };
                sums_current = true;
                cl.pos_sum == pos_sum && cl.gain_sum == gain_sum
            } else {
                false
            }
        };
        let mut entries = std::mem::take(&mut self.links[src as usize].entries);
        if hit {
            self.stats.link_cache_hits += 1;
        } else {
            let evals_before = self.stats.pathloss_evals;
            if reusable {
                self.merge_links(src, positions, &mut entries);
            } else {
                self.compute_links(src, positions, &mut entries);
            }
            if !sums_current {
                pos_sum = positions.epoch_sum(src_pos, radius);
                gain_sum = if self.gain_cells.is_empty() {
                    0
                } else {
                    positions.rect_sum(src_pos, radius, &self.gain_cells)
                };
            }
            // A partial rebuild that re-evaluated nothing was served
            // entirely from the cache (everything that changed was outside
            // this transmitter's disc — e.g. in an uncovered rect corner).
            if reusable && self.stats.pathloss_evals == evals_before && !entries.is_empty() {
                self.stats.link_cache_hits += 1;
            }
        }
        self.stats.link_budgets += entries.len() as u64;
        let mut receivers = Vec::with_capacity(entries.len());
        for &LinkEntry { r, rx_dbm, .. } in entries.iter() {
            receivers.push(r);
            let st = &mut self.states[r as usize];
            st.signals.push((tx_id, rx_dbm));

            if st.transmitting.is_some() {
                self.stats.missed_while_tx += 1;
            } else if self.phy.is_decodable(rx_dbm) {
                match st.receiving {
                    None => {
                        st.receiving = Some(RxAttempt {
                            tx_id,
                            power_dbm: rx_dbm,
                            corrupted: false,
                        });
                    }
                    Some(ref mut cur) => {
                        if self.phy.captures(rx_dbm, cur.power_dbm) {
                            // The new frame steals the receiver.
                            self.stats.captures += 1;
                            self.tel.emit_at(r, now, EventKind::PhyCapture { tx_id });
                            st.receiving = Some(RxAttempt {
                                tx_id,
                                power_dbm: rx_dbm,
                                corrupted: false,
                            });
                        } else if !self.phy.captures(cur.power_dbm, rx_dbm) {
                            // Comparable powers: the locked frame dies too.
                            cur.corrupted = true;
                        }
                        // else: current frame dominates; the newcomer is
                        // harmless interference.
                    }
                }
            } else if let Some(ref mut cur) = st.receiving {
                // Sub-decode-threshold but sensible: can still corrupt a
                // marginal locked frame.
                if !self.phy.captures(cur.power_dbm, rx_dbm) {
                    cur.corrupted = true;
                }
            }
            self.update_sense(r, out);
            self.update_energy(r, now);
        }
        if !receivers.is_empty() {
            out.push(MediumEffect::ScheduleRxEnd {
                tx_id,
                at: end + self.prop,
            });
        }
        // Write back, refreshing the L1 keys (an L2 hit proves the cache
        // is current as of `epoch`, so later transmissions on a quiet
        // world take the O(1) path again). On an L1 hit the sums were not
        // recomputed — the stored ones are still current by definition.
        if !sums_current && hit {
            pos_sum = self.links[src as usize].pos_sum;
            gain_sum = self.links[src as usize].gain_sum;
        }
        self.links[src as usize] = CachedLinks {
            epoch: if self.cache_enabled { epoch } else { u64::MAX },
            gain_events: if self.cache_enabled {
                self.gain_events
            } else {
                u64::MAX
            },
            src_pos: if self.cache_enabled {
                src_pos
            } else {
                Vec2::new(f64::NAN, f64::NAN)
            },
            src_gain_ver: self.gain_version[src as usize],
            pos_sum,
            gain_sum,
            entries,
        };

        self.active.insert(
            tx_id,
            ActiveTx {
                src,
                frame,
                packet,
                receivers,
            },
        );
    }

    /// Evaluate the link budget from `src` at `src_pos` to `r`, returning
    /// an entry when `r` can sense the frame.
    fn eval_link(
        &mut self,
        src: u32,
        src_pos: Vec2,
        r: u32,
        positions: &SpatialIndex,
    ) -> Option<LinkEntry> {
        if self.down[r as usize] {
            return None; // dead radios sense nothing
        }
        let rx_pos = positions.position(r as usize);
        self.stats.pathloss_evals += 1;
        // The fault attenuations are exactly 0.0 unless a link-flap
        // model is active (x - 0.0 is bitwise x, so no-fault runs are
        // untouched).
        let rx_dbm = self.rx_power(src_pos, rx_pos, src, r)
            - self.node_atten_db[src as usize]
            - self.node_atten_db[r as usize];
        if self.phy.is_sensed(rx_dbm) {
            Some(LinkEntry {
                r,
                rx_dbm,
                rx_pos,
                gain_ver: self.gain_version[r as usize],
            })
        } else {
            None // too weak to matter
        }
    }

    /// Recompute the sensible-receiver list and link budgets for `src`
    /// from scratch.
    fn compute_links(&mut self, src: u32, positions: &SpatialIndex, entries: &mut Vec<LinkEntry>) {
        entries.clear();
        let src_pos = positions.position(src as usize);
        let mut nbrs = std::mem::take(&mut self.scratch);
        positions.query_radius(
            src_pos,
            self.interference_range + self.range_slack,
            src as usize,
            &mut nbrs,
        );
        for &r in nbrs.iter() {
            if let Some(e) = self.eval_link(src, src_pos, r, positions) {
                entries.push(e);
            }
        }
        nbrs.clear();
        self.scratch = nbrs;
    }

    /// Rebuild `src`'s entry list, reusing every memoized budget whose
    /// receiver is bit-identically where it was at the same gain version
    /// (the budget is a pure function of those inputs, so the stored value
    /// is exactly what a re-evaluation would produce). Only disturbed or
    /// newly-in-range links are evaluated; candidates come from a fresh
    /// spatial query, so departures drop out naturally. Requires the
    /// caller to have checked that the transmitter's own position and gain
    /// version are unchanged.
    fn merge_links(&mut self, src: u32, positions: &SpatialIndex, entries: &mut Vec<LinkEntry>) {
        let src_pos = positions.position(src as usize);
        let mut nbrs = std::mem::take(&mut self.scratch);
        positions.query_radius(
            src_pos,
            self.interference_range + self.range_slack,
            src as usize,
            &mut nbrs,
        );
        let mut fresh = std::mem::take(&mut self.scratch_entries);
        fresh.clear();
        // Both the old entries and the query result are in ascending id
        // order: one forward pass pairs them up.
        let mut old_i = 0;
        for &r in nbrs.iter() {
            while old_i < entries.len() && entries[old_i].r < r {
                old_i += 1;
            }
            if old_i < entries.len() && entries[old_i].r == r {
                let e = entries[old_i];
                if e.rx_pos == positions.position(r as usize)
                    && e.gain_ver == self.gain_version[r as usize]
                {
                    fresh.push(e);
                    continue;
                }
            }
            if let Some(e) = self.eval_link(src, src_pos, r, positions) {
                fresh.push(e);
            }
        }
        std::mem::swap(entries, &mut fresh);
        fresh.clear();
        self.scratch_entries = fresh;
        nbrs.clear();
        self.scratch = nbrs;
    }

    /// The transmitter's frame has left the air.
    pub fn tx_end(&mut self, tx_id: u64, now: SimTime, out: &mut Vec<MediumEffect>) {
        let Some(tx) = self.active.get_mut(&tx_id) else {
            // Only a crash mid-transmission retires a record early.
            debug_assert!(self.faults_seen, "tx_end for unknown tx");
            return;
        };
        let src = tx.src;
        let done = tx.receivers.is_empty();
        let st = &mut self.states[src as usize];
        debug_assert_eq!(st.transmitting, Some(tx_id));
        st.transmitting = None;
        out.push(MediumEffect::TxComplete { node: src });
        if done {
            // Nobody sensed the frame, so no RxEnd event will fire.
            self.active.remove(&tx_id);
        }
        self.update_energy(src, now);
    }

    /// All reception windows for `tx_id` closed (they end at the same
    /// instant): adjudicate the frame at every radio that sensed it.
    pub fn rx_end(&mut self, tx_id: u64, now: SimTime, out: &mut Vec<MediumEffect>) {
        // TxEnd (at `end`) always precedes RxEnd (at `end + prop`, same-time
        // ties broken by schedule order), so the record can be removed here.
        let Some(tx) = self.active.remove(&tx_id) else {
            // Only a crash mid-transmission retires a record early.
            debug_assert!(self.faults_seen, "rx_end for unknown tx");
            return;
        };
        debug_assert_ne!(self.states[tx.src as usize].transmitting, Some(tx_id));
        let rate = self.rate_for(&tx.frame);
        let bits = radio_frame::error_model_bits(tx.frame.air_bytes);
        for &node in &tx.receivers {
            let st = &mut self.states[node as usize];
            // Remove the signal.
            if let Some(pos) = st.signals.iter().position(|&(id, _)| id == tx_id) {
                st.signals.swap_remove(pos);
            }
            // Decide the frame's fate if this radio was locked onto it.
            let attempt = match st.receiving {
                Some(a) if a.tx_id == tx_id => {
                    st.receiving = None;
                    Some(a)
                }
                _ => None,
            };
            if let Some(a) = attempt {
                if a.corrupted {
                    self.stats.collisions += 1;
                    self.tel
                        .emit_at(node, now, EventKind::PhyCollision { tx_id });
                } else {
                    // A noise-burst fault raises this receiver's floor by
                    // `extra` dB: model the rise as equivalent interference
                    // power. The branch keeps no-fault runs on the exact
                    // pre-fault arithmetic (`sinr(p, 0.0)`).
                    let extra = self.extra_noise_db[node as usize];
                    let interference_mw = if extra > 0.0 {
                        self.phy.noise_floor_mw() * (10f64.powf(extra / 10.0) - 1.0)
                    } else {
                        0.0
                    };
                    let snr = self.phy.sinr(a.power_dbm, interference_mw);
                    let per = rate.per(snr, bits);
                    if self.rng.chance(per) {
                        self.stats.noise_losses += 1;
                        self.tel.emit_at(node, now, EventKind::PhyNoise { tx_id });
                    } else {
                        // Every decoded frame is handed to the MAC: the MAC
                        // owns address filtering so it can honour NAV
                        // reservations carried by frames addressed to others.
                        self.stats.delivered += 1;
                        self.tel.emit_at(node, now, EventKind::PhyRx { tx_id });
                        out.push(MediumEffect::Deliver {
                            node,
                            frame: tx.frame,
                            packet: tx.packet.clone(),
                            rx_dbm: a.power_dbm,
                        });
                    }
                }
            }
            self.update_sense(node, out);
            self.update_energy(node, now);
        }
    }

    fn rx_power(&self, a_pos: Vec2, b_pos: Vec2, a: u32, b: u32) -> f64 {
        self.phy.rx_power_dbm(a_pos.distance(b_pos), a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_mac::{MacAddr, BROADCAST};
    use wmn_topology::Region;

    fn setup(positions: Vec<Vec2>) -> (Medium, SpatialIndex) {
        let phy = PhyParams::classic_802_11b();
        let n = positions.len();
        let idx = SpatialIndex::new(Region::square(2000.0), 300.0, &positions);
        (Medium::new(phy, n, SimRng::new(7), 25.0), idx)
    }

    fn bcast_frame(src: u32) -> MacFrame {
        MacFrame {
            kind: FrameKind::Data,
            src: MacAddr(src),
            dst: BROADCAST,
            air_bytes: 100,
            sdu_id: 1,
            nav_us: 0,
        }
    }

    fn ucast_frame(src: u32, dst: u32) -> MacFrame {
        MacFrame {
            kind: FrameKind::Data,
            src: MacAddr(src),
            dst: MacAddr(dst),
            air_bytes: 100,
            sdu_id: 2,
            nav_us: 0,
        }
    }

    fn run_rx_ends(m: &mut Medium, effects: &[MediumEffect]) -> Vec<MediumEffect> {
        let mut out = Vec::new();
        for e in effects {
            match *e {
                MediumEffect::ScheduleRxEnd { tx_id, at } => m.rx_end(tx_id, at, &mut out),
                MediumEffect::ScheduleTxEnd { tx_id, at, .. } => m.tx_end(tx_id, at, &mut out),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn broadcast_reaches_nodes_in_range() {
        // 0 at origin-ish; 1 at 200 m (decodable); 2 at 450 m (sense only);
        // 3 at 900 m (nothing).
        let pos = vec![
            Vec2::new(100.0, 1000.0),
            Vec2::new(300.0, 1000.0),
            Vec2::new(550.0, 1000.0),
            Vec2::new(1000.0, 1000.0),
        ];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        // Node 1 and 2 got busy; node 3 untouched.
        let busy: Vec<u32> = fx
            .iter()
            .filter_map(|e| match e {
                MediumEffect::Channel { node, busy: true } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(busy, vec![1, 2]);
        let done = run_rx_ends(&mut m, &fx);
        // Only node 1 decodes.
        let delivered: Vec<u32> = done
            .iter()
            .filter_map(|e| match e {
                MediumEffect::Deliver { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![1]);
        // And both busy nodes go idle again.
        let idle: Vec<u32> = done
            .iter()
            .filter_map(|e| match e {
                MediumEffect::Channel { node, busy: false } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(idle, vec![1, 2]);
        assert_eq!(m.stats().delivered, 1);
    }

    #[test]
    fn unicast_not_delivered_to_third_parties() {
        let pos = vec![
            Vec2::new(100.0, 1000.0),
            Vec2::new(300.0, 1000.0),
            Vec2::new(150.0, 1000.0),
        ];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, ucast_frame(0, 1), None, SimTime::ZERO, &idx, &mut fx);
        let done = run_rx_ends(&mut m, &fx);
        let delivered: Vec<u32> = done
            .iter()
            .filter_map(|e| match e {
                MediumEffect::Deliver { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        // The medium hands decoded frames to every receiver's MAC (node 2
        // overhears and uses the frame for NAV only); address filtering is
        // the MAC's job, verified in wmn-mac's tests.
        assert_eq!(delivered, vec![1, 2]);
    }

    #[test]
    fn concurrent_equal_power_transmissions_collide() {
        // Receiver 1 sits exactly between transmitters 0 and 2.
        let pos = vec![
            Vec2::new(800.0, 1000.0),
            Vec2::new(1000.0, 1000.0),
            Vec2::new(1200.0, 1000.0),
        ];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        m.start_tx(2, bcast_frame(2), None, SimTime::ZERO, &idx, &mut fx);
        let done = run_rx_ends(&mut m, &fx);
        assert!(
            !done
                .iter()
                .any(|e| matches!(e, MediumEffect::Deliver { node: 1, .. })),
            "equal-power overlap must collide"
        );
        assert!(m.stats().collisions >= 1);
    }

    #[test]
    fn capture_lets_much_stronger_late_frame_win() {
        // Node 1: first locked on far node 0 (240 m), then near node 2
        // (30 m) starts — > 10 dB stronger → capture.
        let pos = vec![
            Vec2::new(760.0, 1000.0),
            Vec2::new(1000.0, 1000.0),
            Vec2::new(1030.0, 1000.0),
        ];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        m.start_tx(2, bcast_frame(2), None, SimTime::ZERO, &idx, &mut fx);
        let done = run_rx_ends(&mut m, &fx);
        let delivered: Vec<(u32, u32)> = done
            .iter()
            .filter_map(|e| match e {
                MediumEffect::Deliver { node, frame, .. } => Some((*node, frame.src.0)),
                _ => None,
            })
            .collect();
        // Node 1 receives the frame from 2, not from 0.
        assert!(delivered.contains(&(1, 2)), "capture failed: {delivered:?}");
        assert!(!delivered.contains(&(1, 0)));
        assert_eq!(m.stats().captures, 1);
    }

    #[test]
    fn half_duplex_transmitter_misses_frames() {
        let pos = vec![Vec2::new(900.0, 1000.0), Vec2::new(1100.0, 1000.0)];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        // Node 1 also transmits while 0's frame is incoming.
        m.start_tx(1, bcast_frame(1), None, SimTime(1000), &idx, &mut fx);
        let done = run_rx_ends(&mut m, &fx);
        // Node 1 was transmitting when 0's frame arrived... 0's frame
        // arrived first, so node 1 was receiving and its own tx aborted
        // the reception.
        assert!(!done
            .iter()
            .any(|e| matches!(e, MediumEffect::Deliver { node: 1, .. })));
        assert_eq!(m.stats().aborted_by_tx, 1);
    }

    #[test]
    fn payload_travels_with_frame() {
        let pos = vec![Vec2::new(900.0, 1000.0), Vec2::new(1100.0, 1000.0)];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        let pkt = Packet::Hello(wmn_routing::Hello {
            seq: 9,
            load: Default::default(),
            velocity: (0.0, 0.0),
        });
        m.start_tx(
            0,
            bcast_frame(0),
            Some(pkt.clone()),
            SimTime::ZERO,
            &idx,
            &mut fx,
        );
        let done = run_rx_ends(&mut m, &fx);
        let got = done
            .iter()
            .find_map(|e| match e {
                MediumEffect::Deliver {
                    node: 1, packet, ..
                } => packet.clone(),
                _ => None,
            })
            .expect("delivery with payload");
        assert_eq!(got, pkt);
    }

    #[test]
    fn active_map_drains() {
        let pos = vec![Vec2::new(900.0, 1000.0), Vec2::new(1100.0, 1000.0)];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        assert_eq!(m.active.len(), 1);
        let _ = run_rx_ends(&mut m, &fx);
        assert!(m.active.is_empty(), "transmission record leaked");
        assert!(!m.sensed_busy(1));
    }

    #[test]
    fn warm_cache_does_zero_pathloss_evals() {
        let pos = vec![
            Vec2::new(100.0, 1000.0),
            Vec2::new(300.0, 1000.0),
            Vec2::new(550.0, 1000.0),
            Vec2::new(1000.0, 1000.0),
        ];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        let _ = run_rx_ends(&mut m, &fx);
        let evals_after_warmup = m.stats().pathloss_evals;
        assert!(
            evals_after_warmup > 0,
            "first tx must evaluate the link budget"
        );

        // Every further transmission from node 0 on the static topology is
        // served from the cache: zero new pathloss (log10) evaluations.
        for t in 1..=10u64 {
            let mut fx = Vec::new();
            m.start_tx(
                0,
                bcast_frame(0),
                None,
                SimTime(t * 10_000_000),
                &idx,
                &mut fx,
            );
            let _ = run_rx_ends(&mut m, &fx);
        }
        assert_eq!(m.stats().pathloss_evals, evals_after_warmup);
        assert_eq!(m.stats().link_cache_hits, 10);
    }

    #[test]
    fn movement_invalidates_link_cache() {
        let pos = vec![Vec2::new(900.0, 1000.0), Vec2::new(1100.0, 1000.0)];
        let (mut m, mut idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        let _ = run_rx_ends(&mut m, &fx);
        let warm_evals = m.stats().pathloss_evals;

        // Node 1 moves out of interference range: the epoch bump must force
        // a recompute (cache miss, no hit counted) and the new entry list
        // must exclude it. No neighbour remains, so `pathloss_evals` stays
        // flat — the miss shows up in the hit counter instead.
        idx.update(1, Vec2::new(1900.0, 1000.0));
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime(20_000_000), &idx, &mut fx);
        let _ = run_rx_ends(&mut m, &fx);
        assert_eq!(
            m.stats().link_cache_hits,
            0,
            "stale cache served after movement"
        );
        assert!(
            !fx.iter()
                .any(|e| matches!(e, MediumEffect::Channel { node: 1, .. })),
            "out-of-range receiver still sensed from stale cache"
        );

        // Moving back within range forces another recompute that actually
        // re-evaluates the link budget.
        idx.update(1, Vec2::new(1200.0, 1000.0));
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime(40_000_000), &idx, &mut fx);
        assert!(
            m.stats().pathloss_evals > warm_evals,
            "no recompute after moving back"
        );
        assert!(
            fx.iter().any(|e| matches!(
                e,
                MediumEffect::Channel {
                    node: 1,
                    busy: true
                }
            )),
            "in-range receiver not sensing after recompute"
        );
    }

    #[test]
    fn cached_and_uncached_medium_agree() {
        let pos: Vec<Vec2> = (0..6)
            .map(|i| Vec2::new(150.0 + 180.0 * i as f64, 1000.0))
            .collect();
        let run = |cache: bool| {
            let phy = PhyParams::classic_802_11b();
            let idx = SpatialIndex::new(Region::square(2000.0), 300.0, &pos);
            let mut m = Medium::new(phy, pos.len(), SimRng::new(7), 25.0).with_link_cache(cache);
            let mut all = Vec::new();
            for round in 0..4u64 {
                for src in 0..pos.len() as u32 {
                    let mut fx = Vec::new();
                    let at = SimTime(round * 40_000_000 + src as u64 * 6_000_000);
                    m.start_tx(src, bcast_frame(src), None, at, &idx, &mut fx);
                    all.extend(run_rx_ends(&mut m, &fx));
                }
            }
            // Keep the rx power as raw bits: cached and uncached must be
            // bit-identical, not just approximately equal.
            let delivered: Vec<(u32, u32, u64)> = all
                .iter()
                .filter_map(|e| match e {
                    MediumEffect::Deliver {
                        node,
                        frame,
                        rx_dbm,
                        ..
                    } => Some((*node, frame.src.0, rx_dbm.to_bits())),
                    _ => None,
                })
                .collect();
            (delivered, m.stats().physics())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn down_node_neither_senses_nor_receives() {
        let pos = vec![Vec2::new(900.0, 1000.0), Vec2::new(1100.0, 1000.0)];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.set_node_down(1, SimTime::ZERO, &idx, &mut fx);
        assert!(m.is_down(1));
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        let done = run_rx_ends(&mut m, &fx);
        assert!(
            !fx.iter().chain(done.iter()).any(|e| matches!(
                e,
                MediumEffect::Channel { node: 1, .. } | MediumEffect::Deliver { node: 1, .. }
            )),
            "dead radio interacted with the medium"
        );
        // Reboot: the link cache must be invalidated so the node reappears.
        m.set_node_up(1, SimTime::from_millis(10), &idx);
        let mut fx = Vec::new();
        m.start_tx(
            0,
            bcast_frame(0),
            None,
            SimTime::from_millis(10),
            &idx,
            &mut fx,
        );
        let done = run_rx_ends(&mut m, &fx);
        assert!(done
            .iter()
            .any(|e| matches!(e, MediumEffect::Deliver { node: 1, .. })));
    }

    #[test]
    fn crash_mid_transmission_cuts_the_frame() {
        let pos = vec![Vec2::new(900.0, 1000.0), Vec2::new(1100.0, 1000.0)];
        let (mut m, idx) = setup(pos);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        assert!(m.sensed_busy(1));
        let mut cut = Vec::new();
        m.set_node_down(0, SimTime(1000), &idx, &mut cut);
        // The receiver's carrier sense clears with the aborted frame.
        assert!(cut.iter().any(|e| matches!(
            e,
            MediumEffect::Channel {
                node: 1,
                busy: false
            }
        )));
        // The already-scheduled TxEnd/RxEnd events find nothing — and panic
        // nothing.
        let done = run_rx_ends(&mut m, &fx);
        assert!(done.is_empty());
        assert!(m.active.is_empty());
    }

    #[test]
    fn noise_burst_destroys_reception_and_clears_exactly() {
        let pos = vec![Vec2::new(900.0, 1000.0), Vec2::new(1100.0, 1000.0)];
        let (mut m, idx) = setup(pos);
        m.apply_noise(0, 80.0, &[1]);
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        let done = run_rx_ends(&mut m, &fx);
        assert!(
            !done
                .iter()
                .any(|e| matches!(e, MediumEffect::Deliver { node: 1, .. })),
            "frame decoded through an 80 dB noise burst"
        );
        assert_eq!(m.stats().noise_losses, 1);
        // Burst over: the floor returns to exactly 0 dB extra.
        m.clear_noise(0);
        assert_eq!(m.extra_noise_db[1].to_bits(), 0f64.to_bits());
        let mut fx = Vec::new();
        m.start_tx(
            0,
            bcast_frame(0),
            None,
            SimTime::from_millis(10),
            &idx,
            &mut fx,
        );
        let done = run_rx_ends(&mut m, &fx);
        assert!(done
            .iter()
            .any(|e| matches!(e, MediumEffect::Deliver { node: 1, .. })));
    }

    #[test]
    fn link_shift_beyond_margin_silences_the_link() {
        let pos = vec![Vec2::new(900.0, 1000.0), Vec2::new(1100.0, 1000.0)];
        let (mut m, idx) = setup(pos);
        // Warm the cache first so the shift must invalidate it.
        let mut fx = Vec::new();
        m.start_tx(0, bcast_frame(0), None, SimTime::ZERO, &idx, &mut fx);
        let _ = run_rx_ends(&mut m, &fx);
        m.shift_node_atten(1, 60.0, &idx);
        let mut fx = Vec::new();
        m.start_tx(
            0,
            bcast_frame(0),
            None,
            SimTime::from_millis(10),
            &idx,
            &mut fx,
        );
        let done = run_rx_ends(&mut m, &fx);
        assert!(!done
            .iter()
            .any(|e| matches!(e, MediumEffect::Deliver { node: 1, .. })));
        // Undo restores the link exactly.
        m.shift_node_atten(1, -60.0, &idx);
        assert_eq!(m.node_atten_db[1].to_bits(), 0f64.to_bits());
        let mut fx = Vec::new();
        m.start_tx(
            0,
            bcast_frame(0),
            None,
            SimTime::from_millis(20),
            &idx,
            &mut fx,
        );
        let done = run_rx_ends(&mut m, &fx);
        assert!(done
            .iter()
            .any(|e| matches!(e, MediumEffect::Deliver { node: 1, .. })));
    }

    #[test]
    fn airtime_uses_basic_rate_for_broadcast() {
        let pos = vec![Vec2::new(0.0, 0.0)];
        let (m, _) = setup(pos);
        let b = m.airtime(&bcast_frame(0));
        let u = m.airtime(&ucast_frame(0, 1));
        // 100 B at 1 Mb/s vs 2 Mb/s (plus equal PLCP).
        assert_eq!(b.as_nanos() - 192_000, 2 * (u.as_nanos() - 192_000));
    }
}
