//! The unified simulation event vocabulary.

use wmn_mac::TimerKind;
use wmn_routing::{Packet, RoutingTimer};

/// Every event the integrated network world can process.
#[derive(Clone, Debug)]
pub enum Event {
    /// A MAC-layer timer at `node` (contention, ACK timeout, SIFS).
    MacTimer {
        /// Node index.
        node: u32,
        /// Which MAC timer.
        kind: TimerKind,
        /// Generation (stale generations are ignored by the MAC).
        gen: u64,
        /// Node incarnation the timer belongs to (stale incarnations —
        /// timers armed before a crash/reboot — are dropped on dispatch).
        inc: u32,
    },
    /// A routing-layer timer at `node`.
    RoutingTimer {
        /// Node index.
        node: u32,
        /// Timer payload.
        timer: RoutingTimer,
        /// Node incarnation the timer belongs to.
        inc: u32,
    },
    /// A transmission by `node` leaves the air.
    TxEnd {
        /// Transmitter.
        node: u32,
        /// Medium transmission id.
        tx_id: u64,
    },
    /// All reception windows for one transmission close (they share a single
    /// end instant, so one event serves every receiver).
    RxEnd {
        /// Medium transmission id.
        tx_id: u64,
    },
    /// A jittered routing broadcast is due for MAC submission.
    DelayedBroadcast {
        /// Origin node.
        node: u32,
        /// The packet to broadcast (boxed: these events are rare, and
        /// keeping `Event` small keeps every future-event-list operation
        /// cheap for the hot event kinds).
        packet: Box<Packet>,
        /// Node incarnation that queued the broadcast.
        inc: u32,
    },
    /// A flow emits its next packet.
    TrafficEmit {
        /// Index into the scenario's flow list.
        flow_idx: usize,
    },
    /// A mobility trajectory change at `node`.
    MobilityUpdate {
        /// Node index.
        node: u32,
    },
    /// Periodic spatial-index refresh for mobile nodes.
    PositionSample,
    /// Periodic telemetry probe: sample every node's cross-layer signals
    /// (queue occupancy, busy ratio, load estimate, rebroadcast
    /// probability). Only ever scheduled when telemetry is enabled, so a
    /// disabled run's event sequence is untouched.
    TelemetryProbe,
    /// A scheduled fault fires (index into the expanded fault schedule).
    /// Only ever primed when a fault plan is configured, so a no-fault
    /// run's event sequence is untouched.
    Fault {
        /// Index into the network's fault schedule.
        idx: u32,
    },
}
