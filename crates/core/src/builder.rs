//! Scenario construction — the library's main entry point.
//!
//! ```
//! use cnlr::{Scheme, ScenarioBuilder};
//! use wmn_sim::SimDuration;
//!
//! let results = ScenarioBuilder::new()
//!     .seed(1)
//!     .grid(4, 4, 180.0)
//!     .scheme(Scheme::Flooding)
//!     .flows(2, 2.0, 512)
//!     .duration(SimDuration::from_secs(15))
//!     .warmup(SimDuration::from_secs(3))
//!     .build()
//!     .expect("valid scenario")
//!     .run();
//! assert!(results.summary.sent > 0);
//! ```

use crate::event::Event;
use crate::medium::{LinkCacheSnapshot, Medium};
use crate::network::{Network, RebootKit};
use crate::node::{rng_domain, Node};
use crate::results::RunResults;
use crate::scheme::Scheme;
use wmn_faults::FaultPlan;
use wmn_mac::MacParams;
use wmn_mobility::MobilityConfig;
use wmn_radio::PhyParams;
use wmn_routing::{FlowId, NodeId, RoutingAction, RoutingConfig};
use wmn_sim::{Engine, SimDuration, SimRng, SimTime};
use wmn_telemetry::{next_run_id, SharedSink, Tel, TelemetryConfig};
use wmn_topology::{ConnectivityGraph, Placement, Region, SpatialIndex, Vec2};
use wmn_traffic::{FlowSpec, FlowState, FlowTracker, TrafficPattern};

/// Scenario-construction errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The generated topology was not connected after all retries.
    Disconnected,
    /// Fewer than two nodes — no flows possible.
    TooSmall,
    /// Could not find enough flow endpoint pairs with the requested
    /// separation.
    NoFlowPairs,
    /// [`ScenarioBuilder::build_with_prefix`] was handed a prefix built
    /// from different prefix-relevant settings (see
    /// [`ScenarioBuilder::prefix_fingerprint`]).
    PrefixMismatch,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Disconnected => write!(f, "topology not connected"),
            BuildError::TooSmall => write!(f, "need at least 2 nodes"),
            BuildError::NoFlowPairs => write!(f, "could not draw flow endpoints"),
            BuildError::PrefixMismatch => {
                write!(f, "scenario prefix built from different settings")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// An explicit sink override — opaque so the builder stays `Debug`.
#[derive(Clone)]
struct SinkOverride(SharedSink);

impl std::fmt::Debug for SinkOverride {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkOverride(..)")
    }
}

/// How flows are chosen.
#[derive(Clone, Debug)]
enum FlowPlan {
    Random {
        count: usize,
        pps: f64,
        payload: usize,
        min_hops: u32,
    },
    Explicit(Vec<FlowSpec>),
}

/// Fluent scenario builder.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    seed: u64,
    region: Region,
    placement: Placement,
    scheme: Scheme,
    phy: PhyParams,
    mac: MacParams,
    routing: RoutingConfig,
    backbone_mobility: MobilityConfig,
    mobile_clients: Option<(usize, MobilityConfig)>,
    flow_plan: FlowPlan,
    duration: SimDuration,
    warmup: SimDuration,
    require_connected: bool,
    position_sample: SimDuration,
    event_budget: u64,
    link_cache: bool,
    telemetry: Option<TelemetryConfig>,
    telemetry_sink: Option<SinkOverride>,
    faults: Option<FaultPlan>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// A 1000 m × 1000 m field with a 10×10 lightly-perturbed router grid,
    /// classic 802.11b PHY, flooding, no traffic.
    pub fn new() -> Self {
        ScenarioBuilder {
            seed: 1,
            region: Region::square(1000.0),
            placement: Placement::Grid {
                rows: 10,
                cols: 10,
                jitter_frac: 0.15,
            },
            scheme: Scheme::Flooding,
            phy: PhyParams::classic_802_11b(),
            mac: MacParams::default(),
            routing: RoutingConfig::default(),
            backbone_mobility: MobilityConfig::Static,
            mobile_clients: None,
            flow_plan: FlowPlan::Random {
                count: 0,
                pps: 4.0,
                payload: 512,
                min_hops: 2,
            },
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(10),
            require_connected: true,
            position_sample: SimDuration::from_millis(250),
            event_budget: u64::MAX,
            link_cache: true,
            telemetry: None,
            telemetry_sink: None,
            faults: None,
        }
    }

    /// Master seed (replications vary this).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Deployment field.
    pub fn region(mut self, region: Region) -> Self {
        self.region = region;
        self
    }

    /// `rows × cols` router grid scaled so that the grid pitch equals
    /// `pitch_m` (the field is resized accordingly).
    pub fn grid(mut self, rows: usize, cols: usize, pitch_m: f64) -> Self {
        self.region = Region::new(cols as f64 * pitch_m, rows as f64 * pitch_m);
        self.placement = Placement::Grid {
            rows,
            cols,
            jitter_frac: 0.15,
        };
        self
    }

    /// Arbitrary placement inside the current region.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Route-discovery scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// PHY parameter overrides.
    pub fn phy(mut self, phy: PhyParams) -> Self {
        self.phy = phy;
        self
    }

    /// MAC parameter overrides.
    pub fn mac(mut self, mac: MacParams) -> Self {
        self.mac = mac;
        self
    }

    /// Routing parameter overrides.
    pub fn routing(mut self, routing: RoutingConfig) -> Self {
        self.routing = routing;
        self
    }

    /// Make the backbone itself mobile (ad-hoc style scenarios).
    pub fn backbone_mobility(mut self, m: MobilityConfig) -> Self {
        self.backbone_mobility = m;
        self
    }

    /// Add `count` mobile client nodes with the given model.
    pub fn mobile_clients(mut self, count: usize, m: MobilityConfig) -> Self {
        self.mobile_clients = Some((count, m));
        self
    }

    /// `count` random CBR flows at `pps` packets/s with `payload`-byte
    /// packets between endpoints at least 2 hops apart.
    pub fn flows(mut self, count: usize, pps: f64, payload: usize) -> Self {
        self.flow_plan = FlowPlan::Random {
            count,
            pps,
            payload,
            min_hops: 2,
        };
        self
    }

    /// Like [`ScenarioBuilder::flows`] with an explicit hop-separation
    /// requirement.
    pub fn flows_min_hops(mut self, count: usize, pps: f64, payload: usize, min_hops: u32) -> Self {
        self.flow_plan = FlowPlan::Random {
            count,
            pps,
            payload,
            min_hops,
        };
        self
    }

    /// Fully explicit flow list.
    pub fn explicit_flows(mut self, flows: Vec<FlowSpec>) -> Self {
        self.flow_plan = FlowPlan::Explicit(flows);
        self
    }

    /// Total simulated time.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Statistics warm-up (flows start inside this window).
    pub fn warmup(mut self, w: SimDuration) -> Self {
        self.warmup = w;
        self
    }

    /// Whether to reject disconnected topologies (default true).
    pub fn require_connected(mut self, yes: bool) -> Self {
        self.require_connected = yes;
        self
    }

    /// Cap engine events (runaway protection in tests).
    pub fn event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Enable/disable the medium's link-budget cache (default enabled).
    ///
    /// Runs are bit-identical either way for the same seed — disabling only
    /// exists so the equivalence tests can prove exactly that.
    pub fn link_cache(mut self, enabled: bool) -> Self {
        self.link_cache = enabled;
        self
    }

    /// Explicit telemetry configuration. Default: resolved from the
    /// `WMN_TELEMETRY` family of environment variables at build time.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Route telemetry events into `sink` instead of the file named by the
    /// configuration (in-memory sinks for tests and in-process analysis).
    /// Implies nothing about enablement — the configuration still decides.
    pub fn telemetry_sink(mut self, sink: SharedSink) -> Self {
        self.telemetry_sink = Some(SinkOverride(sink));
        self
    }

    /// Inject a fault plan (node churn, noise bursts, link shifts). A plan
    /// that expands to no events leaves the run byte-identical to a build
    /// without one.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// FNV-1a over the prefix-relevant settings: everything that determines
    /// node positions and flow endpoints — seed, field, placement, PHY
    /// (its nominal range gates connectivity), mobile-client *count*,
    /// flow plan, duration/warmup (flow start/stop times) and the
    /// connectivity requirement. Deliberately excluded: the scheme, MAC /
    /// routing parameters, mobility models, faults, telemetry and cache
    /// settings — none of them are consulted before the world is assembled,
    /// so two builders that agree on this fingerprint draw bit-identical
    /// topologies and flows and may share one [`ScenarioPrefix`].
    pub fn prefix_fingerprint(&self) -> u64 {
        fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
        let key = format!(
            "seed={};region={:?}x{:?};placement={:?};phy={:?};clients={};\
             flows={:?};dur={};warm={};conn={}",
            self.seed,
            self.region.width,
            self.region.height,
            self.placement,
            self.phy,
            self.mobile_clients.as_ref().map_or(0, |(c, _)| *c),
            self.flow_plan,
            self.duration.as_nanos(),
            self.warmup.as_nanos(),
            self.require_connected,
        );
        fnv(0xCBF2_9CE4_8422_2325, key.as_bytes())
    }

    /// Build only the scheme-independent prefix: run the topology retry
    /// loop and draw the flow endpoints. The scenario RNG is consumed
    /// exclusively here, so [`ScenarioBuilder::build_with_prefix`] over the
    /// result is bit-identical to a direct [`ScenarioBuilder::build`] —
    /// that identity is what lets a batch scheduler build the prefix once
    /// and fan many schemes out over it.
    pub fn build_prefix(&self) -> Result<ScenarioPrefix, BuildError> {
        let mut scen_rng = SimRng::derive(self.seed, rng_domain::SCENARIO, 0);

        // --- Topology -------------------------------------------------
        let range = self.phy.nominal_range_m();
        let backbone_count = self.placement.count();
        let client_count = self.mobile_clients.as_ref().map_or(0, |(c, _)| *c);
        let total = backbone_count + client_count;
        if total < 2 {
            return Err(BuildError::TooSmall);
        }

        let mut positions = Vec::new();
        let mut graph = None;
        for _attempt in 0..50 {
            positions = self.placement.generate(self.region, &mut scen_rng);
            for _ in 0..client_count {
                positions.push(Vec2::new(
                    scen_rng.range_f64(0.0, self.region.width),
                    scen_rng.range_f64(0.0, self.region.height),
                ));
            }
            let g = ConnectivityGraph::from_positions(self.region, &positions, range);
            if !self.require_connected || g.is_connected() {
                graph = Some(g);
                break;
            }
            positions.clear();
        }
        let graph = graph.ok_or(BuildError::Disconnected)?;

        // --- Flows ----------------------------------------------------
        let flow_specs: Vec<FlowSpec> = match &self.flow_plan {
            FlowPlan::Explicit(fs) => fs.clone(),
            FlowPlan::Random {
                count,
                pps,
                payload,
                min_hops,
            } => {
                let mut specs = Vec::with_capacity(*count);
                let mut attempts = 0u32;
                while specs.len() < *count {
                    attempts += 1;
                    if attempts > 5000 {
                        return Err(BuildError::NoFlowPairs);
                    }
                    let src = scen_rng.below_usize(total);
                    let dst = scen_rng.below_usize(total);
                    if src == dst {
                        continue;
                    }
                    match graph.hop_distance(src, dst) {
                        Some(h) if h >= *min_hops => {}
                        _ => continue,
                    }
                    // Stagger starts across the first part of the warm-up.
                    let start = SimTime::ZERO
                        + SimDuration::from_millis(500)
                        + SimDuration(
                            scen_rng
                                .below(self.warmup.as_nanos().saturating_sub(500_000_000).max(1)),
                        );
                    specs.push(FlowSpec {
                        id: FlowId(specs.len() as u32),
                        src: NodeId(src as u32),
                        dst: NodeId(dst as u32),
                        payload: *payload,
                        start,
                        stop: SimTime::ZERO + self.duration,
                        pattern: TrafficPattern::cbr_pps(*pps),
                    });
                }
                specs
            }
        };

        Ok(ScenarioPrefix {
            fingerprint: self.prefix_fingerprint(),
            positions,
            flow_specs,
        })
    }

    /// Construct the simulation.
    pub fn build(self) -> Result<Simulation, BuildError> {
        let prefix = self.build_prefix()?;
        self.build_with_prefix(&prefix)
    }

    /// Assemble the world on top of a previously built prefix. The prefix
    /// must come from a builder that agrees on every prefix-relevant
    /// setting (same [`ScenarioBuilder::prefix_fingerprint`]); the scheme,
    /// MAC/routing parameters, mobility models, faults and telemetry may
    /// differ freely.
    pub fn build_with_prefix(self, prefix: &ScenarioPrefix) -> Result<Simulation, BuildError> {
        if prefix.fingerprint != self.prefix_fingerprint() {
            return Err(BuildError::PrefixMismatch);
        }
        let backbone_count = self.placement.count();
        let positions = &prefix.positions;
        let flow_specs = &prefix.flow_specs;
        let total = positions.len();

        // --- Nodes ----------------------------------------------------
        let mut nodes = Vec::with_capacity(total);
        for (i, &pos) in positions.iter().enumerate() {
            let mobility = if i < backbone_count {
                self.backbone_mobility
            } else {
                self.mobile_clients
                    .as_ref()
                    .expect("client without config")
                    .1
            };
            nodes.push(Node::new(
                i as u32,
                self.seed,
                self.mac.clone(),
                self.routing.clone(),
                self.scheme.build(),
                mobility,
                pos,
                self.region,
                SimTime::ZERO,
            ));
        }

        // --- Assembly ---------------------------------------------------
        let interference = self.phy.interference_range_m();
        let spatial = SpatialIndex::new(self.region, interference.max(50.0) / 2.0, positions);
        let medium = Medium::new(
            self.phy.clone(),
            total,
            SimRng::derive(self.seed, rng_domain::MEDIUM, 0),
            25.0,
        )
        .with_link_cache(self.link_cache);
        let tracker = FlowTracker::new(SimTime::ZERO + self.warmup);
        let flows: Vec<FlowState> = flow_specs.iter().copied().map(FlowState::new).collect();
        let traffic_rng = SimRng::derive(self.seed, rng_domain::TRAFFIC, 0);
        let mut network = Network::new(
            nodes,
            medium,
            spatial,
            tracker,
            flows,
            traffic_rng,
            self.position_sample,
        );

        // --- Engine priming --------------------------------------------
        let mut engine =
            Engine::new(SimTime::ZERO + self.duration).with_event_budget(self.event_budget);
        let mut acts = Vec::new();
        for i in 0..network.nodes.len() {
            acts.clear();
            network.nodes[i].routing.start(SimTime::ZERO, &mut acts);
            for a in acts.drain(..) {
                if let RoutingAction::SetTimer { timer, at } = a {
                    engine.prime(
                        at,
                        Event::RoutingTimer {
                            node: i as u32,
                            timer,
                            inc: 0,
                        },
                    );
                }
            }
            if network.nodes[i].mobility.is_mobile() {
                let next = network.nodes[i].mobility.next_update();
                if next != SimTime::MAX {
                    engine.prime(next, Event::MobilityUpdate { node: i as u32 });
                }
            }
        }
        if network.any_mobile() {
            engine.prime(SimTime::ZERO + self.position_sample, Event::PositionSample);
        }
        for (idx, spec) in flow_specs.iter().enumerate() {
            engine.prime(spec.start, Event::TrafficEmit { flow_idx: idx });
        }

        // --- Faults -----------------------------------------------------
        // A plan that expands to nothing primes nothing and installs
        // nothing, so fault-free runs stay byte-identical to a build
        // without fault support.
        if let Some(plan) = &self.faults {
            let horizon = SimTime::ZERO + self.duration;
            let schedule = plan.expand(
                self.seed,
                total as u32,
                self.region.width,
                self.region.height,
                horizon,
            );
            if !schedule.is_empty() {
                for (idx, f) in schedule.iter().enumerate() {
                    engine.prime(f.at, Event::Fault { idx: idx as u32 });
                }
                network.set_faults(
                    schedule,
                    RebootKit {
                        master_seed: self.seed,
                        mac: self.mac.clone(),
                        routing: self.routing.clone(),
                        scheme: self.scheme.clone(),
                    },
                );
            }
        }

        // --- Telemetry --------------------------------------------------
        // Wired last so the probe event is only ever primed for enabled
        // runs: a disabled run's event sequence is untouched and therefore
        // byte-identical to a build without telemetry support.
        let tel_cfg = self
            .telemetry
            .clone()
            .unwrap_or_else(TelemetryConfig::from_env);
        if tel_cfg.enabled {
            let sink = self
                .telemetry_sink
                .as_ref()
                .map(|s| s.0.clone())
                .or_else(|| tel_cfg.open_sink());
            if let Some(sink) = sink {
                let tel = Tel::new(sink, next_run_id());
                network.set_telemetry(tel, tel_cfg.probe_interval, tel_cfg.profile);
                if let Some(tick) = tel_cfg.probe_interval {
                    engine.prime(SimTime::ZERO + tick, Event::TelemetryProbe);
                }
            }
        }

        let scheme_label = self.scheme.label();
        let measured = self.duration.saturating_sub(self.warmup);
        Ok(Simulation {
            engine,
            network,
            scheme_label,
            measured,
        })
    }
}

/// The scheme-independent prefix of a scenario: the accepted topology
/// (backbone + client positions) and the drawn flow specs. Everything the
/// scenario RNG ever produces lives here, so any builder with the same
/// [`ScenarioBuilder::prefix_fingerprint`] can assemble a bit-identical
/// world from one shared prefix — the dedup unit of the batch scheduler.
#[derive(Clone, Debug)]
pub struct ScenarioPrefix {
    fingerprint: u64,
    positions: Vec<Vec2>,
    flow_specs: Vec<FlowSpec>,
}

impl ScenarioPrefix {
    /// The fingerprint of the builder settings this prefix was drawn from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total node count (backbone + clients).
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of flows drawn.
    pub fn flow_count(&self) -> usize {
        self.flow_specs.len()
    }
}

/// A fully-primed simulation, ready to run.
pub struct Simulation {
    engine: Engine<Event>,
    /// The network world (public for white-box integration tests).
    pub network: Network,
    scheme_label: String,
    measured: SimDuration,
}

impl Simulation {
    /// Install a cooperative cancellation flag (see
    /// [`Engine::with_interrupt`]): once set, the run stops within 1024
    /// events and [`Simulation::run_with_reason`] reports
    /// [`wmn_sim::StopReason::Interrupted`]. A flag that is never raised
    /// leaves the run byte-identical.
    pub fn interrupt(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.engine = self.engine.with_interrupt(flag);
        self
    }

    /// Import a warm link-budget cache exported from an identical-topology
    /// run (see [`Medium::import_link_cache`]). Returns whether the import
    /// was accepted. Purely a performance hand-off: accepted or not, the
    /// run's results are bit-identical.
    pub fn import_link_cache(&mut self, snap: &LinkCacheSnapshot) -> bool {
        self.network
            .medium
            .import_link_cache(snap, &self.network.spatial)
    }

    /// Run to the horizon and collect results.
    pub fn run(self) -> RunResults {
        self.run_with_network().0
    }

    /// Run to the horizon, returning both the aggregate results and the
    /// final network state (per-flow trackers, per-node tables and stats —
    /// for white-box analysis and the per-flow examples).
    pub fn run_with_network(self) -> (RunResults, Network) {
        let (results, network, _) = self.run_full();
        (results, network)
    }

    /// Like [`Simulation::run_with_network`], additionally reporting why
    /// the engine stopped — the scheduler uses this to distinguish a
    /// cancelled run (results must be discarded) from a completed one.
    pub fn run_full(mut self) -> (RunResults, Network, wmn_sim::StopReason) {
        let report = self.engine.run(&mut self.network);
        self.network.flush_telemetry();
        let results = RunResults::collect(&self.network, &report, self.scheme_label, self.measured);
        let reason = report.reason;
        (results, self.network, reason)
    }
}
