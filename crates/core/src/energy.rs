//! Per-node radio energy accounting.
//!
//! The classic WaveLAN measurement model (Feeney & Nilsson, INFOCOM 2001):
//! constant power draw per radio mode, integrated over mode residence
//! times. Energy per delivered packet is the evaluation's efficiency
//! metric — broadcast-storm schemes burn energy in redundant RREQ
//! receptions, CNLR's damping shows up directly here.

use wmn_sim::SimTime;

/// Power draw per radio mode, watts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyParams {
    /// Transmitting.
    pub tx_w: f64,
    /// Actively receiving a frame.
    pub rx_w: f64,
    /// Idle listening (carrier sensing included — the dominant drain in
    /// real 802.11 radios).
    pub idle_w: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        // WaveLAN 2.4 GHz measurements (Feeney–Nilsson): 1.327 W tx,
        // 0.900 W rx, 0.739 W idle.
        EnergyParams {
            tx_w: 1.327,
            rx_w: 0.900,
            idle_w: 0.739,
        }
    }
}

/// Radio operating mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RadioMode {
    /// Idle/listening.
    Idle,
    /// Receiving a frame.
    Rx,
    /// Transmitting.
    Tx,
    /// Powered down (crashed node — a fault-schedule state, zero draw).
    Off,
}

impl EnergyParams {
    /// Power draw in `mode`, watts.
    pub fn power(&self, mode: RadioMode) -> f64 {
        match mode {
            RadioMode::Idle => self.idle_w,
            RadioMode::Rx => self.rx_w,
            RadioMode::Tx => self.tx_w,
            RadioMode::Off => 0.0,
        }
    }
}

/// One node's energy integrator (per-mode breakdown).
#[derive(Clone, Copy, Debug)]
pub struct EnergyMeter {
    mode: RadioMode,
    since: SimTime,
    /// Accumulated joules per mode: `[idle, rx, tx, off]`.
    joules: [f64; 4],
}

fn mode_index(mode: RadioMode) -> usize {
    match mode {
        RadioMode::Idle => 0,
        RadioMode::Rx => 1,
        RadioMode::Tx => 2,
        RadioMode::Off => 3,
    }
}

impl EnergyMeter {
    /// Start metering at `t0` in idle mode.
    pub fn new(t0: SimTime) -> Self {
        EnergyMeter {
            mode: RadioMode::Idle,
            since: t0,
            joules: [0.0; 4],
        }
    }

    /// Switch to `mode` at `now`, accumulating the previous residence.
    pub fn set_mode(&mut self, mode: RadioMode, now: SimTime, params: &EnergyParams) {
        if mode == self.mode {
            return;
        }
        self.joules[mode_index(self.mode)] +=
            params.power(self.mode) * now.since(self.since).as_secs_f64();
        self.mode = mode;
        self.since = now;
    }

    fn with_open_interval(&self, until: SimTime, params: &EnergyParams) -> [f64; 4] {
        let mut j = self.joules;
        j[mode_index(self.mode)] += params.power(self.mode) * until.since(self.since).as_secs_f64();
        j
    }

    /// Total energy consumed up to `until`, joules.
    pub fn total_joules(&self, until: SimTime, params: &EnergyParams) -> f64 {
        self.with_open_interval(until, params).iter().sum()
    }

    /// Communication-only energy (tx + rx, excluding idle listening) up to
    /// `until`, joules — the metric that discriminates protocol overhead
    /// (idle draw is identical across schemes by construction).
    pub fn comm_joules(&self, until: SimTime, params: &EnergyParams) -> f64 {
        let j = self.with_open_interval(until, params);
        j[1] + j[2]
    }

    /// Current mode.
    pub fn mode(&self) -> RadioMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn idle_only_integrates_idle_power() {
        let p = EnergyParams::default();
        let m = EnergyMeter::new(t(0));
        let e = m.total_joules(t(10_000), &p);
        assert!((e - 0.739 * 10.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn mode_transitions_accumulate() {
        let p = EnergyParams {
            tx_w: 2.0,
            rx_w: 1.0,
            idle_w: 0.5,
        };
        let mut m = EnergyMeter::new(t(0));
        m.set_mode(RadioMode::Tx, t(1_000), &p); // 1 s idle = 0.5 J
        m.set_mode(RadioMode::Rx, t(2_000), &p); // 1 s tx = 2.0 J
        m.set_mode(RadioMode::Idle, t(4_000), &p); // 2 s rx = 2.0 J
        let e = m.total_joules(t(6_000), &p); // + 2 s idle = 1.0 J
        assert!((e - 5.5).abs() < 1e-12, "{e}");
        assert_eq!(m.mode(), RadioMode::Idle);
        // Communication energy = 2.0 (tx) + 2.0 (rx).
        let c = m.comm_joules(t(6_000), &p);
        assert!((c - 4.0).abs() < 1e-12, "{c}");
    }

    #[test]
    fn redundant_mode_set_is_noop() {
        let p = EnergyParams::default();
        let mut m = EnergyMeter::new(t(0));
        m.set_mode(RadioMode::Idle, t(5_000), &p);
        // `since` must not advance (no double counting at the old rate).
        let e = m.total_joules(t(10_000), &p);
        assert!((e - 0.739 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn off_mode_draws_nothing() {
        let p = EnergyParams::default();
        let mut m = EnergyMeter::new(t(0));
        m.set_mode(RadioMode::Off, t(1_000), &p); // 1 s idle
        m.set_mode(RadioMode::Idle, t(9_000), &p); // 8 s off = 0 J
        let e = m.total_joules(t(10_000), &p); // + 1 s idle
        assert!((e - 0.739 * 2.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn tx_costs_more_than_idle() {
        let p = EnergyParams::default();
        let mut tx = EnergyMeter::new(t(0));
        tx.set_mode(RadioMode::Tx, t(0), &p);
        let idle = EnergyMeter::new(t(0));
        assert!(tx.total_joules(t(1_000), &p) > idle.total_joules(t(1_000), &p));
    }
}
