//! Scheme selection: one enum covering the paper's contribution and every
//! baseline it is compared against.

use crate::policy::{CnlrConfig, CnlrPolicy, VapCnlr, VapConfig};
use wmn_routing::{CounterBased, DistanceBased, Flooding, Gossip, GossipK, RebroadcastPolicy};
use wmn_sim::SimDuration;

/// A route-discovery scheme under evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum Scheme {
    /// Blind flooding (classic AODV discovery).
    Flooding,
    /// GOSSIP1(p) fixed-probability forwarding.
    Gossip {
        /// Forwarding probability.
        p: f64,
    },
    /// GOSSIP1(p, k): flood for the first `k` hops.
    GossipK {
        /// Forwarding probability beyond hop `k`.
        p: f64,
        /// Certain-forwarding hop horizon.
        k: u8,
    },
    /// Counter-based suppression.
    Counter {
        /// Duplicate threshold.
        threshold: u32,
        /// Maximum random assessment delay.
        rad: SimDuration,
    },
    /// Distance-based suppression (RSSI-inferred): suppress first copies
    /// received above `strong_dbm`.
    Distance {
        /// Suppression power threshold, dBm.
        strong_dbm: f64,
    },
    /// Cross-layer Neighbourhood Load Routing (the paper's contribution).
    Cnlr(CnlrConfig),
    /// CNLR with velocity-aware damping (mobile-client extension).
    VapCnlr(CnlrConfig, VapConfig),
}

impl Scheme {
    /// The canonical baseline set the evaluation sweeps over.
    pub fn evaluation_set() -> Vec<Scheme> {
        vec![
            Scheme::Flooding,
            Scheme::Gossip { p: 0.65 },
            Scheme::Counter {
                threshold: 3,
                rad: SimDuration::from_millis(10),
            },
            Scheme::Cnlr(CnlrConfig::default()),
        ]
    }

    /// Instantiate the policy object.
    pub fn build(&self) -> Box<dyn RebroadcastPolicy> {
        match self {
            Scheme::Flooding => Box::new(Flooding::new()),
            Scheme::Gossip { p } => Box::new(Gossip::new(*p)),
            Scheme::GossipK { p, k } => Box::new(GossipK::new(*p, *k)),
            Scheme::Counter { threshold, rad } => Box::new(CounterBased::new(*threshold, *rad)),
            Scheme::Distance { strong_dbm } => Box::new(DistanceBased::new(*strong_dbm)),
            Scheme::Cnlr(cfg) => Box::new(CnlrPolicy::new(*cfg)),
            Scheme::VapCnlr(cfg, vap) => Box::new(VapCnlr::new(*cfg, *vap)),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Scheme::Flooding => "flooding".into(),
            Scheme::Gossip { p } => format!("gossip({p:.2})"),
            Scheme::GossipK { p, k } => format!("gossip({p:.2},k{k})"),
            Scheme::Counter { threshold, .. } => format!("counter(C{threshold})"),
            Scheme::Distance { strong_dbm } => format!("distance({strong_dbm:.0}dBm)"),
            Scheme::Cnlr(_) => "cnlr".into(),
            Scheme::VapCnlr(..) => "vap-cnlr".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_correct_policies() {
        assert_eq!(Scheme::Flooding.build().name(), "flooding");
        assert_eq!(Scheme::Gossip { p: 0.5 }.build().name(), "gossip");
        assert_eq!(Scheme::GossipK { p: 0.5, k: 2 }.build().name(), "gossip-k");
        assert_eq!(
            Scheme::Counter {
                threshold: 3,
                rad: SimDuration::from_millis(10)
            }
            .build()
            .name(),
            "counter"
        );
        assert_eq!(
            Scheme::Distance { strong_dbm: -75.0 }.build().name(),
            "distance"
        );
        assert_eq!(Scheme::Cnlr(CnlrConfig::default()).build().name(), "cnlr");
        assert_eq!(
            Scheme::VapCnlr(CnlrConfig::default(), VapConfig::default())
                .build()
                .name(),
            "vap-cnlr"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let set = Scheme::evaluation_set();
        let mut labels: Vec<String> = set.iter().map(Scheme::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), set.len());
    }
}
