//! Scheme selection: one enum covering the paper's contribution and every
//! baseline it is compared against.

use crate::policy::{CnlrConfig, CnlrPolicy, VapCnlr, VapConfig};
use wmn_routing::{CounterBased, DistanceBased, Flooding, Gossip, GossipK, RebroadcastPolicy};
use wmn_sim::SimDuration;

/// A route-discovery scheme under evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum Scheme {
    /// Blind flooding (classic AODV discovery).
    Flooding,
    /// GOSSIP1(p) fixed-probability forwarding.
    Gossip {
        /// Forwarding probability.
        p: f64,
    },
    /// GOSSIP1(p, k): flood for the first `k` hops.
    GossipK {
        /// Forwarding probability beyond hop `k`.
        p: f64,
        /// Certain-forwarding hop horizon.
        k: u8,
    },
    /// Counter-based suppression.
    Counter {
        /// Duplicate threshold.
        threshold: u32,
        /// Maximum random assessment delay.
        rad: SimDuration,
    },
    /// Distance-based suppression (RSSI-inferred): suppress first copies
    /// received above `strong_dbm`.
    Distance {
        /// Suppression power threshold, dBm.
        strong_dbm: f64,
    },
    /// Cross-layer Neighbourhood Load Routing (the paper's contribution).
    Cnlr(CnlrConfig),
    /// CNLR with velocity-aware damping (mobile-client extension).
    VapCnlr(CnlrConfig, VapConfig),
}

impl Scheme {
    /// The canonical baseline set the evaluation sweeps over.
    pub fn evaluation_set() -> Vec<Scheme> {
        vec![
            Scheme::Flooding,
            Scheme::Gossip { p: 0.65 },
            Scheme::Counter {
                threshold: 3,
                rad: SimDuration::from_millis(10),
            },
            Scheme::Cnlr(CnlrConfig::default()),
        ]
    }

    /// Instantiate the policy object.
    pub fn build(&self) -> Box<dyn RebroadcastPolicy> {
        match self {
            Scheme::Flooding => Box::new(Flooding::new()),
            Scheme::Gossip { p } => Box::new(Gossip::new(*p)),
            Scheme::GossipK { p, k } => Box::new(GossipK::new(*p, *k)),
            Scheme::Counter { threshold, rad } => Box::new(CounterBased::new(*threshold, *rad)),
            Scheme::Distance { strong_dbm } => Box::new(DistanceBased::new(*strong_dbm)),
            Scheme::Cnlr(cfg) => Box::new(CnlrPolicy::new(*cfg)),
            Scheme::VapCnlr(cfg, vap) => Box::new(VapCnlr::new(*cfg, *vap)),
        }
    }

    /// Parse a scheme spec string — the grammar shared by `wmn-sim
    /// --scheme`, scenario-service job specs and `wmn-submit`:
    ///
    /// ```text
    /// flooding | gossip:P | gossip:P:K | counter:C | counter:C:RAD_MS |
    /// distance:DBM | cnlr | vap
    /// ```
    pub fn parse(s: &str) -> Result<Scheme, String> {
        let parts: Vec<&str> = s.split(':').collect();
        match parts[0] {
            "flooding" | "flood" => Ok(Scheme::Flooding),
            "gossip" => {
                let p: f64 = parts
                    .get(1)
                    .ok_or("gossip needs :P")?
                    .parse()
                    .map_err(|e| format!("bad gossip p: {e}"))?;
                if let Some(k) = parts.get(2) {
                    let k: u8 = k.parse().map_err(|e| format!("bad gossip k: {e}"))?;
                    Ok(Scheme::GossipK { p, k })
                } else {
                    Ok(Scheme::Gossip { p })
                }
            }
            "counter" => {
                let c: u32 = parts
                    .get(1)
                    .ok_or("counter needs :C")?
                    .parse()
                    .map_err(|e| format!("bad counter threshold: {e}"))?;
                let rad = match parts.get(2) {
                    Some(ms) => {
                        let ms: f64 = ms.parse().map_err(|e| format!("bad counter rad: {e}"))?;
                        if ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                            return Err("counter rad must be positive".into());
                        }
                        SimDuration::from_secs_f64(ms / 1000.0)
                    }
                    None => SimDuration::from_millis(10),
                };
                Ok(Scheme::Counter { threshold: c, rad })
            }
            "distance" => {
                let dbm: f64 = parts
                    .get(1)
                    .ok_or("distance needs :DBM")?
                    .parse()
                    .map_err(|e| format!("bad distance threshold: {e}"))?;
                Ok(Scheme::Distance { strong_dbm: dbm })
            }
            "cnlr" => Ok(Scheme::Cnlr(CnlrConfig::default())),
            "vap" | "vap-cnlr" => Ok(Scheme::VapCnlr(CnlrConfig::default(), VapConfig::default())),
            other => Err(format!("unknown scheme '{other}'")),
        }
    }

    /// The spec string [`Scheme::parse`] round-trips. CNLR/VAP policy
    /// parameter overrides are not expressible in the grammar, so those
    /// variants serialise as their default-config spec.
    pub fn spec_string(&self) -> String {
        match self {
            Scheme::Flooding => "flooding".into(),
            Scheme::Gossip { p } => format!("gossip:{p}"),
            Scheme::GossipK { p, k } => format!("gossip:{p}:{k}"),
            Scheme::Counter { threshold, rad } => {
                if *rad == SimDuration::from_millis(10) {
                    format!("counter:{threshold}")
                } else {
                    format!("counter:{threshold}:{}", rad.as_secs_f64() * 1000.0)
                }
            }
            Scheme::Distance { strong_dbm } => format!("distance:{strong_dbm}"),
            Scheme::Cnlr(_) => "cnlr".into(),
            Scheme::VapCnlr(..) => "vap".into(),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Scheme::Flooding => "flooding".into(),
            Scheme::Gossip { p } => format!("gossip({p:.2})"),
            Scheme::GossipK { p, k } => format!("gossip({p:.2},k{k})"),
            Scheme::Counter { threshold, .. } => format!("counter(C{threshold})"),
            Scheme::Distance { strong_dbm } => format!("distance({strong_dbm:.0}dBm)"),
            Scheme::Cnlr(_) => "cnlr".into(),
            Scheme::VapCnlr(..) => "vap-cnlr".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_correct_policies() {
        assert_eq!(Scheme::Flooding.build().name(), "flooding");
        assert_eq!(Scheme::Gossip { p: 0.5 }.build().name(), "gossip");
        assert_eq!(Scheme::GossipK { p: 0.5, k: 2 }.build().name(), "gossip-k");
        assert_eq!(
            Scheme::Counter {
                threshold: 3,
                rad: SimDuration::from_millis(10)
            }
            .build()
            .name(),
            "counter"
        );
        assert_eq!(
            Scheme::Distance { strong_dbm: -75.0 }.build().name(),
            "distance"
        );
        assert_eq!(Scheme::Cnlr(CnlrConfig::default()).build().name(), "cnlr");
        assert_eq!(
            Scheme::VapCnlr(CnlrConfig::default(), VapConfig::default())
                .build()
                .name(),
            "vap-cnlr"
        );
    }

    #[test]
    fn parse_covers_the_grammar() {
        assert_eq!(Scheme::parse("flooding").unwrap(), Scheme::Flooding);
        assert_eq!(Scheme::parse("flood").unwrap(), Scheme::Flooding);
        assert_eq!(
            Scheme::parse("gossip:0.5").unwrap(),
            Scheme::Gossip { p: 0.5 }
        );
        assert_eq!(
            Scheme::parse("gossip:0.5:2").unwrap(),
            Scheme::GossipK { p: 0.5, k: 2 }
        );
        assert_eq!(
            Scheme::parse("counter:4").unwrap(),
            Scheme::Counter {
                threshold: 4,
                rad: SimDuration::from_millis(10)
            }
        );
        assert_eq!(
            Scheme::parse("counter:3:25").unwrap(),
            Scheme::Counter {
                threshold: 3,
                rad: SimDuration::from_millis(25)
            }
        );
        assert!(matches!(
            Scheme::parse("distance:-75").unwrap(),
            Scheme::Distance { .. }
        ));
        assert!(matches!(Scheme::parse("cnlr").unwrap(), Scheme::Cnlr(_)));
        assert!(matches!(Scheme::parse("vap").unwrap(), Scheme::VapCnlr(..)));
        for bad in [
            "nope",
            "gossip",
            "gossip:x",
            "counter",
            "counter:2:0",
            "distance",
        ] {
            assert!(Scheme::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn spec_strings_roundtrip() {
        let mut set = Scheme::evaluation_set();
        set.push(Scheme::GossipK { p: 0.7, k: 2 });
        set.push(Scheme::Distance { strong_dbm: -75.5 });
        set.push(Scheme::Counter {
            threshold: 5,
            rad: SimDuration::from_millis(25),
        });
        set.push(Scheme::VapCnlr(CnlrConfig::default(), VapConfig::default()));
        for s in set {
            let spec = s.spec_string();
            assert_eq!(Scheme::parse(&spec).unwrap(), s, "roundtrip of {spec}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let set = Scheme::evaluation_set();
        let mut labels: Vec<String> = set.iter().map(Scheme::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), set.len());
    }
}
