//! The per-node protocol stack: MAC + routing + mobility + payload store.

use std::collections::HashMap;
use wmn_mac::{Mac, MacAddr, MacParams, MacSdu, MacStats};
use wmn_mobility::{Mobility, MobilityConfig};
use wmn_routing::{
    CrossLayer, NodeId, Packet, RebroadcastPolicy, Routing, RoutingConfig, RoutingStats,
};
use wmn_sim::{SimRng, SimTime};
use wmn_topology::{Region, Vec2};

/// RNG stream domains (one per layer, so layer refactors don't shift other
/// layers' draws).
pub mod rng_domain {
    /// MAC backoff draws.
    pub const MAC: u64 = 1;
    /// Routing jitter/policy draws.
    pub const ROUTING: u64 = 2;
    /// Mobility draws.
    pub const MOBILITY: u64 = 3;
    /// Medium (PER) draws.
    pub const MEDIUM: u64 = 4;
    /// Scenario construction.
    pub const SCENARIO: u64 = 5;
    /// Traffic inter-arrival draws.
    pub const TRAFFIC: u64 = 6;
    // Domain 7 is reserved by `wmn_faults::RNG_DOMAIN_FAULTS` (fault
    // schedules draw their own streams so enabling a model never perturbs
    // the layers above).
}

/// One mesh node's full stack.
pub struct Node {
    /// Network/link address (dense index).
    pub id: u32,
    /// Link layer.
    pub mac: Mac,
    /// Network layer.
    pub routing: Routing,
    /// Motion model.
    pub mobility: Mobility,
    /// Mobility RNG stream.
    pub mobility_rng: SimRng,
    /// Payloads of SDUs currently queued at / in flight through the MAC.
    pub outgoing: HashMap<u64, Packet>,
    /// True while the node is crashed (fault schedule).
    pub down: bool,
    /// Reboot count: 0 for the boot-time stack, bumped on every reboot.
    /// Stale-incarnation timer events are dropped on dispatch.
    pub incarnation: u32,
    /// MAC counters retired by crashes (reboots start a fresh `Mac`; run
    /// totals must still include what the dead incarnations did).
    pub retired_mac: MacStats,
    /// Routing counters retired by crashes.
    pub retired_routing: RoutingStats,
    next_sdu: u64,
}

impl Node {
    /// Assemble a node.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        master_seed: u64,
        mac_params: MacParams,
        routing_config: RoutingConfig,
        policy: Box<dyn RebroadcastPolicy>,
        mobility_config: MobilityConfig,
        start: Vec2,
        region: Region,
        now: SimTime,
    ) -> Self {
        let mac = Mac::new(
            MacAddr(id),
            mac_params,
            SimRng::derive(master_seed, rng_domain::MAC, id as u64),
        );
        let routing = Routing::new(
            NodeId(id),
            routing_config,
            policy,
            SimRng::derive(master_seed, rng_domain::ROUTING, id as u64),
        );
        let mut mobility_rng = SimRng::derive(master_seed, rng_domain::MOBILITY, id as u64);
        let mobility = Mobility::new(mobility_config, start, region, now, &mut mobility_rng);
        Node {
            id,
            mac,
            routing,
            mobility,
            mobility_rng,
            outgoing: HashMap::new(),
            down: false,
            incarnation: 0,
            retired_mac: MacStats::default(),
            retired_routing: RoutingStats::default(),
            next_sdu: 1,
        }
    }

    /// Restart the protocol stack cold after a crash: fresh MAC and
    /// routing state (empty tables, empty neighbour set) on new RNG
    /// streams salted with the incarnation so a rebooted node never
    /// replays its pre-crash draws. Counters of the dead incarnation are
    /// retired into `retired_mac`/`retired_routing`; position, mobility
    /// state and the SDU-id counter survive (the node is the same box at
    /// the same place — only its volatile state is lost).
    pub fn reboot(
        &mut self,
        master_seed: u64,
        mac_params: MacParams,
        routing_config: RoutingConfig,
        policy: Box<dyn RebroadcastPolicy>,
    ) {
        self.incarnation += 1;
        self.retired_mac.accumulate(self.mac.stats());
        self.retired_routing.accumulate(self.routing.stats());
        let stream = self.id as u64 | ((self.incarnation as u64) << 32);
        self.mac = Mac::new(
            MacAddr(self.id),
            mac_params,
            SimRng::derive(master_seed, rng_domain::MAC, stream),
        );
        self.routing = Routing::new(
            NodeId(self.id),
            routing_config,
            policy,
            SimRng::derive(master_seed, rng_domain::ROUTING, stream),
        );
        self.outgoing.clear();
        self.down = false;
    }

    /// Build the MAC SDU for `packet` towards link destination `dst`,
    /// remembering the payload for later correlation.
    pub fn make_sdu(&mut self, packet: Packet, dst: MacAddr) -> MacSdu {
        let id = self.next_sdu;
        self.next_sdu += 1;
        let bytes = packet.wire_bytes();
        let priority = !matches!(packet, Packet::Data(_));
        self.outgoing.insert(id, packet);
        MacSdu {
            id,
            dst,
            bytes,
            priority,
        }
    }

    /// Reclaim (and forget) the payload of a completed/dropped SDU.
    pub fn take_payload(&mut self, sdu_id: u64) -> Option<Packet> {
        self.outgoing.remove(&sdu_id)
    }

    /// Cross-layer snapshot for the routing layer.
    pub fn cross_layer(&mut self, now: SimTime) -> CrossLayer {
        let v = self.mobility.velocity(now);
        CrossLayer {
            own_load: self.mac.load_digest(now),
            own_velocity: (v.x, v.y),
            last_rx_dbm: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_routing::Flooding;

    fn node(id: u32) -> Node {
        Node::new(
            id,
            42,
            MacParams::default(),
            RoutingConfig::default(),
            Box::new(Flooding::new()),
            MobilityConfig::Static,
            Vec2::new(10.0, 10.0),
            Region::square(100.0),
            SimTime::ZERO,
        )
    }

    #[test]
    fn sdu_ids_are_unique_and_payloads_tracked() {
        let mut n = node(0);
        let p1 = Packet::Rerr(wmn_routing::Rerr {
            unreachable: vec![],
        });
        let p2 = Packet::Rerr(wmn_routing::Rerr {
            unreachable: vec![(NodeId(1), 2)],
        });
        let s1 = n.make_sdu(p1.clone(), MacAddr(5));
        let s2 = n.make_sdu(p2.clone(), wmn_mac::BROADCAST);
        assert_ne!(s1.id, s2.id);
        assert_eq!(s1.bytes, p1.wire_bytes());
        assert_eq!(n.take_payload(s2.id), Some(p2));
        assert_eq!(n.take_payload(s2.id), None, "payload taken twice");
        assert_eq!(n.take_payload(s1.id), Some(p1));
    }

    #[test]
    fn cross_layer_snapshot_for_static_node() {
        let mut n = node(1);
        let c = n.cross_layer(SimTime::from_secs(1));
        assert_eq!(c.own_velocity, (0.0, 0.0));
        assert_eq!(c.own_load.queue_util, 0.0);
    }

    #[test]
    fn reboot_starts_cold_with_retired_stats_and_fresh_streams() {
        let mut n = node(0);
        // Loopback send: bumps data_originated/delivered on the live stack.
        let mut actions = Vec::new();
        let loopback = wmn_routing::DataPacket {
            flow: wmn_routing::FlowId(0),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(0),
            payload: 64,
            created: SimTime::ZERO,
        };
        n.routing.send_data(loopback, SimTime::ZERO, &mut actions);
        assert_eq!(n.routing.stats().data_originated, 1);
        let p = Packet::Rerr(wmn_routing::Rerr {
            unreachable: vec![],
        });
        let sdu = n.make_sdu(p, MacAddr(5));
        n.down = true;
        n.reboot(
            42,
            MacParams::default(),
            RoutingConfig::default(),
            Box::new(Flooding::new()),
        );
        assert!(!n.down);
        assert_eq!(n.incarnation, 1);
        assert_eq!(n.retired_routing.data_originated, 1);
        assert_eq!(
            n.routing.stats().data_originated,
            0,
            "new stack starts cold"
        );
        assert!(
            n.outgoing.is_empty(),
            "queued payloads do not survive a crash"
        );
        // SDU ids keep counting up so old in-flight ids can never collide.
        let p2 = Packet::Rerr(wmn_routing::Rerr {
            unreachable: vec![],
        });
        assert!(n.make_sdu(p2, MacAddr(5)).id > sdu.id);
    }

    #[test]
    fn per_node_rng_streams_differ() {
        let mut a = SimRng::derive(42, rng_domain::MAC, 0);
        let mut b = SimRng::derive(42, rng_domain::MAC, 1);
        let mut c = SimRng::derive(42, rng_domain::ROUTING, 0);
        let x = a.next_u64();
        assert_ne!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
    }
}
