//! The paper's contribution: Cross-layer Neighbourhood Load Routing.
//!
//! CNLR replaces blind RREQ flooding with a **load-adaptive rebroadcast
//! probability** and biases route selection towards lightly-loaded paths:
//!
//! 1. Each node maintains a *neighbourhood load index* `L ∈ [0, 1]` — a
//!    weighted blend of its own MAC digest (interface-queue utilisation and
//!    channel-busy ratio, [`wmn_mac::LoadDigest`]) and the digests its
//!    neighbours piggyback on HELLO beacons.
//! 2. A first-copy RREQ is rebroadcast with probability
//!    `p = p_max − (p_max − p_min)·L`, optionally damped by local density
//!    (`(n_ref / n)^γ`, the classic probabilistic-broadcast density
//!    correction).
//! 3. Forwarded RREQs accumulate `L` into their `path_load` field; routes
//!    are selected by the combined cost `hops + β·path_load`, so among the
//!    discovered paths the origin prefers the one through the quietest
//!    region.
//!
//! The VAP extension ([`VapCnlr`]) additionally damps forwarding across
//! unstable links: the probability is multiplied by
//! `exp(−|v_self − v_sender| / v_ref)`, excluding fast-diverging nodes from
//! route construction (the group's velocity-aware route discovery line of
//! work).

use wmn_routing::{Decision, RebroadcastPolicy, Rreq, RreqContext};
use wmn_sim::{SimDuration, SimRng};

/// CNLR tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CnlrConfig {
    /// Rebroadcast probability in an idle neighbourhood.
    pub p_max: f64,
    /// Probability floor in a saturated neighbourhood (connectivity safety
    /// net — never let discovery die completely).
    pub p_min: f64,
    /// Weight of queue utilisation within a digest's scalar index.
    pub w_queue: f64,
    /// Weight of channel-busy ratio within a digest's scalar index.
    pub w_busy: f64,
    /// Weight of the node's own digest vs. the neighbourhood mean
    /// (1.0 = own only; 0.0 = neighbours only).
    pub w_self: f64,
    /// Route-cost weight of accumulated path load (`cost = hops + β·load`).
    pub beta_load: f64,
    /// Density-correction reference degree (`γ = 0` disables).
    pub density_ref: f64,
    /// Density-correction exponent.
    pub density_gamma: f64,
    /// Maximum forwarding jitter.
    pub jitter_max: SimDuration,
}

impl Default for CnlrConfig {
    fn default() -> Self {
        CnlrConfig {
            p_max: 0.95,
            p_min: 0.35,
            w_queue: 1.0,
            w_busy: 1.0,
            w_self: 0.5,
            beta_load: 2.0,
            density_ref: 8.0,
            density_gamma: 0.0,
            jitter_max: SimDuration::from_millis(10),
        }
    }
}

impl CnlrConfig {
    /// The aggregated neighbourhood-load index for a context.
    pub fn neighbourhood_load(&self, ctx: &RreqContext) -> f64 {
        let own = ctx.own_load.index(self.w_queue, self.w_busy);
        let nbr = match (ctx.nbr_mean_queue, ctx.nbr_mean_busy) {
            (Some(q), Some(b)) => {
                let denom = (self.w_queue + self.w_busy).max(f64::EPSILON);
                Some(((self.w_queue * q + self.w_busy * b) / denom).clamp(0.0, 1.0))
            }
            _ => None,
        };
        match nbr {
            Some(n) => (self.w_self * own + (1.0 - self.w_self) * n).clamp(0.0, 1.0),
            None => own,
        }
    }

    /// The load-adaptive rebroadcast probability for a context.
    pub fn probability(&self, ctx: &RreqContext) -> f64 {
        let load = self.neighbourhood_load(ctx);
        let mut p = self.p_max - (self.p_max - self.p_min) * load;
        if self.density_gamma > 0.0 && ctx.neighbor_count > 0 {
            let corr = (self.density_ref / ctx.neighbor_count as f64)
                .powf(self.density_gamma)
                .min(1.0);
            p *= corr;
        }
        p.clamp(self.p_min.min(self.p_max), self.p_max)
    }
}

/// The CNLR rebroadcast policy.
#[derive(Clone, Debug)]
pub struct CnlrPolicy {
    config: CnlrConfig,
}

impl CnlrPolicy {
    /// Create with the given tuning.
    pub fn new(config: CnlrConfig) -> Self {
        assert!(config.p_min >= 0.0 && config.p_max <= 1.0 && config.p_min <= config.p_max);
        assert!((0.0..=1.0).contains(&config.w_self));
        CnlrPolicy { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CnlrConfig {
        &self.config
    }
}

impl RebroadcastPolicy for CnlrPolicy {
    fn on_first_copy(&mut self, _rreq: &Rreq, ctx: &RreqContext, rng: &mut SimRng) -> Decision {
        let p = self.config.probability(ctx);
        if rng.chance(p) {
            Decision::Forward {
                jitter: wmn_routing::policy::draw_jitter(self.config.jitter_max, rng),
            }
        } else {
            Decision::Discard
        }
    }

    fn annotate(&mut self, rreq: &mut Rreq, ctx: &RreqContext) {
        rreq.path_load += self.config.neighbourhood_load(ctx);
    }

    fn route_cost(&self, hop_count: u8, path_load: f64) -> f64 {
        hop_count as f64 + self.config.beta_load * path_load
    }

    fn forward_probability(&self, ctx: &RreqContext) -> f64 {
        self.config.probability(ctx)
    }

    fn load_estimate(&self, ctx: &RreqContext) -> f64 {
        self.config.neighbourhood_load(ctx)
    }

    fn name(&self) -> &'static str {
        "cnlr"
    }
}

/// Velocity-aware configuration for [`VapCnlr`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VapConfig {
    /// Relative-speed scale (m/s) of the stability damping
    /// `exp(−Δv / v_ref)`.
    pub v_ref: f64,
    /// Hard floor so discovery survives in all-mobile scenarios.
    pub p_floor: f64,
}

impl Default for VapConfig {
    fn default() -> Self {
        VapConfig {
            v_ref: 10.0,
            p_floor: 0.15,
        }
    }
}

/// CNLR with velocity-aware link-stability damping (the "velocity-aware
/// niche" extension): forwarding over links whose endpoints diverge fast is
/// suppressed, excluding unstable hops from constructed routes.
#[derive(Clone, Debug)]
pub struct VapCnlr {
    base: CnlrConfig,
    vap: VapConfig,
}

impl VapCnlr {
    /// Combine the CNLR core with velocity damping.
    pub fn new(base: CnlrConfig, vap: VapConfig) -> Self {
        assert!(vap.v_ref > 0.0 && (0.0..=1.0).contains(&vap.p_floor));
        VapCnlr { base, vap }
    }

    fn stability(&self, ctx: &RreqContext) -> f64 {
        match ctx.sender_velocity {
            Some((svx, svy)) => {
                let (ovx, ovy) = ctx.own_velocity;
                let dv = ((ovx - svx).powi(2) + (ovy - svy).powi(2)).sqrt();
                (-dv / self.vap.v_ref).exp()
            }
            // Unknown sender velocity (no HELLO yet): assume stable.
            None => 1.0,
        }
    }
}

impl RebroadcastPolicy for VapCnlr {
    fn on_first_copy(&mut self, _rreq: &Rreq, ctx: &RreqContext, rng: &mut SimRng) -> Decision {
        let p = (self.base.probability(ctx) * self.stability(ctx)).max(self.vap.p_floor);
        if rng.chance(p) {
            Decision::Forward {
                jitter: wmn_routing::policy::draw_jitter(self.base.jitter_max, rng),
            }
        } else {
            Decision::Discard
        }
    }

    fn annotate(&mut self, rreq: &mut Rreq, ctx: &RreqContext) {
        // Unstable links also contribute extra cost so stable routes win.
        let instability = 1.0 - self.stability(ctx);
        rreq.path_load += self.base.neighbourhood_load(ctx) + instability;
    }

    fn route_cost(&self, hop_count: u8, path_load: f64) -> f64 {
        hop_count as f64 + self.base.beta_load * path_load
    }

    fn forward_probability(&self, ctx: &RreqContext) -> f64 {
        (self.base.probability(ctx) * self.stability(ctx)).max(self.vap.p_floor)
    }

    fn load_estimate(&self, ctx: &RreqContext) -> f64 {
        self.base.neighbourhood_load(ctx)
    }

    fn name(&self) -> &'static str {
        "vap-cnlr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_mac::LoadDigest;
    use wmn_routing::{NodeId, RreqKey};
    use wmn_sim::SimTime;

    fn ctx(own: f64, nbr: Option<f64>, neighbors: usize) -> RreqContext {
        RreqContext {
            now: SimTime::ZERO,
            prior_copies: 0,
            neighbor_count: neighbors,
            own_load: LoadDigest {
                queue_util: own,
                busy_ratio: own,
                mac_service_s: 0.0,
            },
            nbr_mean_queue: nbr,
            nbr_mean_busy: nbr,
            own_velocity: (0.0, 0.0),
            sender_velocity: None,
            rx_power_dbm: None,
        }
    }

    fn rreq() -> Rreq {
        Rreq {
            key: RreqKey {
                origin: NodeId(0),
                id: 1,
            },
            origin_seq: 1,
            target: NodeId(9),
            target_seq: None,
            hop_count: 2,
            path_load: 0.0,
            ttl: 30,
        }
    }

    #[test]
    fn probability_spans_pmin_pmax() {
        let c = CnlrConfig::default();
        assert!((c.probability(&ctx(0.0, Some(0.0), 8)) - c.p_max).abs() < 1e-12);
        assert!((c.probability(&ctx(1.0, Some(1.0), 8)) - c.p_min).abs() < 1e-12);
        let mid = c.probability(&ctx(0.5, Some(0.5), 8));
        assert!((mid - (c.p_max + c.p_min) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn probability_monotone_in_load() {
        let c = CnlrConfig::default();
        let mut last = 1.1;
        for i in 0..=10 {
            let l = i as f64 / 10.0;
            let p = c.probability(&ctx(l, Some(l), 8));
            assert!(p <= last);
            last = p;
        }
    }

    #[test]
    fn own_only_when_no_neighbors() {
        let c = CnlrConfig::default();
        let l = c.neighbourhood_load(&ctx(0.8, None, 0));
        assert!((l - 0.8).abs() < 1e-12);
    }

    #[test]
    fn w_self_blends() {
        let c = CnlrConfig {
            w_self: 0.25,
            ..CnlrConfig::default()
        };
        let l = c.neighbourhood_load(&ctx(0.8, Some(0.4), 5));
        assert!((l - (0.25 * 0.8 + 0.75 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn density_correction_reduces_p_in_dense_areas() {
        let mut c = CnlrConfig {
            density_gamma: 1.0,
            ..CnlrConfig::default()
        };
        c.density_ref = 8.0;
        let sparse = c.probability(&ctx(0.0, Some(0.0), 4));
        let dense = c.probability(&ctx(0.0, Some(0.0), 32));
        assert!(dense < sparse, "dense {dense} vs sparse {sparse}");
        assert!(dense >= c.p_min);
        // Correction never boosts above p_max in sparse areas.
        assert!(sparse <= c.p_max + 1e-12);
    }

    #[test]
    fn decision_statistics_track_probability() {
        let mut p = CnlrPolicy::new(CnlrConfig::default());
        let mut rng = SimRng::new(1);
        let busy = ctx(1.0, Some(1.0), 8);
        let n = 20_000;
        let fwd = (0..n)
            .filter(|_| {
                matches!(
                    p.on_first_copy(&rreq(), &busy, &mut rng),
                    Decision::Forward { .. }
                )
            })
            .count();
        let frac = fwd as f64 / n as f64;
        assert!(
            (frac - 0.35).abs() < 0.02,
            "saturated forwarding rate {frac}"
        );
    }

    #[test]
    fn annotate_accumulates_load() {
        let mut p = CnlrPolicy::new(CnlrConfig::default());
        let mut r = rreq();
        p.annotate(&mut r, &ctx(0.6, Some(0.6), 8));
        assert!((r.path_load - 0.6).abs() < 1e-12);
        p.annotate(&mut r, &ctx(0.2, Some(0.2), 8));
        assert!((r.path_load - 0.8).abs() < 1e-12);
    }

    #[test]
    fn route_cost_penalises_load() {
        let p = CnlrPolicy::new(CnlrConfig::default());
        // 3 hops quiet vs 3 hops loaded.
        assert!(p.route_cost(3, 0.0) < p.route_cost(3, 1.0));
        // A short loaded path can lose to a longer quiet one.
        assert!(p.route_cost(4, 0.0) < p.route_cost(3, 1.0));
        assert_eq!(p.name(), "cnlr");
    }

    #[test]
    fn vap_damps_by_relative_speed() {
        let v = VapCnlr::new(CnlrConfig::default(), VapConfig::default());
        let mut fast = ctx(0.0, Some(0.0), 8);
        fast.sender_velocity = Some((20.0, 0.0));
        fast.own_velocity = (-10.0, 0.0); // Δv = 30 m/s
        let mut slow = ctx(0.0, Some(0.0), 8);
        slow.sender_velocity = Some((1.0, 0.0));
        slow.own_velocity = (0.0, 0.0); // Δv = 1 m/s
        let s_fast = v.stability(&fast);
        let s_slow = v.stability(&slow);
        assert!(s_fast < 0.1, "fast link stability {s_fast}");
        assert!(s_slow > 0.9, "slow link stability {s_slow}");
    }

    #[test]
    fn vap_floor_preserves_discovery() {
        let mut v = VapCnlr::new(
            CnlrConfig::default(),
            VapConfig {
                v_ref: 1.0,
                p_floor: 0.2,
            },
        );
        let mut c = ctx(1.0, Some(1.0), 8);
        c.sender_velocity = Some((100.0, 0.0));
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let fwd = (0..n)
            .filter(|_| {
                matches!(
                    v.on_first_copy(&rreq(), &c, &mut rng),
                    Decision::Forward { .. }
                )
            })
            .count();
        let frac = fwd as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "floored rate {frac}");
        assert_eq!(v.name(), "vap-cnlr");
    }

    #[test]
    fn vap_annotate_adds_instability_cost() {
        let mut v = VapCnlr::new(CnlrConfig::default(), VapConfig::default());
        let mut stable = ctx(0.0, Some(0.0), 8);
        stable.sender_velocity = Some((0.0, 0.0));
        let mut unstable = stable;
        unstable.sender_velocity = Some((50.0, 0.0));
        let mut r1 = rreq();
        let mut r2 = rreq();
        v.annotate(&mut r1, &stable);
        v.annotate(&mut r2, &unstable);
        assert!(r2.path_load > r1.path_load + 0.9);
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        CnlrPolicy::new(CnlrConfig {
            p_min: 0.9,
            p_max: 0.3,
            ..CnlrConfig::default()
        });
    }
}
