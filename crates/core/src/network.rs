//! The integrated network world: event dispatch across all layers.
//!
//! All cross-layer plumbing happens here through an explicit work queue:
//! MAC actions, routing actions and medium effects are drained iteratively
//! (never recursively), so arbitrarily long action chains — a reception that
//! triggers a forward that fills a queue that starts a transmission — are
//! processed within one event without stack growth.

use crate::event::Event;
use crate::medium::{Medium, MediumEffect};
use crate::node::Node;
use std::collections::VecDeque;
use wmn_mac::{DropReason, MacAction, MacAddr, TimerKind, BROADCAST};
use wmn_routing::{DataDropReason, DataPacket, NodeId, Packet, RoutingAction};
use wmn_telemetry::{DropReason as TelDrop, EventKind, Tel};
use wmn_sim::{Scheduler, SimDuration, SimTime, World};
use wmn_sim::SimRng;
use wmn_topology::SpatialIndex;
use wmn_metrics::{ProbeSeries, TimeSeries};
use wmn_traffic::{FlowState, FlowTracker};

/// Network-layer data-loss counters by cause.
#[derive(Clone, Copy, Debug, Default)]
pub struct DropCounters {
    /// Interface queue overflow.
    pub queue_full: u64,
    /// No route at an intermediate hop.
    pub no_route: u64,
    /// Discovery buffer overflow at the origin.
    pub buffer_overflow: u64,
    /// Route discovery failed after all retries.
    pub discovery_failed: u64,
    /// Link-layer retry limit on the path.
    pub link_failure: u64,
    /// Packet expired in the origin buffer (RREQ TTL exhausted). Was
    /// previously folded into `discovery_failed`.
    pub expired: u64,
    /// Control packets (RREQ/RREP/RERR/HELLO) rejected by a full interface
    /// queue. Not part of [`DropCounters::total`], which counts data only.
    pub ctrl_queue_full: u64,
}

impl DropCounters {
    /// Total dropped data packets.
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.no_route
            + self.buffer_overflow
            + self.discovery_failed
            + self.link_failure
            + self.expired
    }

    /// Visit every counter as a stable snake_case `(name, value)` pair —
    /// the export consumed by the unified `wmn_telemetry::Counters`
    /// registry. Names are part of the trace/manifest format; they match
    /// `counter_for_drop` on the corresponding `DropReason`.
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("drop_queue_full", self.queue_full);
        f("drop_no_route", self.no_route);
        f("drop_buffer_overflow", self.buffer_overflow);
        f("drop_discovery_failed", self.discovery_failed);
        f("drop_link_failure", self.link_failure);
        f("drop_expired", self.expired);
        f("drop_ctrl_queue_full", self.ctrl_queue_full);
    }
}

enum Work {
    Mac(u32, MacAction),
    Routing(u32, RoutingAction),
    Medium(MediumEffect),
}

/// The simulated network (implements [`World`]).
pub struct Network {
    /// All node stacks.
    pub nodes: Vec<Node>,
    /// The shared radio medium.
    pub medium: Medium,
    /// Positions (kept fresh for mobile nodes by sampling events).
    pub spatial: SpatialIndex,
    /// Per-flow delivery bookkeeping.
    pub tracker: FlowTracker,
    /// Flow emission state.
    pub flows: Vec<FlowState>,
    /// Data-loss counters.
    pub drops: DropCounters,
    /// Per-second delivery events (for convergence/transient views).
    pub delivery_timeline: TimeSeries,
    /// Periodic cross-layer probe feed (empty unless telemetry probes ran).
    pub probes: ProbeSeries,
    /// Events dispatched to this world (mirrors the engine's count; the
    /// world sees every dispatched event exactly once).
    pub events_handled: u64,
    tel: Tel,
    probe_interval: Option<SimDuration>,
    profile: bool,
    /// Wall-clock anchor of the previous engine probe: `(instant, events)`.
    probe_anchor: Option<(std::time::Instant, u64)>,
    traffic_rng: SimRng,
    position_sample: SimDuration,
    work: VecDeque<Work>,
    /// Reusable action/effect buffers: one short-lived `Vec` per event adds
    /// up to hundreds of thousands of allocations per run, so each layer's
    /// output is collected into a recycled buffer instead. A buffer is
    /// `take`n before the layer call and returned (empty) right after the
    /// drain, so the call sites never hold two of the same kind at once.
    scratch_mac: Vec<MacAction>,
    scratch_routing: Vec<RoutingAction>,
    scratch_fx: Vec<MediumEffect>,
    /// One gate per (node, MAC timer kind); see [`TimerGate`].
    timer_gates: Vec<[TimerGate; 3]>,
}

/// Heap-traffic gate for MAC timers.
///
/// The DCF re-arms its Main timer on every carrier-sense edge and cancels
/// the previous arming with a generation bump, so under load most scheduled
/// timer events fire stale and no-op — they exist only to be discarded.
/// Instead of pushing every re-arm into the future-event list, the gate
/// keeps the newest request *parked* while an event with an earlier-or-equal
/// deadline is already in flight, and re-issues it when that event fires.
/// A parked request that is superseded before the fire is dropped outright:
/// generations are strictly increasing per kind, so its delivery would have
/// been a stale no-op anyway. The MAC sees exactly the same live-generation
/// `on_timer` calls either way.
#[derive(Clone, Copy, Default)]
struct TimerGate {
    /// Scheduled (not yet fired) events for this (node, kind).
    inflight: u32,
    /// Deadline of the in-flight event; only valid while `known`.
    front_at: SimTime,
    /// True only while exactly one event is in flight and its deadline is
    /// tracked. With two or more in flight the earliest deadline is no
    /// longer cheap to know, so the gate stops parking until they drain
    /// (parking against an unknown deadline could re-issue into the past).
    known: bool,
    /// Parked request `(deadline, gen)`, re-issued at the next fire.
    deferred: Option<(SimTime, u64)>,
}

fn timer_ix(kind: TimerKind) -> usize {
    match kind {
        TimerKind::Main => 0,
        TimerKind::Ack => 1,
        TimerKind::Nav => 2,
    }
}

impl Network {
    /// Assemble a network (used by the scenario builder).
    pub fn new(
        nodes: Vec<Node>,
        medium: Medium,
        spatial: SpatialIndex,
        tracker: FlowTracker,
        flows: Vec<FlowState>,
        traffic_rng: SimRng,
        position_sample: SimDuration,
    ) -> Self {
        let n_nodes = nodes.len();
        Network {
            nodes,
            medium,
            spatial,
            tracker,
            flows,
            drops: DropCounters::default(),
            delivery_timeline: TimeSeries::new(SimDuration::from_secs(1)),
            probes: ProbeSeries::new(SimDuration::from_secs(1)),
            events_handled: 0,
            tel: Tel::off(),
            probe_interval: None,
            profile: false,
            probe_anchor: None,
            traffic_rng,
            position_sample,
            work: VecDeque::with_capacity(64),
            scratch_mac: Vec::with_capacity(8),
            scratch_routing: Vec::with_capacity(8),
            scratch_fx: Vec::with_capacity(64),
            timer_gates: vec![[TimerGate::default(); 3]; n_nodes],
        }
    }

    /// True if any node can move.
    pub fn any_mobile(&self) -> bool {
        self.nodes.iter().any(|n| n.mobility.is_mobile())
    }

    /// Wire a telemetry handle through every layer: the medium, each
    /// node's MAC and routing engine (re-homed to its node id), and the
    /// network-level emitters. `probe_interval` enables the periodic
    /// cross-layer probe (the builder primes the first tick); `profile`
    /// additionally samples the event loop itself.
    pub fn set_telemetry(
        &mut self,
        tel: Tel,
        probe_interval: Option<SimDuration>,
        profile: bool,
    ) {
        self.medium.set_telemetry(tel.clone());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let t = tel.for_node(i as u32);
            node.mac.set_telemetry(t.clone());
            node.routing.set_telemetry(t);
        }
        if let Some(tick) = probe_interval {
            self.probes = ProbeSeries::new(tick);
        }
        self.tel = tel;
        self.probe_interval = probe_interval;
        self.profile = profile;
    }

    /// Whether probe ticks should be scheduled (telemetry on + interval).
    pub fn probes_enabled(&self) -> bool {
        self.tel.on() && self.probe_interval.is_some()
    }

    /// Flush the telemetry sink (end of run).
    pub fn flush_telemetry(&self) {
        self.tel.flush();
    }

    /// Run one telemetry probe tick: sample every node's cross-layer
    /// signals, then (under `profile`) the event loop itself.
    fn telemetry_probe(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        for i in 0..self.nodes.len() {
            let cross = self.nodes[i].cross_layer(now);
            let rp = self.nodes[i].routing.probe(&cross, now);
            self.probes.record(
                now,
                cross.own_load.queue_util,
                cross.own_load.busy_ratio,
                rp.load,
                rp.forward_probability,
            );
            self.tel.emit_at(
                i as u32,
                now,
                EventKind::NodeProbe {
                    queue: cross.own_load.queue_util,
                    busy: cross.own_load.busy_ratio,
                    load: rp.load,
                    fwd_p: rp.forward_probability,
                },
            );
        }
        if self.profile {
            let wall = std::time::Instant::now();
            let rate = match self.probe_anchor {
                Some((t0, e0)) => {
                    let dt = wall.duration_since(t0).as_secs_f64();
                    if dt > 0.0 { (self.events_handled - e0) as f64 / dt } else { 0.0 }
                }
                None => 0.0,
            };
            self.probe_anchor = Some((wall, self.events_handled));
            self.tel.emit_at(
                0,
                now,
                EventKind::EngineProbe {
                    events: self.events_handled,
                    rate,
                    heap: sched.pending() as u64,
                },
            );
        }
        if let Some(tick) = self.probe_interval {
            let next = now + tick;
            if next <= sched.horizon() {
                sched.at(next, Event::TelemetryProbe);
            }
        }
    }

    fn drain(&mut self, sched: &mut Scheduler<Event>) {
        let now = sched.now();
        while let Some(w) = self.work.pop_front() {
            match w {
                Work::Mac(node, act) => self.apply_mac(node, act, now, sched),
                Work::Routing(node, act) => self.apply_routing(node, act, now, sched),
                Work::Medium(eff) => self.apply_medium(eff, now, sched),
            }
        }
    }

    fn queue_mac(&mut self, node: u32, acts: &mut Vec<MacAction>) {
        self.work.extend(acts.drain(..).map(|a| Work::Mac(node, a)));
    }

    fn queue_routing(&mut self, node: u32, acts: &mut Vec<RoutingAction>) {
        self.work.extend(acts.drain(..).map(|a| Work::Routing(node, a)));
    }

    fn queue_medium(&mut self, effects: &mut Vec<MediumEffect>) {
        self.work.extend(effects.drain(..).map(Work::Medium));
    }

    fn submit_to_mac(&mut self, node: u32, packet: Packet, dst: MacAddr, now: SimTime) {
        let n = &mut self.nodes[node as usize];
        let sdu = n.make_sdu(packet, dst);
        let mut acts = std::mem::take(&mut self.scratch_mac);
        self.nodes[node as usize].mac.enqueue(sdu, now, &mut acts);
        self.queue_mac(node, &mut acts);
        self.scratch_mac = acts;
    }

    fn apply_mac(&mut self, node: u32, act: MacAction, now: SimTime, sched: &mut Scheduler<Event>) {
        match act {
            MacAction::StartTx(frame) => {
                let payload = if frame.kind == wmn_mac::FrameKind::Data {
                    self.nodes[node as usize].outgoing.get(&frame.sdu_id).cloned()
                } else {
                    None
                };
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.medium.start_tx(node, frame, payload, now, &self.spatial, &mut fx);
                self.queue_medium(&mut fx);
                self.scratch_fx = fx;
            }
            MacAction::Deliver(frame) => {
                // Deliveries are normally intercepted in `apply_medium`; a
                // bare Deliver without payload can only be an ACK-free test
                // path — ignore defensively.
                debug_assert!(frame.sdu_id != 0, "unexpected bare Deliver");
            }
            MacAction::TxOutcome { sdu_id, dst, ok, retries: _ } => {
                let payload = self.nodes[node as usize].take_payload(sdu_id);
                if !ok {
                    let cross = self.nodes[node as usize].cross_layer(now);
                    let _ = cross;
                    let mut racts = std::mem::take(&mut self.scratch_routing);
                    self.nodes[node as usize].routing.on_link_failure(
                        NodeId(dst.0),
                        payload,
                        now,
                        &mut racts,
                    );
                    self.queue_routing(node, &mut racts);
                    self.scratch_routing = racts;
                }
            }
            MacAction::SetTimer { kind, at, gen } => {
                let g = &mut self.timer_gates[node as usize][timer_ix(kind)];
                if g.known && at >= g.front_at {
                    // An event with an earlier-or-equal deadline is already
                    // in flight: park this request behind it (replacing any
                    // older, now-stale parked one).
                    g.deferred = Some((at, gen));
                } else {
                    g.deferred = None;
                    g.inflight += 1;
                    g.known = g.inflight == 1;
                    g.front_at = at;
                    sched.at(at, Event::MacTimer { node, kind, gen });
                }
            }
            MacAction::Drop { sdu_id, reason } => match reason {
                DropReason::QueueFull => {
                    match self.nodes[node as usize].take_payload(sdu_id) {
                        Some(Packet::Data(data)) => {
                            self.drops.queue_full += 1;
                            self.tel.emit_at(
                                node,
                                now,
                                EventKind::DataDrop {
                                    reason: TelDrop::QueueFull,
                                    flow: data.flow.0,
                                    seq: data.seq,
                                },
                            );
                        }
                        // Control packets rejected by a full interface
                        // queue were previously discarded uncounted.
                        Some(_) => {
                            self.drops.ctrl_queue_full += 1;
                            self.tel.emit_at(
                                node,
                                now,
                                EventKind::CtrlDrop { reason: TelDrop::QueueFull },
                            );
                        }
                        None => {}
                    }
                }
                // Retry-limit drops are followed by TxOutcome{ok: false},
                // which owns the payload hand-off to routing (the packet's
                // terminal fate — salvage or LinkFailure — is decided there).
                DropReason::RetryLimit => {}
            },
        }
    }

    fn apply_routing(
        &mut self,
        node: u32,
        act: RoutingAction,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        match act {
            RoutingAction::Broadcast { packet, delay } => {
                if delay.is_zero() {
                    self.submit_to_mac(node, packet, BROADCAST, now);
                } else {
                    sched.after(delay, Event::DelayedBroadcast { node, packet: Box::new(packet) });
                }
            }
            RoutingAction::Unicast { packet, next_hop } => {
                self.submit_to_mac(node, packet, MacAddr(next_hop.0), now);
            }
            RoutingAction::Deliver(data) => {
                self.tel.emit_at(
                    node,
                    now,
                    EventKind::DataDeliver { flow: data.flow.0, seq: data.seq },
                );
                self.tracker.on_delivered(data.flow, data.created, now, data.payload);
                self.delivery_timeline.mark(now);
            }
            RoutingAction::SetTimer { timer, at } => {
                sched.at(at, Event::RoutingTimer { node, timer });
            }
            RoutingAction::DataDropped { packet, reason } => {
                let why = match reason {
                    DataDropReason::NoRoute => {
                        self.drops.no_route += 1;
                        TelDrop::NoRoute
                    }
                    DataDropReason::BufferOverflow => {
                        self.drops.buffer_overflow += 1;
                        TelDrop::BufferOverflow
                    }
                    DataDropReason::DiscoveryFailed => {
                        self.drops.discovery_failed += 1;
                        TelDrop::DiscoveryFailed
                    }
                    DataDropReason::LinkFailure => {
                        self.drops.link_failure += 1;
                        TelDrop::LinkFailure
                    }
                    // Was previously folded into `discovery_failed`.
                    DataDropReason::Expired => {
                        self.drops.expired += 1;
                        TelDrop::Expired
                    }
                };
                self.tel.emit_at(
                    node,
                    now,
                    EventKind::DataDrop { reason: why, flow: packet.flow.0, seq: packet.seq },
                );
            }
        }
    }

    fn apply_medium(&mut self, eff: MediumEffect, now: SimTime, sched: &mut Scheduler<Event>) {
        match eff {
            MediumEffect::Channel { node, busy } => {
                let mut acts = std::mem::take(&mut self.scratch_mac);
                self.nodes[node as usize].mac.on_channel(busy, now, &mut acts);
                self.queue_mac(node, &mut acts);
                self.scratch_mac = acts;
            }
            MediumEffect::ScheduleTxEnd { node, tx_id, at } => {
                sched.at(at, Event::TxEnd { node, tx_id });
            }
            MediumEffect::ScheduleRxEnd { tx_id, at } => {
                sched.at(at, Event::RxEnd { tx_id });
            }
            MediumEffect::TxComplete { node } => {
                let mut acts = std::mem::take(&mut self.scratch_mac);
                self.nodes[node as usize].mac.on_tx_complete(now, &mut acts);
                self.queue_mac(node, &mut acts);
                self.scratch_mac = acts;
            }
            MediumEffect::Deliver { node, frame, packet, rx_dbm } => {
                let mut acts = std::mem::take(&mut self.scratch_mac);
                self.nodes[node as usize].mac.on_rx_frame(frame, now, &mut acts);
                for a in acts.drain(..) {
                    if let MacAction::Deliver(f) = a {
                        if let Some(pkt) = packet.clone() {
                            let from = NodeId(f.src.0);
                            let mut cross = self.nodes[node as usize].cross_layer(now);
                            cross.last_rx_dbm = Some(rx_dbm);
                            let mut racts = std::mem::take(&mut self.scratch_routing);
                            self.nodes[node as usize].routing.on_packet(
                                pkt, from, &cross, now, &mut racts,
                            );
                            self.queue_routing(node, &mut racts);
                            self.scratch_routing = racts;
                        }
                    } else {
                        self.work.push_back(Work::Mac(node, a));
                    }
                }
                self.scratch_mac = acts;
            }
        }
    }

    fn emit_traffic(&mut self, flow_idx: usize, now: SimTime, sched: &mut Scheduler<Event>) {
        let (seq, next) = self.flows[flow_idx].emit(now, &mut self.traffic_rng);
        let spec = *self.flows[flow_idx].spec();
        let data = DataPacket {
            flow: spec.id,
            seq,
            src: spec.src,
            dst: spec.dst,
            payload: spec.payload,
            created: now,
        };
        self.tracker.on_sent(spec.id, now);
        self.tel
            .emit_at(spec.src.0, now, EventKind::DataOriginate { flow: spec.id.0, seq });
        let mut racts = std::mem::take(&mut self.scratch_routing);
        self.nodes[spec.src.index()].routing.send_data(data, now, &mut racts);
        self.queue_routing(spec.src.0, &mut racts);
        self.scratch_routing = racts;
        if let Some(t) = next {
            if t <= sched.horizon() {
                sched.at(t, Event::TrafficEmit { flow_idx });
            }
        }
    }

    fn update_position(&mut self, node: u32, now: SimTime) {
        let n = &mut self.nodes[node as usize];
        let p = n.mobility.position(now);
        self.spatial.update(node as usize, p);
    }
}

impl World for Network {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut Scheduler<Event>) {
        let now = sched.now();
        self.events_handled += 1;
        match event {
            Event::MacTimer { node, kind, gen } => {
                let g = &mut self.timer_gates[node as usize][timer_ix(kind)];
                debug_assert!(g.inflight > 0, "timer fire with empty gate");
                g.inflight -= 1;
                g.known = false;
                if let Some((at, dgen)) = g.deferred.take() {
                    // A parked request can only exist behind a single
                    // in-flight event, so the gate is empty here and the
                    // re-issue (at `at >= now`) becomes its sole occupant.
                    g.inflight += 1;
                    g.known = g.inflight == 1;
                    g.front_at = at;
                    sched.at(at, Event::MacTimer { node, kind, gen: dgen });
                }
                let mut acts = std::mem::take(&mut self.scratch_mac);
                self.nodes[node as usize].mac.on_timer(kind, gen, now, &mut acts);
                self.queue_mac(node, &mut acts);
                self.scratch_mac = acts;
            }
            Event::RoutingTimer { node, timer } => {
                let cross = self.nodes[node as usize].cross_layer(now);
                let mut racts = std::mem::take(&mut self.scratch_routing);
                self.nodes[node as usize].routing.on_timer(timer, &cross, now, &mut racts);
                self.queue_routing(node, &mut racts);
                self.scratch_routing = racts;
            }
            Event::TxEnd { node: _, tx_id } => {
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.medium.tx_end(tx_id, now, &mut fx);
                self.queue_medium(&mut fx);
                self.scratch_fx = fx;
            }
            Event::RxEnd { tx_id } => {
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.medium.rx_end(tx_id, now, &mut fx);
                self.queue_medium(&mut fx);
                self.scratch_fx = fx;
            }
            Event::DelayedBroadcast { node, packet } => {
                self.submit_to_mac(node, *packet, BROADCAST, now);
            }
            Event::TrafficEmit { flow_idx } => {
                self.emit_traffic(flow_idx, now, sched);
            }
            Event::MobilityUpdate { node } => {
                let Node { mobility, mobility_rng, .. } = &mut self.nodes[node as usize];
                mobility.advance(now, mobility_rng);
                self.update_position(node, now);
                let next = self.nodes[node as usize].mobility.next_update();
                if next < sched.horizon() && next != SimTime::MAX {
                    sched.at(next, Event::MobilityUpdate { node });
                }
            }
            Event::PositionSample => {
                for i in 0..self.nodes.len() {
                    if self.nodes[i].mobility.is_mobile() {
                        self.update_position(i as u32, now);
                    }
                }
                let next = now + self.position_sample;
                if next <= sched.horizon() {
                    sched.at(next, Event::PositionSample);
                }
            }
            Event::TelemetryProbe => {
                self.telemetry_probe(now, sched);
            }
        }
        self.drain(sched);
    }
}
