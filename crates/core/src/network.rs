//! The integrated network world: event dispatch across all layers.
//!
//! All cross-layer plumbing happens here through an explicit work queue:
//! MAC actions, routing actions and medium effects are drained iteratively
//! (never recursively), so arbitrarily long action chains — a reception that
//! triggers a forward that fills a queue that starts a transmission — are
//! processed within one event without stack growth.

use crate::event::Event;
use crate::medium::{Medium, MediumEffect};
use crate::node::Node;
use crate::scheme::Scheme;
use std::collections::VecDeque;
use wmn_faults::{FaultKind, TimedFault};
use wmn_mac::{DropReason, MacAction, MacAddr, MacParams, TimerKind, BROADCAST};
use wmn_metrics::{ProbeSeries, RecoveryTracker, TimeSeries};
use wmn_routing::{DataDropReason, DataPacket, NodeId, Packet, RoutingAction, RoutingConfig};
use wmn_sim::SimRng;
use wmn_sim::{Scheduler, SimDuration, SimTime, World};
use wmn_telemetry::{DropReason as TelDrop, EventKind, FaultCode, Tel};
use wmn_topology::{SpatialIndex, Vec2};
use wmn_traffic::{FlowState, FlowTracker};

/// Network-layer data-loss counters by cause.
#[derive(Clone, Copy, Debug, Default)]
pub struct DropCounters {
    /// Interface queue overflow.
    pub queue_full: u64,
    /// No route at an intermediate hop.
    pub no_route: u64,
    /// Discovery buffer overflow at the origin.
    pub buffer_overflow: u64,
    /// Route discovery failed after all retries.
    pub discovery_failed: u64,
    /// Link-layer retry limit on the path.
    pub link_failure: u64,
    /// Packet expired in the origin buffer (RREQ TTL exhausted). Was
    /// previously folded into `discovery_failed`.
    pub expired: u64,
    /// Control packets (RREQ/RREP/RERR/HELLO) rejected by a full interface
    /// queue. Not part of [`DropCounters::total`], which counts data only.
    pub ctrl_queue_full: u64,
    /// Data packets lost in the queues/buffers of a crashing node.
    pub node_down: u64,
    /// Control packets lost in the queues of a crashing node. Like
    /// `ctrl_queue_full`, not part of [`DropCounters::total`].
    pub ctrl_node_down: u64,
}

impl DropCounters {
    /// Total dropped data packets.
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.no_route
            + self.buffer_overflow
            + self.discovery_failed
            + self.link_failure
            + self.expired
            + self.node_down
    }

    /// Visit every counter as a stable snake_case `(name, value)` pair —
    /// the export consumed by the unified `wmn_telemetry::Counters`
    /// registry. Names are part of the trace/manifest format; they match
    /// `counter_for_drop` on the corresponding `DropReason`. The fault
    /// counters only appear once a fault actually discarded something, so
    /// no-fault manifests are byte-identical to pre-fault builds.
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("drop_queue_full", self.queue_full);
        f("drop_no_route", self.no_route);
        f("drop_buffer_overflow", self.buffer_overflow);
        f("drop_discovery_failed", self.discovery_failed);
        f("drop_link_failure", self.link_failure);
        f("drop_expired", self.expired);
        f("drop_ctrl_queue_full", self.ctrl_queue_full);
        if self.node_down > 0 {
            f("drop_node_down", self.node_down);
        }
        if self.ctrl_node_down > 0 {
            f("drop_ctrl_node_down", self.ctrl_node_down);
        }
    }
}

/// Fault-injection counters (all zero — and absent from the registry —
/// unless a fault schedule is active).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultCounters {
    /// Node crashes applied.
    pub node_down: u64,
    /// Node reboots applied.
    pub node_up: u64,
    /// Non-churn faults applied (noise burst edges, link shifts).
    pub injected: u64,
}

impl FaultCounters {
    /// Export into the unified counter registry (names match
    /// `counter_for_event` for the corresponding trace kinds). Only
    /// nonzero counters are visited so no-fault manifests are unchanged.
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        if self.node_down > 0 {
            f("fault_node_down", self.node_down);
        }
        if self.node_up > 0 {
            f("fault_node_up", self.node_up);
        }
        if self.injected > 0 {
            f("fault_injected", self.injected);
        }
    }
}

/// Everything needed to rebuild a node's protocol stack cold after a
/// reboot (the builder's construction parameters, kept by the network).
pub struct RebootKit {
    /// Master seed (reboot RNG streams are salted with the incarnation).
    pub master_seed: u64,
    /// MAC parameters.
    pub mac: MacParams,
    /// Routing configuration.
    pub routing: RoutingConfig,
    /// Rebroadcast scheme (rebuilt per reboot).
    pub scheme: Scheme,
}

enum Work {
    Mac(u32, MacAction),
    Routing(u32, RoutingAction),
    Medium(MediumEffect),
}

/// The simulated network (implements [`World`]).
pub struct Network {
    /// All node stacks.
    pub nodes: Vec<Node>,
    /// The shared radio medium.
    pub medium: Medium,
    /// Positions (kept fresh for mobile nodes by sampling events).
    pub spatial: SpatialIndex,
    /// Per-flow delivery bookkeeping.
    pub tracker: FlowTracker,
    /// Flow emission state.
    pub flows: Vec<FlowState>,
    /// Data-loss counters.
    pub drops: DropCounters,
    /// Fault-injection counters.
    pub faults: FaultCounters,
    /// Per-second delivery events (for convergence/transient views).
    pub delivery_timeline: TimeSeries,
    /// Per-second send events (denominator for PDR-during-outage).
    pub sent_timeline: TimeSeries,
    /// Completed and open outages: `(node, down_s, up_s)`; `None` = still
    /// down at the horizon.
    pub outages: Vec<(u32, f64, Option<f64>)>,
    /// Route-repair latency tracker (fault → next delivery).
    pub recovery: RecoveryTracker,
    /// Periodic cross-layer probe feed (empty unless telemetry probes ran).
    pub probes: ProbeSeries,
    /// Events dispatched to this world (mirrors the engine's count; the
    /// world sees every dispatched event exactly once).
    pub events_handled: u64,
    tel: Tel,
    probe_interval: Option<SimDuration>,
    profile: bool,
    /// Wall-clock anchor of the previous engine probe: `(instant, events)`.
    probe_anchor: Option<(std::time::Instant, u64)>,
    traffic_rng: SimRng,
    position_sample: SimDuration,
    /// Ids of nodes with a mobility model, fixed at build time: position
    /// sampling iterates these instead of scanning all N nodes.
    mobile_ids: Vec<u32>,
    work: VecDeque<Work>,
    /// Reusable action/effect buffers: one short-lived `Vec` per event adds
    /// up to hundreds of thousands of allocations per run, so each layer's
    /// output is collected into a recycled buffer instead. A buffer is
    /// `take`n before the layer call and returned (empty) right after the
    /// drain, so the call sites never hold two of the same kind at once.
    scratch_mac: Vec<MacAction>,
    scratch_routing: Vec<RoutingAction>,
    scratch_fx: Vec<MediumEffect>,
    /// One gate per (node, MAC timer kind); see [`TimerGate`].
    timer_gates: Vec<[TimerGate; 3]>,
    /// The expanded fault schedule (empty unless a plan was configured).
    fault_schedule: Vec<TimedFault>,
    /// Stack-reconstruction parameters for reboots (present iff faults
    /// are configured).
    reboot_kit: Option<RebootKit>,
}

/// Heap-traffic gate for MAC timers.
///
/// The DCF re-arms its Main timer on every carrier-sense edge and cancels
/// the previous arming with a generation bump, so under load most scheduled
/// timer events fire stale and no-op — they exist only to be discarded.
/// Instead of pushing every re-arm into the future-event list, the gate
/// keeps the newest request *parked* while an event with an earlier-or-equal
/// deadline is already in flight, and re-issues it when that event fires.
/// A parked request that is superseded before the fire is dropped outright:
/// generations are strictly increasing per kind, so its delivery would have
/// been a stale no-op anyway. The MAC sees exactly the same live-generation
/// `on_timer` calls either way.
#[derive(Clone, Copy, Default)]
struct TimerGate {
    /// Scheduled (not yet fired) events for this (node, kind).
    inflight: u32,
    /// Deadline of the in-flight event; only valid while `known`.
    front_at: SimTime,
    /// True only while exactly one event is in flight and its deadline is
    /// tracked. With two or more in flight the earliest deadline is no
    /// longer cheap to know, so the gate stops parking until they drain
    /// (parking against an unknown deadline could re-issue into the past).
    known: bool,
    /// Parked request `(deadline, gen, incarnation)`, re-issued at the
    /// next fire. Cleared when the node crashes (a dead MAC wants no
    /// timers); the incarnation rides along so a request parked just
    /// before a crash cannot reach the rebooted MAC.
    deferred: Option<(SimTime, u64, u32)>,
}

fn timer_ix(kind: TimerKind) -> usize {
    match kind {
        TimerKind::Main => 0,
        TimerKind::Ack => 1,
        TimerKind::Nav => 2,
    }
}

impl Network {
    /// Assemble a network (used by the scenario builder).
    pub fn new(
        nodes: Vec<Node>,
        medium: Medium,
        spatial: SpatialIndex,
        tracker: FlowTracker,
        flows: Vec<FlowState>,
        traffic_rng: SimRng,
        position_sample: SimDuration,
    ) -> Self {
        let n_nodes = nodes.len();
        let mobile_ids: Vec<u32> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.mobility.is_mobile())
            .map(|(i, _)| i as u32)
            .collect();
        Network {
            nodes,
            medium,
            spatial,
            tracker,
            flows,
            drops: DropCounters::default(),
            faults: FaultCounters::default(),
            delivery_timeline: TimeSeries::new(SimDuration::from_secs(1)),
            sent_timeline: TimeSeries::new(SimDuration::from_secs(1)),
            outages: Vec::new(),
            recovery: RecoveryTracker::new(),
            probes: ProbeSeries::new(SimDuration::from_secs(1)),
            events_handled: 0,
            tel: Tel::off(),
            probe_interval: None,
            profile: false,
            probe_anchor: None,
            traffic_rng,
            position_sample,
            mobile_ids,
            work: VecDeque::with_capacity(64),
            scratch_mac: Vec::with_capacity(8),
            scratch_routing: Vec::with_capacity(8),
            scratch_fx: Vec::with_capacity(64),
            timer_gates: vec![[TimerGate::default(); 3]; n_nodes],
            fault_schedule: Vec::new(),
            reboot_kit: None,
        }
    }

    /// Install an expanded fault schedule plus the stack-reconstruction
    /// parameters reboots need. The builder primes one `Event::Fault` per
    /// entry; nothing here touches the event list, so an empty schedule
    /// leaves the run byte-identical.
    pub fn set_faults(&mut self, schedule: Vec<TimedFault>, kit: RebootKit) {
        self.fault_schedule = schedule;
        self.reboot_kit = Some(kit);
    }

    /// The installed fault schedule (empty without a fault plan).
    pub fn fault_schedule(&self) -> &[TimedFault] {
        &self.fault_schedule
    }

    /// True if any node can move.
    pub fn any_mobile(&self) -> bool {
        !self.mobile_ids.is_empty()
    }

    /// Wire a telemetry handle through every layer: the medium, each
    /// node's MAC and routing engine (re-homed to its node id), and the
    /// network-level emitters. `probe_interval` enables the periodic
    /// cross-layer probe (the builder primes the first tick); `profile`
    /// additionally samples the event loop itself.
    pub fn set_telemetry(&mut self, tel: Tel, probe_interval: Option<SimDuration>, profile: bool) {
        self.medium.set_telemetry(tel.clone());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let t = tel.for_node(i as u32);
            node.mac.set_telemetry(t.clone());
            node.routing.set_telemetry(t);
        }
        if let Some(tick) = probe_interval {
            self.probes = ProbeSeries::new(tick);
        }
        self.tel = tel;
        self.probe_interval = probe_interval;
        self.profile = profile;
    }

    /// Whether probe ticks should be scheduled (telemetry on + interval).
    pub fn probes_enabled(&self) -> bool {
        self.tel.on() && self.probe_interval.is_some()
    }

    /// Flush the telemetry sink (end of run).
    pub fn flush_telemetry(&self) {
        self.tel.flush();
    }

    /// Run one telemetry probe tick: sample every node's cross-layer
    /// signals, then (under `profile`) the event loop itself.
    fn telemetry_probe(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        for i in 0..self.nodes.len() {
            let cross = self.nodes[i].cross_layer(now);
            let rp = self.nodes[i].routing.probe(&cross, now);
            self.probes.record(
                now,
                cross.own_load.queue_util,
                cross.own_load.busy_ratio,
                rp.load,
                rp.forward_probability,
            );
            self.tel.emit_at(
                i as u32,
                now,
                EventKind::NodeProbe {
                    queue: cross.own_load.queue_util,
                    busy: cross.own_load.busy_ratio,
                    load: rp.load,
                    fwd_p: rp.forward_probability,
                },
            );
        }
        if self.profile {
            let wall = std::time::Instant::now();
            let rate = match self.probe_anchor {
                Some((t0, e0)) => {
                    let dt = wall.duration_since(t0).as_secs_f64();
                    if dt > 0.0 {
                        (self.events_handled - e0) as f64 / dt
                    } else {
                        0.0
                    }
                }
                None => 0.0,
            };
            self.probe_anchor = Some((wall, self.events_handled));
            self.tel.emit_at(
                0,
                now,
                EventKind::EngineProbe {
                    events: self.events_handled,
                    rate,
                    heap: sched.pending() as u64,
                },
            );
        }
        if let Some(tick) = self.probe_interval {
            let next = now + tick;
            if next <= sched.horizon() {
                sched.at(next, Event::TelemetryProbe);
            }
        }
    }

    fn drain(&mut self, sched: &mut Scheduler<Event>) {
        let now = sched.now();
        while let Some(w) = self.work.pop_front() {
            match w {
                Work::Mac(node, act) => self.apply_mac(node, act, now, sched),
                Work::Routing(node, act) => self.apply_routing(node, act, now, sched),
                Work::Medium(eff) => self.apply_medium(eff, now, sched),
            }
        }
    }

    fn queue_mac(&mut self, node: u32, acts: &mut Vec<MacAction>) {
        self.work.extend(acts.drain(..).map(|a| Work::Mac(node, a)));
    }

    fn queue_routing(&mut self, node: u32, acts: &mut Vec<RoutingAction>) {
        self.work
            .extend(acts.drain(..).map(|a| Work::Routing(node, a)));
    }

    fn queue_medium(&mut self, effects: &mut Vec<MediumEffect>) {
        self.work.extend(effects.drain(..).map(Work::Medium));
    }

    fn submit_to_mac(&mut self, node: u32, packet: Packet, dst: MacAddr, now: SimTime) {
        let n = &mut self.nodes[node as usize];
        let sdu = n.make_sdu(packet, dst);
        let mut acts = std::mem::take(&mut self.scratch_mac);
        self.nodes[node as usize].mac.enqueue(sdu, now, &mut acts);
        self.queue_mac(node, &mut acts);
        self.scratch_mac = acts;
    }

    fn apply_mac(&mut self, node: u32, act: MacAction, now: SimTime, sched: &mut Scheduler<Event>) {
        match act {
            MacAction::StartTx(frame) => {
                let payload = if frame.kind == wmn_mac::FrameKind::Data {
                    self.nodes[node as usize]
                        .outgoing
                        .get(&frame.sdu_id)
                        .cloned()
                } else {
                    None
                };
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.medium
                    .start_tx(node, frame, payload, now, &self.spatial, &mut fx);
                self.queue_medium(&mut fx);
                self.scratch_fx = fx;
            }
            MacAction::Deliver(frame) => {
                // Deliveries are normally intercepted in `apply_medium`; a
                // bare Deliver without payload can only be an ACK-free test
                // path — ignore defensively.
                debug_assert!(frame.sdu_id != 0, "unexpected bare Deliver");
            }
            MacAction::TxOutcome {
                sdu_id,
                dst,
                ok,
                retries: _,
            } => {
                let payload = self.nodes[node as usize].take_payload(sdu_id);
                if !ok {
                    let cross = self.nodes[node as usize].cross_layer(now);
                    let _ = cross;
                    let mut racts = std::mem::take(&mut self.scratch_routing);
                    self.nodes[node as usize].routing.on_link_failure(
                        NodeId(dst.0),
                        payload,
                        now,
                        &mut racts,
                    );
                    self.queue_routing(node, &mut racts);
                    self.scratch_routing = racts;
                }
            }
            MacAction::SetTimer { kind, at, gen } => {
                let inc = self.nodes[node as usize].incarnation;
                let g = &mut self.timer_gates[node as usize][timer_ix(kind)];
                if g.known && at >= g.front_at {
                    // An event with an earlier-or-equal deadline is already
                    // in flight: park this request behind it (replacing any
                    // older, now-stale parked one).
                    g.deferred = Some((at, gen, inc));
                } else {
                    g.deferred = None;
                    g.inflight += 1;
                    g.known = g.inflight == 1;
                    g.front_at = at;
                    sched.at(
                        at,
                        Event::MacTimer {
                            node,
                            kind,
                            gen,
                            inc,
                        },
                    );
                }
            }
            MacAction::Drop { sdu_id, reason } => match reason {
                DropReason::QueueFull => {
                    match self.nodes[node as usize].take_payload(sdu_id) {
                        Some(Packet::Data(data)) => {
                            self.drops.queue_full += 1;
                            self.tel.emit_at(
                                node,
                                now,
                                EventKind::DataDrop {
                                    reason: TelDrop::QueueFull,
                                    flow: data.flow.0,
                                    seq: data.seq,
                                },
                            );
                        }
                        // Control packets rejected by a full interface
                        // queue were previously discarded uncounted.
                        Some(_) => {
                            self.drops.ctrl_queue_full += 1;
                            self.tel.emit_at(
                                node,
                                now,
                                EventKind::CtrlDrop {
                                    reason: TelDrop::QueueFull,
                                },
                            );
                        }
                        None => {}
                    }
                }
                // Retry-limit drops are followed by TxOutcome{ok: false},
                // which owns the payload hand-off to routing (the packet's
                // terminal fate — salvage or LinkFailure — is decided there).
                DropReason::RetryLimit => {}
            },
        }
    }

    fn apply_routing(
        &mut self,
        node: u32,
        act: RoutingAction,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        match act {
            RoutingAction::Broadcast { packet, delay } => {
                if delay.is_zero() {
                    self.submit_to_mac(node, packet, BROADCAST, now);
                } else {
                    let inc = self.nodes[node as usize].incarnation;
                    sched.after(
                        delay,
                        Event::DelayedBroadcast {
                            node,
                            packet: Box::new(packet),
                            inc,
                        },
                    );
                }
            }
            RoutingAction::Unicast { packet, next_hop } => {
                self.submit_to_mac(node, packet, MacAddr(next_hop.0), now);
            }
            RoutingAction::Deliver(data) => {
                self.tel.emit_at(
                    node,
                    now,
                    EventKind::DataDeliver {
                        flow: data.flow.0,
                        seq: data.seq,
                    },
                );
                self.tracker
                    .on_delivered(data.flow, data.created, now, data.payload);
                self.delivery_timeline.mark(now);
                self.recovery.on_delivery(now);
            }
            RoutingAction::SetTimer { timer, at } => {
                let inc = self.nodes[node as usize].incarnation;
                sched.at(at, Event::RoutingTimer { node, timer, inc });
            }
            RoutingAction::DataDropped { packet, reason } => {
                let why = match reason {
                    DataDropReason::NoRoute => {
                        self.drops.no_route += 1;
                        TelDrop::NoRoute
                    }
                    DataDropReason::BufferOverflow => {
                        self.drops.buffer_overflow += 1;
                        TelDrop::BufferOverflow
                    }
                    DataDropReason::DiscoveryFailed => {
                        self.drops.discovery_failed += 1;
                        TelDrop::DiscoveryFailed
                    }
                    DataDropReason::LinkFailure => {
                        self.drops.link_failure += 1;
                        TelDrop::LinkFailure
                    }
                    // Was previously folded into `discovery_failed`.
                    DataDropReason::Expired => {
                        self.drops.expired += 1;
                        TelDrop::Expired
                    }
                };
                self.tel.emit_at(
                    node,
                    now,
                    EventKind::DataDrop {
                        reason: why,
                        flow: packet.flow.0,
                        seq: packet.seq,
                    },
                );
            }
        }
    }

    fn apply_medium(&mut self, eff: MediumEffect, now: SimTime, sched: &mut Scheduler<Event>) {
        match eff {
            MediumEffect::Channel { node, busy } => {
                let mut acts = std::mem::take(&mut self.scratch_mac);
                self.nodes[node as usize]
                    .mac
                    .on_channel(busy, now, &mut acts);
                self.queue_mac(node, &mut acts);
                self.scratch_mac = acts;
            }
            MediumEffect::ScheduleTxEnd { node, tx_id, at } => {
                sched.at(at, Event::TxEnd { node, tx_id });
            }
            MediumEffect::ScheduleRxEnd { tx_id, at } => {
                sched.at(at, Event::RxEnd { tx_id });
            }
            MediumEffect::TxComplete { node } => {
                let mut acts = std::mem::take(&mut self.scratch_mac);
                self.nodes[node as usize].mac.on_tx_complete(now, &mut acts);
                self.queue_mac(node, &mut acts);
                self.scratch_mac = acts;
            }
            MediumEffect::Deliver {
                node,
                frame,
                packet,
                rx_dbm,
            } => {
                let mut acts = std::mem::take(&mut self.scratch_mac);
                self.nodes[node as usize]
                    .mac
                    .on_rx_frame(frame, now, &mut acts);
                for a in acts.drain(..) {
                    if let MacAction::Deliver(f) = a {
                        if let Some(pkt) = packet.clone() {
                            let from = NodeId(f.src.0);
                            let mut cross = self.nodes[node as usize].cross_layer(now);
                            cross.last_rx_dbm = Some(rx_dbm);
                            let mut racts = std::mem::take(&mut self.scratch_routing);
                            self.nodes[node as usize]
                                .routing
                                .on_packet(pkt, from, &cross, now, &mut racts);
                            self.queue_routing(node, &mut racts);
                            self.scratch_routing = racts;
                        }
                    } else {
                        self.work.push_back(Work::Mac(node, a));
                    }
                }
                self.scratch_mac = acts;
            }
        }
    }

    fn emit_traffic(&mut self, flow_idx: usize, now: SimTime, sched: &mut Scheduler<Event>) {
        let (seq, next) = self.flows[flow_idx].emit(now, &mut self.traffic_rng);
        let spec = *self.flows[flow_idx].spec();
        if let Some(t) = next {
            if t <= sched.horizon() {
                sched.at(t, Event::TrafficEmit { flow_idx });
            }
        }
        // A crashed source offers no load: the flow clock (and its RNG
        // stream) advanced above so emissions resume on schedule at
        // reboot, but nothing is sent or counted while down.
        if self.nodes[spec.src.index()].down {
            return;
        }
        let data = DataPacket {
            flow: spec.id,
            seq,
            src: spec.src,
            dst: spec.dst,
            payload: spec.payload,
            created: now,
        };
        self.tracker.on_sent(spec.id, now);
        self.sent_timeline.mark(now);
        self.tel.emit_at(
            spec.src.0,
            now,
            EventKind::DataOriginate {
                flow: spec.id.0,
                seq,
            },
        );
        let mut racts = std::mem::take(&mut self.scratch_routing);
        self.nodes[spec.src.index()]
            .routing
            .send_data(data, now, &mut racts);
        self.queue_routing(spec.src.0, &mut racts);
        self.scratch_routing = racts;
    }

    fn update_position(&mut self, node: u32, now: SimTime) {
        let n = &mut self.nodes[node as usize];
        let p = n.mobility.position(now);
        self.spatial.update(node as usize, p);
    }

    /// Apply fault-schedule entry `idx` (primed by the builder).
    fn apply_fault(&mut self, idx: u32, now: SimTime, _sched: &mut Scheduler<Event>) {
        let fault = self.fault_schedule[idx as usize];
        match fault.kind {
            FaultKind::NodeDown { node } => self.crash_node(node, now),
            FaultKind::NodeUp { node } => self.reboot_node(node, now),
            FaultKind::NoiseStart {
                id,
                x_m,
                y_m,
                radius_m,
                delta_db,
            } => {
                self.faults.injected += 1;
                self.tel.emit_at(
                    0,
                    now,
                    EventKind::FaultInjected {
                        fault: FaultCode::NoiseStart,
                    },
                );
                // Membership is decided once, at burst onset: a node that
                // wanders in or out keeps its onset-time exposure until the
                // burst ends. Spatial queries return ascending ids, so the
                // medium state is schedule-independent as-is.
                let mut hit = Vec::new();
                self.spatial
                    .query_radius(Vec2::new(x_m, y_m), radius_m, usize::MAX, &mut hit);
                self.medium.apply_noise(id, delta_db, &hit);
            }
            FaultKind::NoiseEnd { id } => {
                self.faults.injected += 1;
                self.tel.emit_at(
                    0,
                    now,
                    EventKind::FaultInjected {
                        fault: FaultCode::NoiseEnd,
                    },
                );
                self.medium.clear_noise(id);
            }
            FaultKind::LinkShift { node, delta_db } => {
                self.faults.injected += 1;
                self.tel.emit_at(
                    node,
                    now,
                    EventKind::FaultInjected {
                        fault: FaultCode::LinkShift,
                    },
                );
                self.medium.shift_node_atten(node, delta_db, &self.spatial);
            }
        }
    }

    /// Crash a node: radio off, queues and tables lost, every discard
    /// counted exactly once (packet conservation holds through the crash).
    fn crash_node(&mut self, node: u32, now: SimTime) {
        if self.nodes[node as usize].down {
            return;
        }
        self.faults.node_down += 1;
        let inc = self.nodes[node as usize].incarnation;
        self.tel
            .emit_at(node, now, EventKind::NodeDown { incarnation: inc });
        self.nodes[node as usize].down = true;
        // Parked timer requests die with the incarnation. In-flight timer
        // events still drain through the gates; the stale-incarnation check
        // at fire time keeps them away from the rebooted MAC.
        for g in &mut self.timer_gates[node as usize] {
            g.deferred = None;
        }
        // Radio off: abort any frame mid-air, strip the node from every
        // in-flight reception, silence its carrier sense.
        let mut fx = std::mem::take(&mut self.scratch_fx);
        self.medium.set_node_down(node, now, &self.spatial, &mut fx);
        self.queue_medium(&mut fx);
        self.scratch_fx = fx;
        // Everything queued at the interface dies with the node. HashMap
        // iteration order is unstable, so drain in sdu-id (= enqueue) order
        // to keep traces deterministic.
        let mut sdus: Vec<u64> = self.nodes[node as usize].outgoing.keys().copied().collect();
        sdus.sort_unstable();
        for sdu in sdus {
            match self.nodes[node as usize].take_payload(sdu) {
                Some(Packet::Data(data)) => {
                    self.drops.node_down += 1;
                    self.tel.emit_at(
                        node,
                        now,
                        EventKind::DataDrop {
                            reason: TelDrop::NodeDown,
                            flow: data.flow.0,
                            seq: data.seq,
                        },
                    );
                }
                Some(_) => {
                    self.drops.ctrl_node_down += 1;
                    self.tel.emit_at(
                        node,
                        now,
                        EventKind::CtrlDrop {
                            reason: TelDrop::NodeDown,
                        },
                    );
                }
                None => {}
            }
        }
        // Data parked in the routing layer awaiting route discovery is
        // lost too (disjoint from the interface queue drained above).
        for data in self.nodes[node as usize].routing.drain_buffered() {
            self.drops.node_down += 1;
            self.tel.emit_at(
                node,
                now,
                EventKind::DataDrop {
                    reason: TelDrop::NodeDown,
                    flow: data.flow.0,
                    seq: data.seq,
                },
            );
        }
        self.recovery.on_fault(now);
        self.outages.push((node, now.as_secs_f64(), None));
    }

    /// Reboot a crashed node with cold protocol state (fresh incarnation,
    /// fresh RNG streams, empty tables), and restart its routing layer.
    fn reboot_node(&mut self, node: u32, now: SimTime) {
        if !self.nodes[node as usize].down {
            return;
        }
        self.faults.node_up += 1;
        let (seed, mac, routing, policy) = {
            let kit = self
                .reboot_kit
                .as_ref()
                .expect("node reboot without a reboot kit");
            (
                kit.master_seed,
                kit.mac.clone(),
                kit.routing.clone(),
                kit.scheme.build(),
            )
        };
        self.nodes[node as usize].reboot(seed, mac, routing, policy);
        let t = self.tel.for_node(node);
        self.nodes[node as usize].mac.set_telemetry(t.clone());
        self.nodes[node as usize].routing.set_telemetry(t);
        self.medium.set_node_up(node, now, &self.spatial);
        let inc = self.nodes[node as usize].incarnation;
        self.tel
            .emit_at(node, now, EventKind::NodeUp { incarnation: inc });
        let mut racts = std::mem::take(&mut self.scratch_routing);
        self.nodes[node as usize].routing.start(now, &mut racts);
        self.queue_routing(node, &mut racts);
        self.scratch_routing = racts;
        if let Some(o) = self
            .outages
            .iter_mut()
            .rev()
            .find(|o| o.0 == node && o.2.is_none())
        {
            o.2 = Some(now.as_secs_f64());
        }
    }
}

impl World for Network {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut Scheduler<Event>) {
        let now = sched.now();
        self.events_handled += 1;
        match event {
            Event::MacTimer {
                node,
                kind,
                gen,
                inc,
            } => {
                let g = &mut self.timer_gates[node as usize][timer_ix(kind)];
                debug_assert!(g.inflight > 0, "timer fire with empty gate");
                g.inflight -= 1;
                g.known = false;
                if let Some((at, dgen, dinc)) = g.deferred.take() {
                    // A parked request can only exist behind a single
                    // in-flight event, so the gate is empty here and the
                    // re-issue (at `at >= now`) becomes its sole occupant.
                    g.inflight += 1;
                    g.known = g.inflight == 1;
                    g.front_at = at;
                    sched.at(
                        at,
                        Event::MacTimer {
                            node,
                            kind,
                            gen: dgen,
                            inc: dinc,
                        },
                    );
                }
                // Timers scheduled by a previous incarnation (or while the
                // node is dead) must not fire into the fresh MAC state: the
                // gate bookkeeping above still drains, the callback doesn't.
                let n = &self.nodes[node as usize];
                if n.down || inc != n.incarnation {
                    return;
                }
                let mut acts = std::mem::take(&mut self.scratch_mac);
                self.nodes[node as usize]
                    .mac
                    .on_timer(kind, gen, now, &mut acts);
                self.queue_mac(node, &mut acts);
                self.scratch_mac = acts;
            }
            Event::RoutingTimer { node, timer, inc } => {
                let n = &self.nodes[node as usize];
                if n.down || inc != n.incarnation {
                    return;
                }
                let cross = self.nodes[node as usize].cross_layer(now);
                let mut racts = std::mem::take(&mut self.scratch_routing);
                self.nodes[node as usize]
                    .routing
                    .on_timer(timer, &cross, now, &mut racts);
                self.queue_routing(node, &mut racts);
                self.scratch_routing = racts;
            }
            Event::TxEnd { node: _, tx_id } => {
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.medium.tx_end(tx_id, now, &mut fx);
                self.queue_medium(&mut fx);
                self.scratch_fx = fx;
            }
            Event::RxEnd { tx_id } => {
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.medium.rx_end(tx_id, now, &mut fx);
                self.queue_medium(&mut fx);
                self.scratch_fx = fx;
            }
            Event::DelayedBroadcast { node, packet, inc } => {
                let n = &self.nodes[node as usize];
                if n.down || inc != n.incarnation {
                    // Control traffic queued by a dead incarnation is
                    // silently dropped: it was never counted as enqueued.
                    return;
                }
                self.submit_to_mac(node, *packet, BROADCAST, now);
            }
            Event::Fault { idx } => {
                self.apply_fault(idx, now, sched);
            }
            Event::TrafficEmit { flow_idx } => {
                self.emit_traffic(flow_idx, now, sched);
            }
            Event::MobilityUpdate { node } => {
                let Node {
                    mobility,
                    mobility_rng,
                    ..
                } = &mut self.nodes[node as usize];
                mobility.advance(now, mobility_rng);
                self.update_position(node, now);
                let next = self.nodes[node as usize].mobility.next_update();
                if next < sched.horizon() && next != SimTime::MAX {
                    sched.at(next, Event::MobilityUpdate { node });
                }
            }
            Event::PositionSample => {
                // Only the mobile minority can have drifted; the id list is
                // fixed at build time, so iterate it instead of scanning
                // all N nodes every sample tick.
                let mut mobile = std::mem::take(&mut self.mobile_ids);
                for &i in &mobile {
                    self.update_position(i, now);
                }
                std::mem::swap(&mut self.mobile_ids, &mut mobile);
                let next = now + self.position_sample;
                if next <= sched.horizon() {
                    sched.at(next, Event::PositionSample);
                }
            }
            Event::TelemetryProbe => {
                self.telemetry_probe(now, sched);
            }
        }
        self.drain(sched);
    }
}
