//! `cnlr` — Cross-layer Neighbourhood Load Routing for Wireless Mesh
//! Networks: a full-stack, from-scratch reproduction.
//!
//! This crate integrates the substrate crates (`wmn-sim`, `wmn-topology`,
//! `wmn-radio`, `wmn-mac`, `wmn-mobility`, `wmn-routing`, `wmn-traffic`,
//! `wmn-metrics`) into a runnable wireless-mesh simulator and implements the
//! paper's contribution:
//!
//! * [`CnlrPolicy`] — load-adaptive probabilistic RREQ forwarding driven by
//!   a cross-layer neighbourhood-load index, plus load-aware route costs;
//! * [`VapCnlr`] — the velocity-aware extension for mobile clients;
//! * [`Scheme`] — CNLR alongside every baseline it is evaluated against;
//! * [`ScenarioBuilder`] — the public API for assembling and running
//!   scenarios;
//! * [`RunResults`] — network-wide measurements for the reconstructed
//!   figures.
//!
//! # Quickstart
//!
//! ```
//! use cnlr::{CnlrConfig, Scheme, ScenarioBuilder};
//! use wmn_sim::SimDuration;
//!
//! let results = ScenarioBuilder::new()
//!     .seed(7)
//!     .grid(5, 5, 180.0)
//!     .scheme(Scheme::Cnlr(CnlrConfig::default()))
//!     .flows(3, 2.0, 512)
//!     .duration(SimDuration::from_secs(15))
//!     .warmup(SimDuration::from_secs(3))
//!     .build()
//!     .unwrap()
//!     .run();
//! println!("PDR = {:.3}", results.pdr());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod energy;
pub mod event;
pub mod medium;
pub mod network;
pub mod node;
pub mod parmesh;
pub mod policy;
pub mod presets;
pub mod results;
pub mod scheme;

pub use builder::{BuildError, ScenarioBuilder, ScenarioPrefix, Simulation};
pub use energy::{EnergyMeter, EnergyParams, RadioMode};
pub use event::Event;
pub use medium::{LinkCacheSnapshot, Medium, MediumEffect, MediumStats};
pub use network::{DropCounters, FaultCounters, Network, RebootKit};
pub use node::Node;
pub use parmesh::{region_grid, ParMesh, ParMeshOutcome, ParMeshReport};
pub use policy::{CnlrConfig, CnlrPolicy, VapCnlr, VapConfig};
pub use results::RunResults;
pub use scheme::Scheme;
pub use wmn_faults::{
    ChurnModel, FaultKind, FaultPlan, LinkFlapModel, NoiseStormModel, TimedFault,
};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use wmn_faults as faults;
pub use wmn_mac as mac;
pub use wmn_metrics as metrics;
pub use wmn_mobility as mobility;
pub use wmn_radio as radio;
pub use wmn_routing as routing;
pub use wmn_sim as sim;
pub use wmn_topology as topology;
pub use wmn_traffic as traffic;
