//! ParMesh — the region-partitioned mesh model for shard-parallel runs.
//!
//! The classic [`Network`](crate::Network) world models carrier sense
//! exactly, which makes cross-node influence instantaneous — correct, but
//! unshardable: zero lookahead between regions means no conservative
//! parallelism. ParMesh is the scale path: it keeps the paper's
//! *neighbourhood-load routing* mechanism (periodic HELLO load digests,
//! load-aware next-hop choice) but abstracts the MAC into a **latency
//! floor** — every relayed packet pays at least [`HOP_FLOOR`] between
//! reception and re-transmission (DIFS + mean backoff + airtime), which is
//! physically honest and is exactly the lookahead the sharded engine needs.
//!
//! Design rules that make the model shardable *and* bit-identical across
//! worker counts:
//!
//! * **Static ownership.** The field is split into a near-square region
//!   grid; a node is owned by the region containing its *home* position,
//!   forever. All mutable state of a node (its load counters, its packets
//!   in flight at it) lives in its owner region.
//! * **Pure-function mobility.** A node's position is a closed-form
//!   function of time and immutable per-node parameters (circular drift of
//!   bounded amplitude), so *any* region can evaluate *any* node's current
//!   position without shared mutable state.
//! * **Precomputed churn.** Crash/reboot intervals are drawn from the
//!   master seed at build time and shared read-only; `is_up(node, t)` is a
//!   pure function every region evaluates identically. Owner regions
//!   additionally schedule the transition events for telemetry and load
//!   resets.
//! * **Digested load.** A region knows its own nodes' loads exactly;
//!   neighbours' loads arrive via periodic HELLO digests (one cross-region
//!   event per neighbour region per interval) — stale by up to one
//!   interval, exactly like real HELLO-carried load advertisements.
//!
//! Geometry guarantees the lookahead structure: region sides are kept at
//! least [`MIN_REGION_SIDE_M`] (> max hop distance = radio range plus two
//! drift amplitudes), so a packet can only ever hop into a Chebyshev-
//! adjacent region. Non-adjacent regions exchange nothing directly; the
//! engine's shortest-path closure turns that ring structure into
//! distance-proportional lookahead — the discrete analogue of propagation
//! delay between separated areas.
//!
//! The world data is laid out for million-node runs: the shared read-only
//! tables ([`Statics`]) keep per-node state in flat structure-of-arrays
//! vectors with CSR-flattened adjacency (churn intervals, spatial-hash
//! cells) instead of nested `Vec<Vec<…>>`, node ids are `u32` throughout,
//! and per-region hot state (exact node loads) is a dense vector parallel
//! to the sorted owned-id list rather than a hash map. At full trace
//! volume a merged in-memory trace would dwarf the world itself, so
//! [`ParMesh::trace_hash`] streams events into O(1)-memory per-region
//! fingerprints instead — the scale-run stand-in for a byte-level trace
//! diff.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use wmn_metrics::ProbeSeries;
use wmn_sim::checkpoint::{self, ByteReader, ByteWriter, CheckpointError};
use wmn_sim::shard::{
    CheckpointState, CrashPlan, Lookahead, RegionCtx, RegionId, RegionWorld, ShardedEngine,
    SupervisorConfig, SupervisorReport,
};
use wmn_sim::{SimDuration, SimRng, SimTime};
use wmn_telemetry::{
    merge_region_traces, DropReason, EventKind, EventSink, HashSink, MemorySink, ShardProfile,
    ShardProfiler, SharedSink, Tel, TelemetryEvent,
};

/// Grid pitch the node density is derived from (matches the scale presets).
pub const PITCH_M: f64 = 180.0;
/// Radio range: nodes within this distance of each other are neighbours.
pub const RX_RANGE_M: f64 = 250.0;
/// Maximum mobility drift amplitude around the home position.
pub const DRIFT_AMP_M: f64 = 25.0;
/// Spatial-hash cell size for neighbour search.
const CELL_M: f64 = 250.0;
/// Minimum region side: must exceed the maximum hop distance
/// (`RX_RANGE_M + 2 × DRIFT_AMP_M` = 300 m) so hops stay within the
/// adjacent region ring.
pub const MIN_REGION_SIDE_M: f64 = 560.0;
/// The MAC latency floor: minimum delay between receiving a packet and the
/// relayed copy becoming receivable at the next hop (DIFS + mean backoff +
/// ~512 B airtime at mesh rates). This is the sharding lookahead.
pub const HOP_FLOOR: SimDuration = SimDuration(1_000_000);
/// Extra per-hop jitter span (contention variability), drawn per hop from
/// the owning region's RNG stream.
const HOP_JITTER_US: u64 = 250;
/// HELLO / load-digest interval.
const HELLO_INTERVAL: SimDuration = SimDuration(1_000_000_000);
/// Initial packet TTL (hops).
const TTL_INIT: u32 = 48;

const DOMAIN_PLACE: u64 = 0x70_61_72_01;
const DOMAIN_DRIFT: u64 = 0x70_61_72_02;
const DOMAIN_CHURN: u64 = 0x70_61_72_03;
const DOMAIN_FLOWS: u64 = 0x70_61_72_04;
const DOMAIN_REGION: u64 = 0x70_61_72_05;

/// Scenario description for a ParMesh run (builder-style).
#[derive(Clone, Debug)]
pub struct ParMesh {
    nodes: usize,
    flows: usize,
    duration: SimDuration,
    interval: SimDuration,
    seed: u64,
    regions: Option<usize>,
    threads: usize,
    steal: bool,
    mobility: bool,
    churn: bool,
    telemetry: bool,
    trace_hash: bool,
    profile: bool,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: Option<SimDuration>,
    resume: bool,
    crash_plan: CrashPlan,
    interrupt: Option<Arc<AtomicBool>>,
}

impl ParMesh {
    /// A scenario with `nodes` routers and scale-preset defaults: one flow
    /// per 4 nodes at 10 pkt/s, 10 s horizon, mobility and churn on.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 2, "need at least two nodes");
        ParMesh {
            nodes,
            flows: (nodes / 4).max(1),
            duration: SimDuration::from_secs(10),
            interval: SimDuration::from_millis(100),
            seed: 1,
            regions: None,
            threads: 1,
            steal: true,
            mobility: true,
            churn: true,
            telemetry: false,
            trace_hash: false,
            profile: false,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
            crash_plan: CrashPlan::default(),
            interrupt: None,
        }
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of CBR flows.
    pub fn flows(mut self, flows: usize) -> Self {
        self.flows = flows;
        self
    }

    /// Set the simulated duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Set the per-flow packet interval.
    pub fn interval(mut self, d: SimDuration) -> Self {
        self.interval = d;
        self
    }

    /// Request a region count. The auto-tuner grants the nearest grid the
    /// geometry can honour (sides must stay ≥ [`MIN_REGION_SIDE_M`]); when
    /// that differs from an explicit request the run warns on stderr with
    /// the granted value. The default derives one region per ~384 nodes
    /// with no upper cap — a million-node field auto-tunes past 2500
    /// regions. The region count is part of the scenario: changing it
    /// changes event timestamps slightly; changing *threads* never does.
    pub fn regions(mut self, regions: usize) -> Self {
        self.regions = Some(regions.max(1));
        self
    }

    /// Set the worker thread count (wall-clock only; results identical).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enable or disable work stealing between epoch barriers (on by
    /// default). Stealing only remaps which worker thread executes a
    /// region's window — results, traces and checkpoints are bit-identical
    /// either way, so this knob is excluded from the scenario fingerprint
    /// and a resume may flip it.
    pub fn steal(mut self, on: bool) -> Self {
        self.steal = on;
        self
    }

    /// Enable or disable mobility drift.
    pub fn mobility(mut self, on: bool) -> Self {
        self.mobility = on;
        self
    }

    /// Enable or disable node churn.
    pub fn churn(mut self, on: bool) -> Self {
        self.churn = on;
        self
    }

    /// Enable or disable telemetry collection (the merged trace is
    /// returned in [`ParMeshOutcome::trace`]).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Fold every telemetry event into O(1)-memory per-region fingerprints
    /// instead of materialising a trace; the combined value is returned in
    /// [`ParMeshOutcome::trace_fp`]. The per-region event streams are the
    /// same ones full telemetry would record, so a hash-only run and a
    /// full-trace run of the same scenario produce the same fingerprint —
    /// this is the million-node stand-in for a byte-level trace diff.
    /// Incompatible with checkpointing (which must buffer the trace).
    pub fn trace_hash(mut self, on: bool) -> Self {
        self.trace_hash = on;
        self
    }

    /// Enable or disable engine profiling (the profile is returned in
    /// [`ParMeshOutcome::profile`]). Profiling observes the engine from
    /// the coordinator thread only and never changes simulation results
    /// or the telemetry trace.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Write epoch-barrier checkpoints into `dir` (atomic temp+rename).
    /// Implies the supervised engine; with no explicit
    /// [`checkpoint_every`](ParMesh::checkpoint_every) the cadence defaults
    /// to one simulated second.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sim-time cadence between checkpoints.
    pub fn checkpoint_every(mut self, every: SimDuration) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Resume from the highest-epoch checkpoint in
    /// [`checkpoint_dir`](ParMesh::checkpoint_dir). Starts fresh when the
    /// directory holds no checkpoints; refuses (structured error from
    /// [`try_run`](ParMesh::try_run)) when the latest one is corrupt or
    /// belongs to a different scenario.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Inject harness-level worker crashes (supervisor exercise; strictly
    /// separate from in-sim node churn).
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Cooperative interrupt flag, checked at every epoch barrier; when it
    /// goes true the run writes a final checkpoint (if a checkpoint dir is
    /// set) and stops with [`SupervisorReport::interrupted`].
    pub fn interrupt(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// True when any robustness feature routes this run through the
    /// supervised engine. Plain runs take the exact pre-existing path, so
    /// checkpoints-off behaviour is byte-identical by construction.
    fn supervised(&self) -> bool {
        self.checkpoint_dir.is_some()
            || self.checkpoint_every.is_some()
            || self.resume
            || !self.crash_plan.is_empty()
            || self.interrupt.is_some()
    }

    /// The scenario fingerprint stamped into checkpoints: a hash of every
    /// result-affecting knob. Thread count and profiling are excluded (both
    /// are wall-clock-only), so a resume may use a different worker count.
    pub fn scenario_fingerprint(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.u64(self.nodes as u64);
        w.u64(self.flows as u64);
        w.u64(self.duration.as_nanos());
        w.u64(self.interval.as_nanos());
        w.u64(self.seed);
        w.u64(self.regions.map(|r| r as u64 + 1).unwrap_or(0));
        w.u8(self.mobility as u8);
        w.u8(self.churn as u8);
        w.u8(self.telemetry as u8);
        checkpoint::fnv1a(&w.into_inner())
    }

    /// Run the scenario. Results are a pure function of the scenario
    /// (including the region count) and never of the thread count.
    ///
    /// Panics on checkpoint errors (corrupt resume file, unwritable
    /// checkpoint dir); callers that need structured errors use
    /// [`try_run`](ParMesh::try_run).
    pub fn run(&self) -> ParMeshOutcome {
        match self.try_run() {
            Ok(out) => out,
            Err(e) => panic!("parmesh run failed: {e}"),
        }
    }

    /// Run the scenario, surfacing checkpoint/resume failures as structured
    /// errors instead of panics. Without robustness features this cannot
    /// fail.
    pub fn try_run(&self) -> Result<ParMeshOutcome, CheckpointError> {
        run_parmesh(self)
    }
}

/// Aggregated results of a ParMesh run.
#[derive(Clone, Debug, Default)]
pub struct ParMeshReport {
    /// Node count.
    pub nodes: usize,
    /// Region count actually used.
    pub regions: usize,
    /// Data packets originated.
    pub originated: u64,
    /// Data packets delivered to their destination.
    pub delivered: u64,
    /// Packets dropped: no neighbour with positive progress.
    pub dropped_no_route: u64,
    /// Packets dropped: TTL exhausted.
    pub dropped_expired: u64,
    /// Packets dropped: relay or destination was crashed.
    pub dropped_node_down: u64,
    /// Relay transmissions (hops after the first).
    pub forwards: u64,
    /// Mean end-to-end delay over delivered packets, seconds.
    pub mean_delay_s: f64,
    /// Mean hop count over delivered packets.
    pub mean_hops: f64,
    /// Engine events dispatched.
    pub events: u64,
    /// Epoch barriers executed.
    pub epochs: u64,
    /// Cross-region events exchanged.
    pub cross_region: u64,
    /// Final simulation time.
    pub end_time: SimTime,
}

impl ParMeshReport {
    /// Packet delivery ratio.
    pub fn pdr(&self) -> f64 {
        if self.originated == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.originated as f64
    }
}

/// A finished run: the report plus the merged telemetry trace (empty when
/// telemetry was off).
#[derive(Clone, Debug)]
pub struct ParMeshOutcome {
    /// Aggregated measurements.
    pub report: ParMeshReport,
    /// Deterministically merged trace, ordered by `(t, region, index)`.
    pub trace: Vec<TelemetryEvent>,
    /// `(events, fingerprint)` of the full telemetry stream, folded from
    /// per-region [`HashSink`]s in region order; present when
    /// [`trace_hash`](ParMesh::trace_hash) was requested. Identical for
    /// any thread count and steal schedule, and identical to the value a
    /// full-telemetry run of the same scenario would hash to.
    pub trace_fp: Option<(u64, u64)>,
    /// Engine execution profile (present when profiling was requested).
    pub profile: Option<ShardProfile>,
    /// 1 Hz cross-layer probe feed, rebuilt from the merged trace (empty
    /// when telemetry was off).
    pub probes: ProbeSeries,
    /// Supervisor summary (recoveries, checkpoints written, interrupt and
    /// resume lineage); present only when the run used a robustness
    /// feature — plain runs never take the supervised path.
    pub supervisor: Option<SupervisorReport>,
}

#[derive(Clone, Copy, Debug)]
struct NodeParams {
    home: (f64, f64),
    amp: f64,
    omega: f64,
    phase: f64,
}

#[derive(Clone, Copy, Debug)]
struct Flow {
    src: u32,
    dst: u32,
    start: SimTime,
}

/// Immutable world data shared read-only by every region. Per-node tables
/// are CSR-flattened (`*_idx` holds row offsets into the flat payload
/// vector) so a million-node world is a handful of large allocations
/// instead of millions of tiny `Vec`s.
struct Statics {
    params: Vec<NodeParams>,
    /// Down intervals `(down_ns, up_ns)`, sorted per node; node `i` owns
    /// `churn_iv[churn_idx[i]..churn_idx[i+1]]`. Almost all rows empty.
    churn_idx: Vec<u32>,
    churn_iv: Vec<(u64, u64)>,
    /// Spatial hash over *home* positions; cell `c` owns
    /// `cell_nodes[cell_idx[c]..cell_idx[c+1]]`.
    cell_idx: Vec<u32>,
    cell_nodes: Vec<u32>,
    ncx: usize,
    ncy: usize,
    side: f64,
    /// Region grid dimensions.
    rx: usize,
    ry: usize,
    region_of_node: Vec<RegionId>,
    flows: Vec<Flow>,
    interval: SimDuration,
    horizon: SimTime,
}

impl Statics {
    fn pos(&self, node: u32, t: SimTime) -> (f64, f64) {
        let p = &self.params[node as usize];
        if p.amp == 0.0 {
            return p.home;
        }
        let th = p.phase + p.omega * (t.as_nanos() as f64 * 1e-9);
        (p.home.0 + p.amp * th.cos(), p.home.1 + p.amp * th.sin())
    }

    /// Node `i`'s sorted down intervals (CSR row).
    fn churn_of(&self, node: u32) -> &[(u64, u64)] {
        let i = node as usize;
        &self.churn_iv[self.churn_idx[i] as usize..self.churn_idx[i + 1] as usize]
    }

    /// The node ids hashed into spatial cell `c` (CSR row).
    fn cell_members(&self, c: usize) -> &[u32] {
        &self.cell_nodes[self.cell_idx[c] as usize..self.cell_idx[c + 1] as usize]
    }

    fn is_up(&self, node: u32, t: SimTime) -> bool {
        let ns = t.as_nanos();
        self.churn_of(node)
            .iter()
            .all(|&(down, up)| ns < down || ns >= up)
    }

    fn cell_of(&self, x: f64, y: f64) -> (usize, usize) {
        let cx = ((x / CELL_M) as usize).min(self.ncx - 1);
        let cy = ((y / CELL_M) as usize).min(self.ncy - 1);
        (cx, cy)
    }

    fn region_at(&self, x: f64, y: f64) -> RegionId {
        let gx = ((x / self.side * self.rx as f64) as usize).min(self.rx - 1);
        let gy = ((y / self.side * self.ry as f64) as usize).min(self.ry - 1);
        (gy * self.rx + gx) as RegionId
    }

    fn region_coords(&self, r: RegionId) -> (usize, usize) {
        (r as usize % self.rx, r as usize / self.rx)
    }

    /// Chebyshev ring-1 neighbours of a region, ascending.
    fn adjacent_regions(&self, r: RegionId) -> Vec<RegionId> {
        let (gx, gy) = self.region_coords(r);
        let mut out = Vec::new();
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = gx as i64 + dx;
                let ny = gy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= self.rx as i64 || ny >= self.ry as i64 {
                    continue;
                }
                out.push((ny as usize * self.rx + nx as usize) as RegionId);
            }
        }
        out
    }
}

/// Flatten ragged rows into CSR form: `(row_offsets, payload)` with
/// `rows[i] == payload[idx[i]..idx[i+1]]`.
fn flatten_csr<T: Copy>(rows: &[Vec<T>]) -> (Vec<u32>, Vec<T>) {
    let total: usize = rows.iter().map(Vec::len).sum();
    assert!(
        total <= u32::MAX as usize,
        "CSR payload exceeds u32 offsets"
    );
    let mut idx = Vec::with_capacity(rows.len() + 1);
    let mut flat = Vec::with_capacity(total);
    idx.push(0);
    for row in rows {
        flat.extend_from_slice(row);
        idx.push(flat.len() as u32);
    }
    (idx, flat)
}

/// Fold per-region `(count, fp)` trace fingerprints, in region order, into
/// one run-level fingerprint. Region order is scenario-determined, so the
/// result is invariant to threads and steal schedule.
fn combine_region_fps(fps: &[(u64, u64)]) -> (u64, u64) {
    let mut w = ByteWriter::new();
    let mut count = 0u64;
    for &(c, f) in fps {
        w.u64(c);
        w.u64(f);
        count += c;
    }
    (count, checkpoint::fnv1a(&w.into_inner()))
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (dx, dy) = (a.0 - b.0, a.1 - b.1);
    (dx * dx + dy * dy).sqrt()
}

/// One in-flight data packet.
#[derive(Clone, Copy, Debug)]
struct Packet {
    flow: u32,
    seq: u32,
    node: u32,
    dst: u32,
    ttl: u32,
    origin_ns: u64,
}

enum PmEvent {
    /// Periodic per-region load refresh + digest broadcast.
    HelloTick,
    /// A neighbour region's load digest.
    Digest(Arc<Vec<(u32, u32)>>),
    /// A flow source emits its next packet.
    Originate { flow: u32 },
    /// A data packet arrived at `pkt.node` (owned by this region).
    Forward(Packet),
    /// Scheduled churn transition for an owned node.
    ChurnDown { node: u32 },
    /// Scheduled churn recovery for an owned node.
    ChurnUp { node: u32 },
}

#[derive(Clone, Copy, Default)]
struct NodeLoad {
    load: u32,
    recent: u32,
}

#[derive(Clone, Debug, Default)]
struct RegionStats {
    originated: u64,
    delivered: u64,
    dropped_no_route: u64,
    dropped_expired: u64,
    dropped_node_down: u64,
    forwards: u64,
    delay_sum_ns: u64,
    hops_sum: u64,
}

struct RegionNet {
    id: RegionId,
    st: Arc<Statics>,
    /// Owned node ids, ascending.
    own: Vec<u32>,
    /// Exact loads of owned nodes, parallel to `own` (dense hot state —
    /// 8 B per node; look up by binary search over the sorted ids).
    loads: Vec<NodeLoad>,
    /// Last digested loads of other regions' nodes (stale by design).
    remote: HashMap<u32, u32>,
    rng: SimRng,
    tel: Tel,
    /// The region's own telemetry buffer (what `tel` writes into), kept so
    /// checkpoints can capture and restore buffered trace events; `None`
    /// when telemetry is off.
    sink: Option<Arc<Mutex<MemorySink>>>,
    hello_seq: u32,
    flow_seq: HashMap<u32, u32>,
    stats: RegionStats,
}

impl RegionNet {
    fn load_of(&self, node: u32) -> u32 {
        match self.own.binary_search(&node) {
            Ok(i) => {
                let nl = self.loads[i];
                nl.load + nl.recent
            }
            Err(_) => self.remote.get(&node).copied().unwrap_or(0),
        }
    }

    /// Load-aware geographic next hop from `u` towards `pkt.dst` at `now`:
    /// among up neighbours with positive progress, maximise
    /// `progress / (1 + load)` — the neighbourhood-load rule — with
    /// deterministic iteration order (cells, then ascending node id).
    fn next_hop(&self, u: u32, dst: u32, now: SimTime) -> Option<u32> {
        let st = &self.st;
        let pu = st.pos(u, now);
        let pdst = st.pos(dst, now);
        // Direct delivery beats any relay.
        if dist(pu, pdst) <= RX_RANGE_M && st.is_up(dst, now) {
            return Some(dst);
        }
        let d_u = dist(pu, pdst);
        let (cx, cy) = st.cell_of(pu.0, pu.1);
        let mut best: Option<(f64, u32)> = None;
        for dy in -2i64..=2 {
            for dx in -2i64..=2 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= st.ncx as i64 || ny >= st.ncy as i64 {
                    continue;
                }
                for &v in st.cell_members(ny as usize * st.ncx + nx as usize) {
                    if v == u || !st.is_up(v, now) {
                        continue;
                    }
                    let pv = st.pos(v, now);
                    if dist(pu, pv) > RX_RANGE_M {
                        continue;
                    }
                    let progress = d_u - dist(pv, pdst);
                    if progress <= 1.0 {
                        continue;
                    }
                    let score = progress / (1.0 + self.load_of(v) as f64);
                    let better = match best {
                        None => true,
                        Some((bs, bv)) => score > bs || (score == bs && v < bv),
                    };
                    if better {
                        best = Some((score, v));
                    }
                }
            }
        }
        best.map(|(_, v)| v)
    }

    fn transmit(&mut self, pkt: Packet, ctx: &mut RegionCtx<'_, PmEvent>) {
        let now = ctx.now();
        let Some(next) = self.next_hop(pkt.node, pkt.dst, now) else {
            self.stats.dropped_no_route += 1;
            self.tel.emit_at(
                pkt.node,
                now,
                EventKind::DataDrop {
                    reason: DropReason::NoRoute,
                    flow: pkt.flow,
                    seq: pkt.seq,
                },
            );
            return;
        };
        // The transmitting node is always owned here; account its work.
        let i = self
            .own
            .binary_search(&pkt.node)
            .expect("transmitting node is owned by this region");
        self.loads[i].recent += 1;
        let latency = HOP_FLOOR + SimDuration::from_micros(self.rng.below(HOP_JITTER_US + 1));
        let dst_region = self.st.region_of_node[next as usize];
        ctx.send(
            dst_region,
            now + latency,
            PmEvent::Forward(Packet {
                node: next,
                ttl: pkt.ttl - 1,
                ..pkt
            }),
        );
    }

    fn handle_forward(&mut self, pkt: Packet, ctx: &mut RegionCtx<'_, PmEvent>) {
        let now = ctx.now();
        if !self.st.is_up(pkt.node, now) {
            self.stats.dropped_node_down += 1;
            self.tel.emit_at(
                pkt.node,
                now,
                EventKind::DataDrop {
                    reason: DropReason::NodeDown,
                    flow: pkt.flow,
                    seq: pkt.seq,
                },
            );
            return;
        }
        if pkt.node == pkt.dst {
            self.stats.delivered += 1;
            self.stats.delay_sum_ns += now.as_nanos() - pkt.origin_ns;
            self.stats.hops_sum += (TTL_INIT - pkt.ttl) as u64;
            self.tel.emit_at(
                pkt.node,
                now,
                EventKind::DataDeliver {
                    flow: pkt.flow,
                    seq: pkt.seq,
                },
            );
            return;
        }
        if pkt.ttl == 0 {
            self.stats.dropped_expired += 1;
            self.tel.emit_at(
                pkt.node,
                now,
                EventKind::DataDrop {
                    reason: DropReason::Expired,
                    flow: pkt.flow,
                    seq: pkt.seq,
                },
            );
            return;
        }
        self.stats.forwards += 1;
        self.tel.emit_at(
            pkt.node,
            now,
            EventKind::DataForward {
                flow: pkt.flow,
                seq: pkt.seq,
            },
        );
        self.transmit(pkt, ctx);
    }
}

impl RegionWorld for RegionNet {
    type Event = PmEvent;

    fn handle(&mut self, event: PmEvent, ctx: &mut RegionCtx<'_, PmEvent>) {
        match event {
            PmEvent::HelloTick => {
                let now = ctx.now();
                self.hello_seq += 1;
                // EWMA load refresh for owned nodes; digest the busy ones.
                let mut digest: Vec<(u32, u32)> = Vec::new();
                let probing = self.tel.on();
                for (i, &node) in self.own.iter().enumerate() {
                    let nl = &mut self.loads[i];
                    let recent = nl.recent;
                    nl.load = nl.load / 2 + nl.recent;
                    nl.recent = 0;
                    let load = nl.load;
                    if load > 0 {
                        digest.push((node, load));
                    }
                    if probing && self.st.is_up(node, now) {
                        // 1 Hz cross-layer probe, from region-local integer
                        // state only (thread-count invisible): `busy` is the
                        // share of a ~100 pkt/s nominal relay capacity used
                        // this tick, `load` squashes the EWMA into [0, 1].
                        // ParMesh has no interface queue and greedy
                        // forwarding always relays, so those signals are
                        // honest constants.
                        self.tel.emit_at(
                            node,
                            now,
                            EventKind::NodeProbe {
                                queue: 0.0,
                                busy: (recent as f64 / 100.0).min(1.0),
                                load: load as f64 / (load as f64 + 8.0),
                                fwd_p: 1.0,
                            },
                        );
                    }
                }
                if let Some(&first) = self.own.first() {
                    self.tel.emit_at(
                        first,
                        now,
                        EventKind::HelloSend {
                            seq: self.hello_seq,
                        },
                    );
                }
                if !digest.is_empty() {
                    let digest = Arc::new(digest);
                    for r in self.st.adjacent_regions(self.id) {
                        ctx.send(r, now + HOP_FLOOR, PmEvent::Digest(digest.clone()));
                    }
                }
                let next = now + HELLO_INTERVAL;
                if next <= ctx.horizon() {
                    ctx.at(next, PmEvent::HelloTick);
                }
            }
            PmEvent::Digest(loads) => {
                for &(node, load) in loads.iter() {
                    self.remote.insert(node, load);
                }
            }
            PmEvent::Originate { flow } => {
                let now = ctx.now();
                let f = self.st.flows[flow as usize];
                // Schedule the next packet first so a down source keeps
                // its cadence.
                let next = now + self.st.interval;
                if next <= self.st.horizon {
                    ctx.at(next, PmEvent::Originate { flow });
                }
                if !self.st.is_up(f.src, now) {
                    return;
                }
                let seq = self.flow_seq.entry(flow).or_insert(0);
                *seq += 1;
                let seq = *seq;
                self.stats.originated += 1;
                self.tel
                    .emit_at(f.src, now, EventKind::DataOriginate { flow, seq });
                self.transmit(
                    Packet {
                        flow,
                        seq,
                        node: f.src,
                        dst: f.dst,
                        ttl: TTL_INIT,
                        origin_ns: now.as_nanos(),
                    },
                    ctx,
                );
            }
            PmEvent::Forward(pkt) => self.handle_forward(pkt, ctx),
            PmEvent::ChurnDown { node } => {
                let i = self
                    .own
                    .binary_search(&node)
                    .expect("churn events are primed at the owner region");
                self.loads[i] = NodeLoad::default();
                self.tel
                    .emit_at(node, ctx.now(), EventKind::NodeDown { incarnation: 0 });
            }
            PmEvent::ChurnUp { node } => {
                self.tel
                    .emit_at(node, ctx.now(), EventKind::NodeUp { incarnation: 1 });
            }
        }
    }
}

impl CheckpointState for RegionNet {
    fn encode_event(event: &PmEvent, out: &mut ByteWriter) {
        match event {
            PmEvent::HelloTick => out.u8(0),
            PmEvent::Digest(loads) => {
                out.u8(1);
                out.u32(loads.len() as u32);
                for &(node, load) in loads.iter() {
                    out.u32(node);
                    out.u32(load);
                }
            }
            PmEvent::Originate { flow } => {
                out.u8(2);
                out.u32(*flow);
            }
            PmEvent::Forward(p) => {
                out.u8(3);
                out.u32(p.flow);
                out.u32(p.seq);
                out.u32(p.node);
                out.u32(p.dst);
                out.u32(p.ttl);
                out.u64(p.origin_ns);
            }
            PmEvent::ChurnDown { node } => {
                out.u8(4);
                out.u32(*node);
            }
            PmEvent::ChurnUp { node } => {
                out.u8(5);
                out.u32(*node);
            }
        }
    }

    fn decode_event(r: &mut ByteReader<'_>) -> Result<PmEvent, CheckpointError> {
        Ok(match r.u8()? {
            0 => PmEvent::HelloTick,
            1 => {
                let n = r.u32()? as usize;
                let mut loads = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    loads.push((r.u32()?, r.u32()?));
                }
                PmEvent::Digest(Arc::new(loads))
            }
            2 => PmEvent::Originate { flow: r.u32()? },
            3 => PmEvent::Forward(Packet {
                flow: r.u32()?,
                seq: r.u32()?,
                node: r.u32()?,
                dst: r.u32()?,
                ttl: r.u32()?,
                origin_ns: r.u64()?,
            }),
            4 => PmEvent::ChurnDown { node: r.u32()? },
            5 => PmEvent::ChurnUp { node: r.u32()? },
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown ParMesh event tag {other}"
                )))
            }
        })
    }

    fn encode_state(&self, out: &mut ByteWriter) {
        let (s, cached) = self.rng.save_state();
        for word in s {
            out.u64(word);
        }
        match cached {
            Some(bits) => {
                out.u8(1);
                out.u64(bits);
            }
            None => out.u8(0),
        }
        out.u32(self.hello_seq);
        // Owned loads are dense and parallel to the sorted `own` list, so
        // the node ids are implicit; hash maps go in sorted key order — the
        // encoding must be a pure function of logical state, never of map
        // iteration order.
        out.u32(self.loads.len() as u32);
        for nl in &self.loads {
            out.u32(nl.load);
            out.u32(nl.recent);
        }
        let mut remote: Vec<(u32, u32)> = self.remote.iter().map(|(&k, &v)| (k, v)).collect();
        remote.sort_by_key(|&(k, _)| k);
        out.u32(remote.len() as u32);
        for (node, load) in remote {
            out.u32(node);
            out.u32(load);
        }
        let mut flow_seq: Vec<(u32, u32)> = self.flow_seq.iter().map(|(&k, &v)| (k, v)).collect();
        flow_seq.sort_by_key(|&(k, _)| k);
        out.u32(flow_seq.len() as u32);
        for (flow, seq) in flow_seq {
            out.u32(flow);
            out.u32(seq);
        }
        out.u64(self.stats.originated);
        out.u64(self.stats.delivered);
        out.u64(self.stats.dropped_no_route);
        out.u64(self.stats.dropped_expired);
        out.u64(self.stats.dropped_node_down);
        out.u64(self.stats.forwards);
        out.u64(self.stats.delay_sum_ns);
        out.u64(self.stats.hops_sum);
        // Buffered telemetry: the trace accumulated so far, so a resumed
        // run reproduces the full JSONL output from t = 0 byte-for-byte.
        match &self.sink {
            Some(sink) => {
                let events = &sink.lock().unwrap().events;
                out.u32(events.len() as u32);
                for ev in events {
                    ev.encode_binary(out);
                }
            }
            None => out.u32(0),
        }
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        let cached = if r.u8()? == 1 { Some(r.u64()?) } else { None };
        self.rng.restore_state(s, cached);
        self.hello_seq = r.u32()?;
        let n_loads = r.u32()? as usize;
        if n_loads != self.own.len() {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint carries {n_loads} owned loads, region has {}",
                self.own.len()
            )));
        }
        for nl in self.loads.iter_mut() {
            nl.load = r.u32()?;
            nl.recent = r.u32()?;
        }
        self.remote.clear();
        for _ in 0..r.u32()? {
            let node = r.u32()?;
            let load = r.u32()?;
            self.remote.insert(node, load);
        }
        self.flow_seq.clear();
        for _ in 0..r.u32()? {
            let flow = r.u32()?;
            let seq = r.u32()?;
            self.flow_seq.insert(flow, seq);
        }
        self.stats = RegionStats {
            originated: r.u64()?,
            delivered: r.u64()?,
            dropped_no_route: r.u64()?,
            dropped_expired: r.u64()?,
            dropped_node_down: r.u64()?,
            forwards: r.u64()?,
            delay_sum_ns: r.u64()?,
            hops_sum: r.u64()?,
        };
        let n_events = r.u32()? as usize;
        match &self.sink {
            Some(sink) => {
                let mut events = Vec::with_capacity(n_events);
                for _ in 0..n_events {
                    events.push(TelemetryEvent::decode_binary(r)?);
                }
                sink.lock().unwrap().events = events;
            }
            None if n_events > 0 => {
                return Err(CheckpointError::Corrupt(
                    "checkpoint carries telemetry but this run has it off".into(),
                ));
            }
            None => {}
        }
        Ok(())
    }
}

/// Resolve the region grid for a `side` × `side` field: near-square, sides
/// at least [`MIN_REGION_SIDE_M`], honouring an explicit request when
/// geometry allows. With no request the tuner targets one region per ~384
/// nodes with **no upper cap** — a million-node field resolves to a
/// 51 × 51 grid (2601 regions), far past the 256 regions older revisions
/// silently clamped to. Deliberately *not* a function of the worker thread
/// count: the grid is part of the scenario and must stay identical when a
/// run (or a checkpoint resume) changes its thread count.
pub fn region_grid(side: f64, nodes: usize, requested: Option<usize>) -> (usize, usize) {
    let max_axis = ((side / MIN_REGION_SIDE_M).floor() as usize).max(1);
    let target = requested.unwrap_or_else(|| (nodes / 384).max(1)).max(1);
    let mut rx = (target as f64).sqrt().floor() as usize;
    rx = rx.clamp(1, max_axis);
    let mut ry = (target / rx).max(1);
    ry = ry.clamp(1, max_axis);
    (rx, ry)
}

fn run_parmesh(cfg: &ParMesh) -> Result<ParMeshOutcome, CheckpointError> {
    assert!(
        !(cfg.trace_hash && cfg.supervised()),
        "trace_hash folds events away as they are emitted; checkpoints need \
         the buffered trace, so the two are incompatible"
    );
    let n = cfg.nodes;
    let cols = (n as f64).sqrt().ceil() as usize;
    let side = cols as f64 * PITCH_M;
    let horizon = SimTime::ZERO + cfg.duration;

    // --- placement + mobility parameters (master RNG, build thread) ---
    // Jittered grid at the scale presets' pitch: same density as the
    // classic topology, but no geographic voids for greedy forwarding to
    // fall into.
    let mut params = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = SimRng::derive(cfg.seed, DOMAIN_PLACE, i as u64);
        let gx = (i % cols) as f64 * PITCH_M + PITCH_M / 2.0;
        let gy = (i / cols) as f64 * PITCH_M + PITCH_M / 2.0;
        let home = (
            (gx + rng.range_f64(-40.0, 40.0)).clamp(0.0, side),
            (gy + rng.range_f64(-40.0, 40.0)).clamp(0.0, side),
        );
        let mut drift = SimRng::derive(cfg.seed, DOMAIN_DRIFT, i as u64);
        let (amp, omega, phase) = if cfg.mobility {
            (
                drift.range_f64(5.0, DRIFT_AMP_M),
                drift.range_f64(0.05, 0.3),
                drift.range_f64(0.0, std::f64::consts::TAU),
            )
        } else {
            (0.0, 0.0, 0.0)
        };
        params.push(NodeParams {
            home,
            amp,
            omega,
            phase,
        });
    }

    // --- churn schedule (pure function of the seed) ---
    let dur_ns = cfg.duration.as_nanos();
    let mut churn: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    if cfg.churn {
        for (i, intervals) in churn.iter_mut().enumerate() {
            let mut rng = SimRng::derive(cfg.seed, DOMAIN_CHURN, i as u64);
            if rng.chance(0.04) {
                let start = (rng.range_f64(0.15, 0.7) * dur_ns as f64) as u64;
                let len = (rng.range_f64(0.05, 0.2) * dur_ns as f64) as u64;
                intervals.push((start, (start + len).min(dur_ns)));
            }
        }
    }

    // --- spatial hash over homes ---
    let ncx = ((side / CELL_M).ceil() as usize).max(1);
    let ncy = ncx;
    let mut cells: Vec<Vec<u32>> = vec![Vec::new(); ncx * ncy];
    for (i, p) in params.iter().enumerate() {
        let cx = ((p.home.0 / CELL_M) as usize).min(ncx - 1);
        let cy = ((p.home.1 / CELL_M) as usize).min(ncy - 1);
        cells[cy * ncx + cx].push(i as u32);
    }

    // --- region grid + ownership ---
    let (rx, ry) = region_grid(side, n, cfg.regions);
    let regions = rx * ry;
    if let Some(req) = cfg.regions {
        if regions != req {
            eprintln!(
                "wmn: --regions {req} cannot be honoured on a {side:.0} m field \
                 (region sides must stay >= {MIN_REGION_SIDE_M:.0} m); \
                 granted {rx}x{ry} = {regions} regions"
            );
        }
    }
    let mut region_of_node = Vec::with_capacity(n);
    {
        let probe = Statics {
            params: Vec::new(),
            churn_idx: vec![0],
            churn_iv: Vec::new(),
            cell_idx: vec![0],
            cell_nodes: Vec::new(),
            ncx,
            ncy,
            side,
            rx,
            ry,
            region_of_node: Vec::new(),
            flows: Vec::new(),
            interval: cfg.interval,
            horizon,
        };
        for p in &params {
            region_of_node.push(probe.region_at(p.home.0, p.home.1));
        }
    }

    // --- flows: local destinations a few hops away ---
    let mut flow_rng = SimRng::derive(cfg.seed, DOMAIN_FLOWS, 0);
    let nearest_to = |x: f64, y: f64, exclude: u32| -> Option<u32> {
        let cx = ((x / CELL_M) as usize).min(ncx - 1);
        let cy = ((y / CELL_M) as usize).min(ncy - 1);
        let mut best: Option<(f64, u32)> = None;
        for ring in 0..ncx.max(ncy) {
            let r = ring as i64;
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx.abs() != r && dy.abs() != r {
                        continue; // ring boundary only
                    }
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= ncx as i64 || ny >= ncy as i64 {
                        continue;
                    }
                    for &v in &cells[ny as usize * ncx + nx as usize] {
                        if v == exclude {
                            continue;
                        }
                        let d = dist(params[v as usize].home, (x, y));
                        let better = match best {
                            None => true,
                            Some((bd, bv)) => d < bd || (d == bd && v < bv),
                        };
                        if better {
                            best = Some((d, v));
                        }
                    }
                }
            }
            // One extra ring after the first hit guarantees the true
            // nearest (a closer node can live one ring out at most).
            if best.is_some() && ring > 0 {
                break;
            }
        }
        best.map(|(_, v)| v)
    };
    let mut flows = Vec::with_capacity(cfg.flows);
    for _ in 0..cfg.flows {
        let src = flow_rng.below(n as u64) as u32;
        let angle = flow_rng.range_f64(0.0, std::f64::consts::TAU);
        let reach = flow_rng.range_f64(500.0, 2_500.0);
        let tx = (params[src as usize].home.0 + reach * angle.cos()).clamp(0.0, side);
        let ty = (params[src as usize].home.1 + reach * angle.sin()).clamp(0.0, side);
        let Some(dst) = nearest_to(tx, ty, src) else {
            continue;
        };
        let start = SimTime::from_secs_f64(flow_rng.range_f64(0.5, 1.5));
        flows.push(Flow { src, dst, start });
    }

    let (churn_idx, churn_iv) = flatten_csr(&churn);
    let (cell_idx, cell_nodes) = flatten_csr(&cells);
    drop(churn);
    drop(cells);
    let st = Arc::new(Statics {
        params,
        churn_idx,
        churn_iv,
        cell_idx,
        cell_nodes,
        ncx,
        ncy,
        side,
        rx,
        ry,
        region_of_node,
        flows,
        interval: cfg.interval,
        horizon,
    });

    // --- per-region worlds, sinks, RNG streams ---
    let mut own: Vec<Vec<u32>> = vec![Vec::new(); regions];
    for (i, &r) in st.region_of_node.iter().enumerate() {
        own[r as usize].push(i as u32);
    }
    let mut sinks: Vec<Option<Arc<Mutex<MemorySink>>>> = Vec::with_capacity(regions);
    let mut hash_sinks: Vec<Arc<Mutex<HashSink>>> = Vec::new();
    let worlds: Vec<RegionNet> = (0..regions)
        .map(|r| {
            let (tel, sink) = if cfg.telemetry {
                let inner = Arc::new(Mutex::new(MemorySink::default()));
                sinks.push(Some(inner.clone()));
                (Tel::new(inner.clone() as SharedSink, 0), Some(inner))
            } else if cfg.trace_hash {
                let inner = Arc::new(Mutex::new(HashSink::new()));
                hash_sinks.push(inner.clone());
                sinks.push(None);
                (Tel::new(inner as SharedSink, 0), None)
            } else {
                sinks.push(None);
                (Tel::off(), None)
            };
            RegionNet {
                id: r as RegionId,
                st: st.clone(),
                loads: vec![NodeLoad::default(); own[r].len()],
                own: own[r].clone(),
                remote: HashMap::new(),
                rng: SimRng::derive(cfg.seed, DOMAIN_REGION, r as u64),
                tel,
                sink,
                hello_seq: 0,
                flow_seq: HashMap::new(),
                stats: RegionStats::default(),
            }
        })
        .collect();

    // Ring-1 regions interact with HOP_FLOOR lookahead; farther regions
    // only transitively (the engine's closure derives the multi-hop
    // bounds). Geometry (MIN_REGION_SIDE_M > max hop) guarantees no direct
    // send ever spans more than one ring.
    let lookahead = if regions == 1 {
        Lookahead::uniform(1, SimDuration::ZERO)
    } else {
        let st2 = st.clone();
        Lookahead::from_fn(regions, move |a, b| {
            let (ax, ay) = st2.region_coords(a);
            let (bx, by) = st2.region_coords(b);
            let cheb = ax.abs_diff(bx).max(ay.abs_diff(by));
            if cheb <= 1 {
                HOP_FLOOR
            } else {
                wmn_sim::shard::NEVER
            }
        })
    };

    // The event budget is a runaway guard, not a scenario knob; scale it
    // with the world so million-node runs don't trip it.
    let budget = 500_000_000u64.max(n as u64 * 1_000);
    let mut engine = ShardedEngine::new(worlds, lookahead, horizon)
        .with_event_budget(budget)
        .with_stealing(cfg.steal);

    // Pre-size region queues from the event plan — the pending set holds
    // one HELLO timer, one Originate timer per sourced flow, the scheduled
    // churn transitions, plus in-flight packets (a few per flow routed
    // through); reserving up front keeps the steady state reallocation-free.
    let mut plan: Vec<usize> = own.iter().map(|o| 1 + o.len() / 16).collect();
    for flow in &st.flows {
        plan[st.region_of_node[flow.src as usize] as usize] += 4;
    }
    for (i, &r) in st.region_of_node.iter().enumerate() {
        plan[r as usize] += st.churn_of(i as u32).len() * 2;
    }
    for (r, extra) in plan.into_iter().enumerate() {
        engine.reserve_region(r as RegionId, extra);
    }

    // --- prime: hellos, flows, churn transitions ---
    for (r, owned) in own.iter().enumerate().take(regions) {
        if !owned.is_empty() {
            engine.prime(
                r as RegionId,
                SimTime::ZERO + HELLO_INTERVAL,
                PmEvent::HelloTick,
            );
        }
    }
    for (f, flow) in st.flows.iter().enumerate() {
        let r = st.region_of_node[flow.src as usize];
        engine.prime(r, flow.start, PmEvent::Originate { flow: f as u32 });
    }
    for i in 0..n {
        let r = st.region_of_node[i];
        for &(down, up) in st.churn_of(i as u32) {
            engine.prime(r, SimTime(down), PmEvent::ChurnDown { node: i as u32 });
            if up < dur_ns {
                engine.prime(r, SimTime(up), PmEvent::ChurnUp { node: i as u32 });
            }
        }
    }

    let mut profile = None;
    let mut supervisor = None;
    let (report, worlds) = if cfg.supervised() {
        // Robustness path: resume from the newest checkpoint if asked, then
        // run under the crash-tolerant supervisor.
        let scenario = cfg.scenario_fingerprint();
        if cfg.resume {
            let dir = cfg.checkpoint_dir.as_ref().ok_or_else(|| {
                CheckpointError::NotFound("--resume needs a checkpoint dir".into())
            })?;
            let newest = checkpoint::list_dir(dir)
                .unwrap_or_default()
                .into_iter()
                .filter(|(epoch, _)| epoch.is_some())
                .max_by_key(|&(epoch, _)| epoch);
            if let Some((_, path)) = newest {
                let bytes = checkpoint::read_file(&path)?;
                engine.restore(&bytes, scenario)?;
            }
            // No checkpoints yet: start fresh (first leg of a resumable run).
        }
        let scfg = SupervisorConfig {
            scenario,
            checkpoint_dir: cfg.checkpoint_dir.clone(),
            checkpoint_every: cfg.checkpoint_every.or_else(|| {
                cfg.checkpoint_dir
                    .is_some()
                    .then(|| SimDuration::from_secs(1))
            }),
            crash_plan: cfg.crash_plan.clone(),
            interrupt: cfg.interrupt.clone(),
        };
        let (report, worlds, sup) = if cfg.profile {
            let mut profiler = ShardProfiler::new(cfg.threads);
            let out = engine.run_supervised(cfg.threads, Some(&mut profiler), &scfg)?;
            profile = Some(profiler.finish());
            out
        } else {
            engine.run_supervised(cfg.threads, None, &scfg)?
        };
        supervisor = Some(sup);
        (report, worlds)
    } else if cfg.profile {
        let mut profiler = ShardProfiler::new(cfg.threads);
        let out = engine.run_probed(cfg.threads, Some(&mut profiler));
        profile = Some(profiler.finish());
        out
    } else {
        engine.run(cfg.threads)
    };

    // --- aggregate ---
    let mut agg = ParMeshReport {
        nodes: n,
        regions,
        events: report.events_processed,
        epochs: report.epochs,
        cross_region: report.cross_region,
        end_time: report.end_time,
        ..ParMeshReport::default()
    };
    let mut delay_sum = 0u64;
    let mut hops_sum = 0u64;
    for w in &worlds {
        agg.originated += w.stats.originated;
        agg.delivered += w.stats.delivered;
        agg.dropped_no_route += w.stats.dropped_no_route;
        agg.dropped_expired += w.stats.dropped_expired;
        agg.dropped_node_down += w.stats.dropped_node_down;
        agg.forwards += w.stats.forwards;
        delay_sum += w.stats.delay_sum_ns;
        hops_sum += w.stats.hops_sum;
    }
    if agg.delivered > 0 {
        agg.mean_delay_s = delay_sum as f64 / 1e9 / agg.delivered as f64;
        agg.mean_hops = hops_sum as f64 / agg.delivered as f64;
    }

    let (trace, trace_fp) = if cfg.telemetry {
        let per_region: Vec<Vec<TelemetryEvent>> = sinks
            .into_iter()
            .map(|s| match s {
                Some(inner) => std::mem::take(&mut inner.lock().unwrap().events),
                None => Vec::new(),
            })
            .collect();
        // With both telemetry and trace_hash on, fold the buffered traces
        // through the same per-region hashing a hash-only run streams, so
        // the two modes cross-validate each other.
        let fp = cfg.trace_hash.then(|| {
            let fps: Vec<(u64, u64)> = per_region
                .iter()
                .map(|evs| {
                    let mut h = HashSink::new();
                    for ev in evs {
                        h.record(ev);
                    }
                    h.fingerprint()
                })
                .collect();
            combine_region_fps(&fps)
        });
        (merge_region_traces(per_region), fp)
    } else if cfg.trace_hash {
        let fps: Vec<(u64, u64)> = hash_sinks
            .iter()
            .map(|s| s.lock().unwrap().fingerprint())
            .collect();
        (Vec::new(), Some(combine_region_fps(&fps)))
    } else {
        (Vec::new(), None)
    };

    // Rebuild the 1 Hz cross-layer probe feed from the merged trace; the
    // merge order makes the series independent of region/thread layout.
    let mut probes = ProbeSeries::new(HELLO_INTERVAL);
    for ev in &trace {
        if let EventKind::NodeProbe {
            queue,
            busy,
            load,
            fwd_p,
        } = ev.kind
        {
            probes.record(SimTime(ev.t_ns), queue, busy, load, fwd_p);
        }
    }

    Ok(ParMeshOutcome {
        report: agg,
        trace,
        trace_fp,
        profile,
        probes,
        supervisor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(threads: usize) -> ParMeshOutcome {
        ParMesh::new(400)
            .seed(7)
            .flows(40)
            .regions(9) // force a real grid; 400 nodes would default to 1
            .duration(SimDuration::from_secs(5))
            .threads(threads)
            .telemetry(true)
            .run()
    }

    #[test]
    fn delivers_most_packets() {
        let out = small(1);
        assert!(out.report.originated > 500, "{:?}", out.report);
        assert!(
            out.report.pdr() > 0.5,
            "pdr {} report {:?}",
            out.report.pdr(),
            out.report
        );
        assert!(out.report.mean_hops >= 1.0);
        assert!(out.report.regions >= 1);
    }

    #[test]
    fn thread_count_is_invisible_in_results_and_trace() {
        let base = small(1);
        for threads in [2, 8] {
            let out = small(threads);
            assert_eq!(base.report.originated, out.report.originated);
            assert_eq!(base.report.delivered, out.report.delivered);
            assert_eq!(base.report.forwards, out.report.forwards);
            assert_eq!(base.report.events, out.report.events);
            assert_eq!(base.report.epochs, out.report.epochs);
            assert_eq!(base.trace.len(), out.trace.len());
            for (i, (a, b)) in base.trace.iter().zip(&out.trace).enumerate() {
                assert_eq!(a, b, "trace diverges at event {i} with {threads} threads");
            }
        }
    }

    #[test]
    fn seed_changes_results() {
        let a = ParMesh::new(300)
            .seed(1)
            .duration(SimDuration::from_secs(3))
            .run();
        let b = ParMesh::new(300)
            .seed(2)
            .duration(SimDuration::from_secs(3))
            .run();
        assert_ne!(
            (a.report.delivered, a.report.forwards),
            (b.report.delivered, b.report.forwards)
        );
    }

    #[test]
    fn churn_drops_packets_somewhere() {
        // With churn on, a large enough scenario sees node-down drops or at
        // least some crashed nodes in the schedule.
        let out = ParMesh::new(800)
            .seed(3)
            .flows(200)
            .duration(SimDuration::from_secs(6))
            .telemetry(true)
            .run();
        let downs = out
            .trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NodeDown { .. }))
            .count();
        assert!(downs > 0, "churn schedule produced no crashes");
    }

    #[test]
    fn trace_is_time_ordered() {
        let out = small(2);
        assert!(!out.trace.is_empty());
        assert!(out.trace.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn probes_fire_at_one_hertz() {
        let out = small(2);
        assert!(!out.probes.is_empty());
        let n_probes = out
            .trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NodeProbe { .. }))
            .count();
        // 400 nodes × ~4 in-horizon ticks, minus nodes down during churn.
        assert!(n_probes > 1000, "only {n_probes} probe events");
        // Probe events land exactly on HELLO ticks.
        assert!(out
            .trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NodeProbe { .. }))
            .all(|e| e.t_ns % HELLO_INTERVAL.as_nanos() == 0));
    }

    #[test]
    fn profiling_changes_nothing_and_fingerprint_is_thread_invariant() {
        let profiled = |threads: usize| {
            ParMesh::new(400)
                .seed(7)
                .flows(40)
                .regions(9)
                .duration(SimDuration::from_secs(5))
                .threads(threads)
                .telemetry(true)
                .profile(true)
                .run()
        };
        let base = small(2);
        let a = profiled(2);
        assert!(base.profile.is_none());
        assert_eq!(base.report.events, a.report.events);
        assert_eq!(base.trace, a.trace);
        let pa = a.profile.as_ref().expect("profile present");
        assert_eq!(pa.events, a.report.events);
        assert_eq!(pa.epochs, a.report.epochs);
        assert_eq!(pa.regions as usize, a.report.regions);
        let b = profiled(8);
        let pb = b.profile.as_ref().expect("profile present");
        assert_eq!(pa.sim_fingerprint(), pb.sim_fingerprint());
    }

    #[test]
    fn injected_crashes_recover_to_identical_results() {
        let base = small(2);
        for threads in [1, 4] {
            let out = ParMesh::new(400)
                .seed(7)
                .flows(40)
                .regions(9)
                .duration(SimDuration::from_secs(5))
                .threads(threads)
                .telemetry(true)
                .crash_plan(CrashPlan {
                    scripted: Vec::new(),
                    stochastic: Some(wmn_sim::shard::StochasticCrash {
                        rate: 0.002,
                        seed: 5,
                        max: 3,
                    }),
                })
                .run();
            let sup = out.supervisor.as_ref().expect("supervised run");
            // Crash decisions are coordinator-side and consumed, so the
            // number of recoveries is a pure function of the scenario.
            assert!(sup.recoveries >= 1, "stochastic plan never fired");
            assert_eq!(sup.recoveries, 3, "{threads} threads");
            assert!(!sup.interrupted);
            assert_eq!(base.report.delivered, out.report.delivered);
            assert_eq!(base.report.events, out.report.events);
            assert_eq!(base.trace, out.trace, "{threads} threads");
        }
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_run() {
        let dir = std::env::temp_dir().join(format!("wmn_parmesh_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scenario = |threads: usize| {
            ParMesh::new(400)
                .seed(7)
                .flows(40)
                .regions(9)
                .duration(SimDuration::from_secs(5))
                .threads(threads)
                .telemetry(true)
        };
        let base = small(1);

        // Leg 1: run to completion while writing checkpoints.
        let full = scenario(2)
            .checkpoint_dir(&dir)
            .checkpoint_every(SimDuration::from_secs(1))
            .run();
        let sup = full.supervisor.as_ref().expect("supervised");
        assert!(sup.checkpoints_written >= 2, "{sup:?}");
        assert_eq!(
            base.trace, full.trace,
            "checkpointing must not alter results"
        );
        assert_eq!(base.report.delivered, full.report.delivered);

        // Leg 2: resume from the newest on-disk checkpoint at a different
        // thread count; the finished run must be bit-identical.
        let resumed = scenario(4)
            .checkpoint_dir(&dir)
            .checkpoint_every(SimDuration::from_secs(1))
            .resume(true)
            .run();
        let sup = resumed.supervisor.as_ref().expect("supervised");
        assert!(sup.resumed_from_epoch.is_some(), "{sup:?}");
        assert_eq!(base.trace, resumed.trace);
        assert_eq!(base.report.delivered, resumed.report.delivered);
        assert_eq!(base.report.events, resumed.report.events);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_corrupt_checkpoint_is_a_structured_error() {
        let dir = std::env::temp_dir().join(format!("wmn_parmesh_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ckpt_epoch_5.wmnckpt"), b"not a checkpoint").unwrap();
        let err = ParMesh::new(100)
            .duration(SimDuration::from_secs(1))
            .checkpoint_dir(&dir)
            .resume(true)
            .try_run()
            .expect_err("corrupt checkpoint must refuse");
        assert!(
            matches!(err, CheckpointError::Corrupt(_)),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn region_grid_respects_geometry() {
        // 400 nodes: side = 3.6 km; minimum side 560 m allows at most 6
        // regions per axis even when far more are requested.
        let side = (400f64).sqrt() * PITCH_M;
        let (rx, ry) = region_grid(side, 400, Some(10_000));
        assert!(rx as f64 * MIN_REGION_SIDE_M <= side);
        assert!(ry as f64 * MIN_REGION_SIDE_M <= side);
    }

    #[test]
    fn region_grid_auto_tunes_past_the_old_256_cap() {
        // A million-node field used to be silently clamped to 256 regions;
        // the auto-tuner now grants the density-derived grid.
        let side = 1000.0 * PITCH_M;
        let (rx, ry) = region_grid(side, 1_000_000, None);
        assert_eq!((rx, ry), (51, 51));
        assert!(rx * ry > 256);
        // The grids behind the committed fig12/fig13 CSVs must not move.
        assert_eq!(
            region_grid((10_000f64).sqrt() * PITCH_M, 10_000, None),
            (5, 5)
        );
        assert_eq!(region_grid(317.0 * PITCH_M, 100_000, None), (16, 16));
    }

    #[test]
    fn steal_setting_is_invisible_in_results_and_trace() {
        let run = |threads: usize, steal: bool| {
            ParMesh::new(400)
                .seed(7)
                .flows(40)
                .regions(9)
                .duration(SimDuration::from_secs(5))
                .threads(threads)
                .steal(steal)
                .telemetry(true)
                .run()
        };
        let base = run(1, false);
        for (threads, steal) in [(1, true), (2, true), (8, true), (8, false)] {
            let out = run(threads, steal);
            assert_eq!(base.report.delivered, out.report.delivered);
            assert_eq!(base.report.events, out.report.events);
            assert_eq!(
                base.trace, out.trace,
                "trace diverges at {threads} threads, steal={steal}"
            );
        }
    }

    #[test]
    fn trace_hash_matches_full_telemetry_and_is_schedule_invariant() {
        let run = |threads: usize, steal: bool, telemetry: bool| {
            ParMesh::new(400)
                .seed(7)
                .flows(40)
                .regions(9)
                .duration(SimDuration::from_secs(5))
                .threads(threads)
                .steal(steal)
                .telemetry(telemetry)
                .trace_hash(true)
                .run()
        };
        // Hash-only run vs full-telemetry run: same per-region streams,
        // same fingerprint — and a real trace only in the latter.
        let hashed = run(1, true, false);
        let full = run(1, true, true);
        assert!(hashed.trace.is_empty());
        assert!(!full.trace.is_empty());
        let fp = hashed.trace_fp.expect("fingerprint present");
        assert!(fp.0 > 0, "fingerprint counted no events");
        assert_eq!(Some(fp), full.trace_fp);
        // Threads and steal schedule are invisible to the fingerprint.
        for (threads, steal) in [(2, true), (8, true), (4, false)] {
            assert_eq!(Some(fp), run(threads, steal, false).trace_fp);
        }
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn trace_hash_refuses_checkpointing() {
        let dir = std::env::temp_dir().join("wmn_parmesh_hash_ckpt");
        let _ = ParMesh::new(100)
            .duration(SimDuration::from_secs(1))
            .trace_hash(true)
            .checkpoint_dir(&dir)
            .run();
    }
}
