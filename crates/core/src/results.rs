//! Run-level result collection.

use crate::medium::MediumStats;
use crate::network::{DropCounters, FaultCounters, Network};
use wmn_mac::MacStats;
use wmn_metrics::{hotspot_factor, jain_index, pdr_during_outages, time_to_reconverge};
use wmn_routing::RoutingStats;
use wmn_sim::{RunReport, SimDuration};
use wmn_telemetry::Counters;
use wmn_traffic::TrackerSummary;

/// Everything a single simulation run produces, aggregated network-wide.
#[derive(Clone, Debug)]
pub struct RunResults {
    /// Scheme label.
    pub scheme: String,
    /// Node count.
    pub nodes: usize,
    /// Flow count.
    pub flows: usize,
    /// Measured (post-warm-up) interval, seconds.
    pub measured_s: f64,
    /// Flow-level delivery summary.
    pub summary: TrackerSummary,
    /// Aggregate goodput over the measured interval, kb/s.
    pub goodput_kbps: f64,
    /// Total RREQ transmissions (originated + forwarded).
    pub rreq_tx: u64,
    /// RREQ transmissions per discovery attempt.
    pub rreq_tx_per_discovery: f64,
    /// Saved-rebroadcast ratio: `1 − forwarded / first_copies_received`
    /// (0 for blind flooding by construction, higher = fewer rebroadcasts).
    pub saved_rebroadcast: f64,
    /// Fraction of discoveries that found a route.
    pub discovery_success: f64,
    /// All control transmissions (RREQ + RREP + RERR + HELLO).
    pub control_tx: u64,
    /// Normalised routing load: control transmissions per delivered packet.
    pub normalized_routing_load: f64,
    /// Jain fairness of per-node forwarded-data counts.
    pub jain_forwarding: f64,
    /// Max/mean ratio of per-node forwarded-data counts.
    pub hotspot: f64,
    /// Highest interface-queue occupancy seen anywhere.
    pub max_queue_peak: usize,
    /// Data losses by cause.
    pub drops: DropCounters,
    /// Fault injections applied (all zero without a fault plan).
    pub faults: FaultCounters,
    /// Node outages as `(node, down_s, up_s)`; an outage still open at the
    /// end of the run is closed at the horizon.
    pub outages_s: Vec<(u32, f64, f64)>,
    /// Route-repair latencies (crash → next end-to-end delivery), seconds.
    pub repair_latency_s: Vec<f64>,
    /// Delivery ratio restricted to outage windows (`None` without faults).
    pub pdr_during_outage: Option<f64>,
    /// Seconds from the first crash until the delivery rate sustains 80 %
    /// of its pre-fault baseline (`None` without faults, or if it never
    /// re-converges within the run).
    pub reconverge_s: Option<f64>,
    /// Network-wide routing counters.
    pub routing: RoutingStats,
    /// Network-wide MAC counters.
    pub mac: MacStats,
    /// Medium loss counters.
    pub medium: MediumStats,
    /// Engine events processed.
    pub events: u64,
    /// Delivered packets per second, per 1-second bin from t = 0 (includes
    /// the warm-up, so the discovery transient is visible).
    pub delivery_rate_pps: Vec<f64>,
    /// Total radio energy consumed network-wide, joules.
    pub energy_total_j: f64,
    /// Energy per delivered data packet, millijoules.
    pub energy_per_delivered_mj: f64,
    /// Communication-only (tx + rx) energy per delivered packet,
    /// millijoules — the scheme-discriminating efficiency metric (idle
    /// draw is identical across schemes).
    pub comm_energy_per_delivered_mj: f64,
    /// Highest single-node energy consumption, joules.
    pub energy_max_node_j: f64,
}

impl RunResults {
    /// Harvest results from a finished network.
    pub fn collect(
        network: &Network,
        report: &RunReport,
        scheme: String,
        measured: SimDuration,
    ) -> Self {
        let mut routing = RoutingStats::default();
        let mut mac = MacStats::default();
        let mut per_node_forwarded = Vec::with_capacity(network.nodes.len());
        let mut max_queue_peak = 0usize;
        for node in &network.nodes {
            routing.accumulate(node.routing.stats());
            mac.accumulate(node.mac.stats());
            // Stats retired by reboots: counters from previous incarnations
            // must still reconcile with the trace.
            routing.accumulate(&node.retired_routing);
            mac.accumulate(&node.retired_mac);
            per_node_forwarded.push(
                (node.routing.stats().data_forwarded + node.retired_routing.data_forwarded) as f64,
            );
            max_queue_peak = max_queue_peak.max(node.mac.queue().peak());
        }
        let mut energy_total = 0.0f64;
        let mut energy_max = 0.0f64;
        let mut comm_energy = 0.0f64;
        for i in 0..network.nodes.len() {
            let e = network.medium.energy_joules(i as u32, report.end_time);
            energy_total += e;
            energy_max = energy_max.max(e);
            comm_energy += network.medium.comm_energy_joules(i as u32, report.end_time);
        }
        let horizon = report.end_time.as_secs_f64();
        let outages_s: Vec<(u32, f64, f64)> = network
            .outages
            .iter()
            .map(|&(node, down, up)| (node, down, up.unwrap_or(horizon)))
            .collect();
        let windows: Vec<(f64, f64)> = outages_s.iter().map(|&(_, a, b)| (a, b)).collect();
        let pdr_during_outage =
            pdr_during_outages(&network.sent_timeline, &network.delivery_timeline, &windows);
        let reconverge_s = outages_s
            .first()
            .and_then(|&(_, down, _)| time_to_reconverge(&network.delivery_timeline, down, 0.8, 2));
        let summary = network.tracker.summary();
        let rreq_tx = routing.rreq_originated + routing.rreq_forwarded;
        let first_copies = routing
            .rreq_received
            .saturating_sub(routing.rreq_duplicates);
        let discoveries = routing.discoveries_started.max(1);
        let finished = routing.discoveries_succeeded + routing.discoveries_failed;
        RunResults {
            scheme,
            nodes: network.nodes.len(),
            flows: network.flows.len(),
            measured_s: measured.as_secs_f64(),
            goodput_kbps: network.tracker.goodput_bps(measured) / 1000.0,
            rreq_tx,
            rreq_tx_per_discovery: rreq_tx as f64 / discoveries as f64,
            saved_rebroadcast: if first_copies == 0 {
                0.0
            } else {
                1.0 - (routing.rreq_forwarded as f64 / first_copies as f64).min(1.0)
            },
            discovery_success: if finished == 0 {
                1.0
            } else {
                routing.discoveries_succeeded as f64 / finished as f64
            },
            control_tx: routing.control_tx(),
            normalized_routing_load: routing.control_tx() as f64 / summary.delivered.max(1) as f64,
            jain_forwarding: jain_index(&per_node_forwarded),
            hotspot: hotspot_factor(&per_node_forwarded),
            max_queue_peak,
            drops: network.drops,
            faults: network.faults,
            outages_s,
            repair_latency_s: network.recovery.latencies().to_vec(),
            pdr_during_outage,
            reconverge_s,
            routing,
            mac,
            medium: *network.medium.stats(),
            events: report.events_processed,
            delivery_rate_pps: network.delivery_timeline.rates().map(|(_, r)| r).collect(),
            energy_total_j: energy_total,
            energy_per_delivered_mj: energy_total * 1_000.0 / summary.delivered.max(1) as f64,
            comm_energy_per_delivered_mj: comm_energy * 1_000.0 / summary.delivered.max(1) as f64,
            energy_max_node_j: energy_max,
            summary,
        }
    }

    /// The unified counter registry: every routing, MAC, PHY and drop
    /// counter under its stable snake_case name. This is the single source
    /// of truth read by `tab2_summary`, run manifests and `wmn-trace
    /// summary --verify`.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        self.routing.visit(&mut |name, v| c.add(name, v));
        self.mac.visit(&mut |name, v| c.add(name, v));
        self.medium.visit(&mut |name, v| c.add(name, v));
        self.drops.visit(&mut |name, v| c.add(name, v));
        self.faults.visit(&mut |name, v| c.add(name, v));
        c
    }

    /// Packet delivery ratio shortcut.
    pub fn pdr(&self) -> f64 {
        self.summary.delivery_ratio
    }

    /// Mean end-to-end delay in milliseconds.
    pub fn mean_delay_ms(&self) -> f64 {
        self.summary.mean_delay_s * 1000.0
    }
}
