//! Property-based containment/liveness tests for all mobility models.

use proptest::prelude::*;
use wmn_mobility::{Mobility, MobilityConfig};
use wmn_sim::{SimRng, SimTime};
use wmn_topology::{Region, Vec2};

fn check_model(config: MobilityConfig, seed: u64, steps: usize) -> Result<(), TestCaseError> {
    let region = Region::square(400.0);
    let mut rng = SimRng::new(seed);
    let start = Vec2::new(rng.range_f64(0.0, 400.0), rng.range_f64(0.0, 400.0));
    let mut m = Mobility::new(config, start, region, SimTime::ZERO, &mut rng);
    let mut t = SimTime::ZERO;
    for _ in 0..steps {
        let next = m.next_update();
        prop_assert!(next > t, "next_update must advance");
        let mid = SimTime((t.as_nanos() / 2).saturating_add(next.as_nanos() / 2));
        for probe in [mid, next] {
            let p = m.position(probe);
            prop_assert!(p.is_finite());
            prop_assert!(region.contains(p), "escaped to {p:?}");
            prop_assert!(m.velocity(probe).is_finite());
        }
        t = next;
        m.advance(t, &mut rng);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rwp_contained(seed in any::<u64>(), vmax in 1.0f64..30.0, pause in 0.0f64..5.0) {
        check_model(
            MobilityConfig::RandomWaypoint { v_min: 0.5, v_max: 0.5 + vmax, pause_s: pause },
            seed,
            100,
        )?;
    }

    #[test]
    fn gauss_markov_contained(seed in any::<u64>(), alpha in 0.0f64..=1.0, speed in 0.5f64..25.0) {
        check_model(
            MobilityConfig::GaussMarkov {
                mean_speed: speed,
                alpha,
                sigma_speed: 2.0,
                sigma_dir: 0.6,
                update_s: 1.0,
            },
            seed,
            150,
        )?;
    }

    #[test]
    fn manhattan_contained(seed in any::<u64>(), block in 20.0f64..120.0, speed in 1.0f64..25.0) {
        check_model(
            MobilityConfig::Manhattan { block_m: block, mean_speed: speed, sigma_speed: 1.0 },
            seed,
            150,
        )?;
    }
}
