//! Random Waypoint — the canonical MANET client model.
//!
//! Each epoch the node picks a uniform destination in the field and a
//! uniform speed in `[v_min, v_max]`, travels there in a straight line, then
//! pauses. `v_min > 0` is enforced to avoid the well-known average-speed
//! decay pathology of `v_min = 0`.

use wmn_sim::{SimDuration, SimRng, SimTime};
use wmn_topology::{Region, Vec2};

#[derive(Clone, Copy, Debug)]
enum Phase {
    /// Travelling `from → to`, departing/arriving at the stored times.
    Leg {
        from: Vec2,
        to: Vec2,
        depart: SimTime,
        arrive: SimTime,
    },
    /// Paused at a waypoint until the stored time.
    Pause { at: Vec2, until: SimTime },
}

/// Random-waypoint state for one node.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    region: Region,
    v_min: f64,
    v_max: f64,
    pause: SimDuration,
    phase: Phase,
}

impl RandomWaypoint {
    /// Start at `start`; the first leg begins immediately.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        start: Vec2,
        region: Region,
        v_min: f64,
        v_max: f64,
        pause_s: f64,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            v_min > 0.0,
            "v_min must be positive (RWP speed-decay pathology)"
        );
        assert!(v_max >= v_min, "v_max < v_min");
        assert!(pause_s >= 0.0);
        let mut rwp = RandomWaypoint {
            region,
            v_min,
            v_max,
            pause: SimDuration::from_secs_f64(pause_s),
            phase: Phase::Pause {
                at: region.clamp(start),
                until: now,
            },
        };
        rwp.start_leg(now, rng);
        rwp
    }

    fn start_leg(&mut self, now: SimTime, rng: &mut SimRng) {
        let from = match self.phase {
            Phase::Pause { at, .. } => at,
            Phase::Leg { to, .. } => to,
        };
        let to = Vec2::new(
            rng.range_f64(0.0, self.region.width),
            rng.range_f64(0.0, self.region.height),
        );
        let speed = rng.range_f64(self.v_min, self.v_max).max(self.v_min);
        let dist = from.distance(to);
        let travel = SimDuration::from_secs_f64(dist / speed);
        self.phase = Phase::Leg {
            from,
            to,
            depart: now,
            arrive: now + travel,
        };
    }

    /// Position at `t` (exact linear interpolation on a leg).
    pub fn position(&self, t: SimTime) -> Vec2 {
        match self.phase {
            Phase::Pause { at, .. } => at,
            Phase::Leg {
                from,
                to,
                depart,
                arrive,
            } => {
                if t <= depart {
                    return from;
                }
                if t >= arrive {
                    return to;
                }
                let span = arrive.since(depart).as_secs_f64();
                let frac = t.since(depart).as_secs_f64() / span;
                from.lerp(to, frac)
            }
        }
    }

    /// Velocity at `t` (zero while paused).
    pub fn velocity(&self, t: SimTime) -> Vec2 {
        match self.phase {
            Phase::Pause { .. } => Vec2::ZERO,
            Phase::Leg {
                from,
                to,
                depart,
                arrive,
            } => {
                if t < depart || t >= arrive {
                    return Vec2::ZERO;
                }
                let span = arrive.since(depart).as_secs_f64();
                if span <= 0.0 {
                    return Vec2::ZERO;
                }
                (to - from) / span
            }
        }
    }

    /// When the current phase ends.
    pub fn next_update(&self) -> SimTime {
        match self.phase {
            Phase::Pause { until, .. } => until,
            Phase::Leg { arrive, .. } => arrive,
        }
    }

    /// Transition at a phase boundary.
    pub fn advance(&mut self, now: SimTime, rng: &mut SimRng) {
        match self.phase {
            Phase::Leg { to, arrive, .. } if now >= arrive => {
                if self.pause.is_zero() {
                    self.phase = Phase::Pause { at: to, until: now };
                    self.start_leg(now, rng);
                } else {
                    self.phase = Phase::Pause {
                        at: to,
                        until: now + self.pause,
                    };
                }
            }
            Phase::Pause { until, .. } if now >= until => {
                self.start_leg(now, rng);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(pause: f64) -> (RandomWaypoint, SimRng) {
        let mut rng = SimRng::new(5);
        let rwp = RandomWaypoint::new(
            Vec2::new(50.0, 50.0),
            Region::square(100.0),
            2.0,
            4.0,
            pause,
            SimTime::ZERO,
            &mut rng,
        );
        (rwp, rng)
    }

    #[test]
    fn leg_interpolates_linearly() {
        let (rwp, _) = setup(1.0);
        let t_end = rwp.next_update();
        let start = rwp.position(SimTime::ZERO);
        let end = rwp.position(t_end);
        let mid = rwp.position(SimTime(t_end.as_nanos() / 2));
        assert!((start.distance(mid) - mid.distance(end)).abs() < 1e-6);
        assert_eq!(start, Vec2::new(50.0, 50.0));
    }

    #[test]
    fn speed_within_bounds_on_leg() {
        let (rwp, _) = setup(1.0);
        let v = rwp
            .velocity(SimTime(rwp.next_update().as_nanos() / 2))
            .norm();
        assert!((2.0..=4.0 + 1e-9).contains(&v), "speed {v}");
    }

    #[test]
    fn pause_freezes_node() {
        let (mut rwp, mut rng) = setup(3.0);
        let arrive = rwp.next_update();
        let dest = rwp.position(arrive);
        rwp.advance(arrive, &mut rng);
        // Paused: holds position, zero velocity, resumes after 3 s.
        assert_eq!(rwp.next_update(), arrive + SimDuration::from_secs(3));
        let during = arrive + SimDuration::from_secs(1);
        assert_eq!(rwp.position(during), dest);
        assert_eq!(rwp.velocity(during), Vec2::ZERO);
        let resume = rwp.next_update();
        rwp.advance(resume, &mut rng);
        assert!(rwp.next_update() > resume);
    }

    #[test]
    fn zero_pause_chains_legs() {
        let (mut rwp, mut rng) = setup(0.0);
        let a1 = rwp.next_update();
        let p1 = rwp.position(a1);
        rwp.advance(a1, &mut rng);
        // Immediately on a new leg starting from the old destination.
        assert!(rwp.next_update() > a1);
        assert_eq!(rwp.position(a1), p1);
        assert!(rwp.velocity(a1 + SimDuration::from_millis(1)).norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "v_min")]
    fn zero_v_min_rejected() {
        let mut rng = SimRng::new(1);
        RandomWaypoint::new(
            Vec2::ZERO,
            Region::square(10.0),
            0.0,
            1.0,
            0.0,
            SimTime::ZERO,
            &mut rng,
        );
    }

    #[test]
    fn long_run_distribution_covers_field() {
        let (mut rwp, mut rng) = setup(0.5);
        let mut min = Vec2::new(f64::MAX, f64::MAX);
        let mut max = Vec2::new(f64::MIN, f64::MIN);
        for _ in 0..300 {
            let t = rwp.next_update();
            let p = rwp.position(t);
            min = Vec2::new(min.x.min(p.x), min.y.min(p.y));
            max = Vec2::new(max.x.max(p.x), max.y.max(p.y));
            rwp.advance(t, &mut rng);
        }
        assert!(max.x - min.x > 60.0, "x spread {}", max.x - min.x);
        assert!(max.y - min.y > 60.0, "y spread {}", max.y - min.y);
    }
}
