//! The trivial stationary "model" (mesh routers).

use wmn_topology::Vec2;

/// A node pinned at a fixed position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StaticPoint {
    position: Vec2,
}

impl StaticPoint {
    /// Pin a node at `position`.
    pub fn new(position: Vec2) -> Self {
        StaticPoint { position }
    }

    /// The (constant) position.
    pub fn position(&self) -> Vec2 {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_position() {
        let p = StaticPoint::new(Vec2::new(3.0, 4.0));
        assert_eq!(p.position(), Vec2::new(3.0, 4.0));
    }
}
