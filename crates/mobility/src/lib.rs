//! `wmn-mobility` — node motion models.
//!
//! Rebuilds the `setdest`-style mobility substrate: stationary mesh routers
//! plus three mobile-client models (Random Waypoint, Gauss–Markov and
//! Manhattan grid). Every model exposes the same piecewise-linear interface —
//! exact [`Mobility::position`]/[`Mobility::velocity`] between trajectory
//! changes and a [`Mobility::next_update`] instant at which the engine calls
//! [`Mobility::advance`] — so the simulator samples positions exactly, never
//! by numeric integration.
//!
//! Velocity queries exist because the VAP-CNLR extension (velocity-aware
//! probabilistic discovery) damps forwarding over unstable links.

#![warn(missing_docs)]

pub mod gauss_markov;
pub mod manhattan;
pub mod model;
pub mod rwp;
pub mod static_;

pub use gauss_markov::GaussMarkov;
pub use manhattan::Manhattan;
pub use model::{Mobility, MobilityConfig};
pub use rwp::RandomWaypoint;
pub use static_::StaticPoint;
