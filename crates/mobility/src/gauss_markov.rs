//! Gauss–Markov mobility — temporally correlated velocity.
//!
//! Speed and direction evolve as first-order autoregressive processes:
//! `s' = α·s + (1−α)·s̄ + √(1−α²)·σ_s·N`, likewise for direction. Between
//! updates motion is linear. Near the field border the mean direction is
//! steered towards the centre (the standard edge treatment), and any residual
//! overshoot is reflected.

use wmn_sim::{SimDuration, SimRng, SimTime};
use wmn_topology::{Region, Vec2};

/// Gauss–Markov state for one node.
#[derive(Clone, Debug)]
pub struct GaussMarkov {
    region: Region,
    mean_speed: f64,
    alpha: f64,
    sigma_speed: f64,
    sigma_dir: f64,
    interval: SimDuration,
    /// Segment start.
    at: Vec2,
    since: SimTime,
    speed: f64,
    direction: f64,
    /// Mean direction (steered near borders).
    mean_dir: f64,
}

impl GaussMarkov {
    /// Create a walker at `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        start: Vec2,
        region: Region,
        mean_speed: f64,
        alpha: f64,
        sigma_speed: f64,
        sigma_dir: f64,
        update_s: f64,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha out of [0,1]");
        assert!(mean_speed > 0.0 && update_s > 0.0);
        let direction = rng.range_f64(0.0, std::f64::consts::TAU);
        GaussMarkov {
            region,
            mean_speed,
            alpha,
            sigma_speed,
            sigma_dir,
            interval: SimDuration::from_secs_f64(update_s),
            at: region.clamp(start),
            since: now,
            speed: mean_speed,
            direction,
            mean_dir: direction,
        }
    }

    /// Current velocity vector (constant within a segment).
    pub fn velocity(&self) -> Vec2 {
        Vec2::new(self.direction.cos(), self.direction.sin()) * self.speed
    }

    /// Position at `t` within the current segment.
    pub fn position(&self, t: SimTime) -> Vec2 {
        let dt = t.since(self.since).as_secs_f64();
        let raw = self.at + self.velocity() * dt;
        // Clamp transient overshoot within a segment; `advance` reflects
        // properly at segment boundaries.
        self.region.clamp(raw)
    }

    /// End of the current segment.
    pub fn next_update(&self) -> SimTime {
        self.since + self.interval
    }

    /// Draw the next speed/direction and start a new segment.
    pub fn advance(&mut self, now: SimTime, rng: &mut SimRng) {
        // Commit the position, reflecting if the segment grazed a border.
        let dt = now.since(self.since).as_secs_f64();
        let raw = self.at + self.velocity() * dt;
        let (reflected, flip) = self.region.reflect(raw);
        self.at = reflected;
        if flip.x < 0.0 || flip.y < 0.0 {
            let v = self.velocity();
            let v2 = Vec2::new(v.x * flip.x, v.y * flip.y);
            self.direction = v2.y.atan2(v2.x);
        }
        self.since = now;

        // Border steering: point the mean direction at the centre when
        // within 10% of an edge.
        let margin_x = self.region.width * 0.1;
        let margin_y = self.region.height * 0.1;
        if self.at.x < margin_x
            || self.at.x > self.region.width - margin_x
            || self.at.y < margin_y
            || self.at.y > self.region.height - margin_y
        {
            let towards = self.region.center() - self.at;
            self.mean_dir = towards.y.atan2(towards.x);
        }

        let sq = (1.0 - self.alpha * self.alpha).max(0.0).sqrt();
        self.speed = (self.alpha * self.speed
            + (1.0 - self.alpha) * self.mean_speed
            + sq * self.sigma_speed * rng.standard_normal())
        .max(0.0);
        self.direction = self.alpha * self.direction
            + (1.0 - self.alpha) * self.mean_dir
            + sq * self.sigma_dir * rng.standard_normal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walker(alpha: f64, seed: u64) -> (GaussMarkov, SimRng) {
        let mut rng = SimRng::new(seed);
        let gm = GaussMarkov::new(
            Vec2::new(250.0, 250.0),
            Region::square(500.0),
            8.0,
            alpha,
            2.0,
            0.4,
            1.0,
            SimTime::ZERO,
            &mut rng,
        );
        (gm, rng)
    }

    #[test]
    fn segments_are_linear() {
        let (gm, _) = walker(0.8, 1);
        let p0 = gm.position(SimTime::ZERO);
        let p_half = gm.position(SimTime::from_millis(500));
        let p1 = gm.position(SimTime::from_secs(1));
        assert!((p0.distance(p_half) - p_half.distance(p1)).abs() < 1e-6);
    }

    #[test]
    fn update_cadence_is_fixed() {
        let (mut gm, mut rng) = walker(0.8, 2);
        assert_eq!(gm.next_update(), SimTime::from_secs(1));
        gm.advance(SimTime::from_secs(1), &mut rng);
        assert_eq!(gm.next_update(), SimTime::from_secs(2));
    }

    #[test]
    fn alpha_one_keeps_velocity_until_border() {
        let (mut gm, mut rng) = walker(1.0, 3);
        let v0 = gm.velocity();
        gm.advance(SimTime::from_secs(1), &mut rng);
        let v1 = gm.velocity();
        assert!((v0 - v1).norm() < 1e-9, "velocity changed under alpha = 1");
    }

    #[test]
    fn long_run_speed_near_mean() {
        let (mut gm, mut rng) = walker(0.7, 4);
        let mut sum = 0.0;
        let n = 5_000;
        for i in 0..n {
            gm.advance(SimTime::from_secs(i + 1), &mut rng);
            sum += gm.velocity().norm();
        }
        let mean = sum / n as f64;
        assert!((mean - 8.0).abs() < 1.0, "mean speed {mean}");
    }

    #[test]
    fn stays_in_region_for_long_runs() {
        let (mut gm, mut rng) = walker(0.9, 5);
        for i in 0..10_000u64 {
            let t = SimTime::from_secs(i + 1);
            let p = gm.position(t);
            assert!(gm.position(t).is_finite());
            assert!(
                (0.0..=500.0).contains(&p.x) && (0.0..=500.0).contains(&p.y),
                "escaped to {p:?} at {t}"
            );
            gm.advance(t, &mut rng);
        }
    }
}
