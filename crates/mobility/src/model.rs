//! The mobility-model interface and configuration.

use wmn_sim::{SimRng, SimTime};
use wmn_topology::{Region, Vec2};

use crate::gauss_markov::GaussMarkov;
use crate::manhattan::Manhattan;
use crate::rwp::RandomWaypoint;
use crate::static_::StaticPoint;

/// Scenario-level mobility configuration (per node group).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MobilityConfig {
    /// Node never moves (mesh routers).
    Static,
    /// Random waypoint with uniform speed in `[v_min, v_max]` m/s and a
    /// fixed pause at each waypoint.
    RandomWaypoint {
        /// Minimum leg speed, m/s (must be > 0 to avoid the RWP speed-decay
        /// pathology).
        v_min: f64,
        /// Maximum leg speed, m/s.
        v_max: f64,
        /// Pause at each waypoint, seconds.
        pause_s: f64,
    },
    /// Gauss–Markov with memory `alpha` (0 = random walk, 1 = constant
    /// velocity), re-evaluated every `update_s`.
    GaussMarkov {
        /// Mean speed, m/s.
        mean_speed: f64,
        /// Memory parameter in `[0, 1]`.
        alpha: f64,
        /// Speed innovation std-dev, m/s.
        sigma_speed: f64,
        /// Direction innovation std-dev, radians.
        sigma_dir: f64,
        /// Update interval, seconds.
        update_s: f64,
    },
    /// Manhattan grid: motion along streets spaced `block_m` apart, with
    /// turn decisions at intersections (straight 0.5 / left 0.25 / right
    /// 0.25, the standard split).
    Manhattan {
        /// Street spacing, metres.
        block_m: f64,
        /// Mean speed, m/s.
        mean_speed: f64,
        /// Speed std-dev, m/s.
        sigma_speed: f64,
    },
}

/// A node's mobility state. All models share the same piecewise-linear
/// interface: position/velocity are exact between updates, and
/// [`Mobility::next_update`] tells the engine when the trajectory next
/// changes shape.
#[derive(Clone, Debug)]
pub enum Mobility {
    /// Stationary node.
    Static(StaticPoint),
    /// Random-waypoint walker.
    Rwp(RandomWaypoint),
    /// Gauss–Markov walker.
    Gm(GaussMarkov),
    /// Manhattan-grid walker.
    Manhattan(Manhattan),
}

impl Mobility {
    /// Instantiate a model at `start` inside `region`.
    pub fn new(
        config: MobilityConfig,
        start: Vec2,
        region: Region,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        match config {
            MobilityConfig::Static => Mobility::Static(StaticPoint::new(start)),
            MobilityConfig::RandomWaypoint {
                v_min,
                v_max,
                pause_s,
            } => Mobility::Rwp(RandomWaypoint::new(
                start, region, v_min, v_max, pause_s, now, rng,
            )),
            MobilityConfig::GaussMarkov {
                mean_speed,
                alpha,
                sigma_speed,
                sigma_dir,
                update_s,
            } => Mobility::Gm(GaussMarkov::new(
                start,
                region,
                mean_speed,
                alpha,
                sigma_speed,
                sigma_dir,
                update_s,
                now,
                rng,
            )),
            MobilityConfig::Manhattan {
                block_m,
                mean_speed,
                sigma_speed,
            } => Mobility::Manhattan(Manhattan::new(
                start,
                region,
                block_m,
                mean_speed,
                sigma_speed,
                now,
                rng,
            )),
        }
    }

    /// Exact position at `t`, which must lie between the last update and
    /// [`Mobility::next_update`].
    pub fn position(&self, t: SimTime) -> Vec2 {
        match self {
            Mobility::Static(m) => m.position(),
            Mobility::Rwp(m) => m.position(t),
            Mobility::Gm(m) => m.position(t),
            Mobility::Manhattan(m) => m.position(t),
        }
    }

    /// Instantaneous velocity at `t` (zero while paused/stationary).
    pub fn velocity(&self, t: SimTime) -> Vec2 {
        match self {
            Mobility::Static(_) => Vec2::ZERO,
            Mobility::Rwp(m) => m.velocity(t),
            Mobility::Gm(m) => m.velocity(),
            Mobility::Manhattan(m) => m.velocity(t),
        }
    }

    /// When the trajectory next changes (`SimTime::MAX` for static nodes).
    pub fn next_update(&self) -> SimTime {
        match self {
            Mobility::Static(_) => SimTime::MAX,
            Mobility::Rwp(m) => m.next_update(),
            Mobility::Gm(m) => m.next_update(),
            Mobility::Manhattan(m) => m.next_update(),
        }
    }

    /// Advance past a trajectory change at `now == next_update()`.
    pub fn advance(&mut self, now: SimTime, rng: &mut SimRng) {
        match self {
            Mobility::Static(_) => {}
            Mobility::Rwp(m) => m.advance(now, rng),
            Mobility::Gm(m) => m.advance(now, rng),
            Mobility::Manhattan(m) => m.advance(now, rng),
        }
    }

    /// True when the node can move at all.
    pub fn is_mobile(&self) -> bool {
        !matches!(self, Mobility::Static(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_node_never_updates() {
        let region = Region::square(100.0);
        let mut rng = SimRng::new(1);
        let start = Vec2::new(10.0, 20.0);
        let mut m = Mobility::new(
            MobilityConfig::Static,
            start,
            region,
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(m.next_update(), SimTime::MAX);
        assert_eq!(m.position(SimTime::from_secs(1000)), start);
        assert_eq!(m.velocity(SimTime::from_secs(5)), Vec2::ZERO);
        assert!(!m.is_mobile());
        m.advance(SimTime::from_secs(1), &mut rng); // no-op
        assert_eq!(m.position(SimTime::from_secs(2000)), start);
    }

    #[test]
    fn all_mobile_models_stay_in_region() {
        let region = Region::square(300.0);
        let configs = [
            MobilityConfig::RandomWaypoint {
                v_min: 1.0,
                v_max: 10.0,
                pause_s: 2.0,
            },
            MobilityConfig::GaussMarkov {
                mean_speed: 5.0,
                alpha: 0.75,
                sigma_speed: 1.0,
                sigma_dir: 0.5,
                update_s: 1.0,
            },
            MobilityConfig::Manhattan {
                block_m: 50.0,
                mean_speed: 8.0,
                sigma_speed: 2.0,
            },
        ];
        for (ci, config) in configs.into_iter().enumerate() {
            let mut rng = SimRng::new(100 + ci as u64);
            let mut m = Mobility::new(
                config,
                Vec2::new(150.0, 150.0),
                region,
                SimTime::ZERO,
                &mut rng,
            );
            assert!(m.is_mobile());
            let mut t = SimTime::ZERO;
            for _ in 0..500 {
                let next = m.next_update();
                assert!(next > t, "{config:?}: next_update did not advance");
                // Sample the trajectory midway and at the update point.
                let mid = SimTime((t.as_nanos() + next.as_nanos()) / 2);
                assert!(
                    region.contains(m.position(mid)),
                    "{config:?} left region at {mid}"
                );
                assert!(m.position(mid).is_finite());
                t = next;
                assert!(
                    region.contains(m.position(t)),
                    "{config:?} left region at {t}"
                );
                m.advance(t, &mut rng);
            }
        }
    }

    #[test]
    fn mobile_models_actually_move() {
        let region = Region::square(300.0);
        let configs = [
            MobilityConfig::RandomWaypoint {
                v_min: 5.0,
                v_max: 10.0,
                pause_s: 0.0,
            },
            MobilityConfig::GaussMarkov {
                mean_speed: 5.0,
                alpha: 0.5,
                sigma_speed: 1.0,
                sigma_dir: 0.7,
                update_s: 1.0,
            },
            MobilityConfig::Manhattan {
                block_m: 50.0,
                mean_speed: 8.0,
                sigma_speed: 0.0,
            },
        ];
        for (ci, config) in configs.into_iter().enumerate() {
            let mut rng = SimRng::new(200 + ci as u64);
            let start = Vec2::new(150.0, 150.0);
            let mut m = Mobility::new(config, start, region, SimTime::ZERO, &mut rng);
            let mut total = 0.0;
            let mut last = start;
            for _ in 0..100 {
                let t = m.next_update();
                let p = m.position(t);
                total += last.distance(p);
                last = p;
                m.advance(t, &mut rng);
            }
            assert!(total > 50.0, "{config:?} moved only {total} m");
        }
    }
}
