//! Manhattan-grid mobility — motion constrained to a street grid.
//!
//! The node travels along streets spaced `block_m` apart. At each
//! intersection it continues straight with probability 0.5, or turns
//! left/right with probability 0.25 each (headings that would leave the
//! field are excluded before the draw). Speed is redrawn per street segment
//! from a clamped normal distribution.

use wmn_sim::{SimDuration, SimRng, SimTime};
use wmn_topology::{Region, Vec2};

/// The four street headings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Heading {
    East,
    North,
    West,
    South,
}

impl Heading {
    fn delta(self) -> (i64, i64) {
        match self {
            Heading::East => (1, 0),
            Heading::North => (0, 1),
            Heading::West => (-1, 0),
            Heading::South => (0, -1),
        }
    }

    fn left(self) -> Heading {
        match self {
            Heading::East => Heading::North,
            Heading::North => Heading::West,
            Heading::West => Heading::South,
            Heading::South => Heading::East,
        }
    }

    fn right(self) -> Heading {
        self.left().left().left()
    }

    fn unit(self) -> Vec2 {
        let (dx, dy) = self.delta();
        Vec2::new(dx as f64, dy as f64)
    }
}

/// Manhattan mobility state for one node.
#[derive(Clone, Debug)]
pub struct Manhattan {
    region: Region,
    block: f64,
    mean_speed: f64,
    sigma_speed: f64,
    /// Grid extents (number of intersections per axis).
    nx: i64,
    ny: i64,
    /// Current segment: from intersection `(ix, iy)` heading `dir`.
    ix: i64,
    iy: i64,
    dir: Heading,
    speed: f64,
    depart: SimTime,
    arrive: SimTime,
}

impl Manhattan {
    /// Create a walker; `start` is snapped to the nearest intersection.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        start: Vec2,
        region: Region,
        block_m: f64,
        mean_speed: f64,
        sigma_speed: f64,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        assert!(block_m > 0.0 && mean_speed > 0.0);
        let nx = (region.width / block_m).floor() as i64;
        let ny = (region.height / block_m).floor() as i64;
        assert!(nx >= 1 && ny >= 1, "field too small for block size");
        let ix = ((start.x / block_m).round() as i64).clamp(0, nx);
        let iy = ((start.y / block_m).round() as i64).clamp(0, ny);
        let mut m = Manhattan {
            region,
            block: block_m,
            mean_speed,
            sigma_speed,
            nx,
            ny,
            ix,
            iy,
            dir: Heading::East,
            speed: mean_speed,
            depart: now,
            arrive: now,
        };
        m.dir = m.pick_heading(None, rng);
        m.start_segment(now, rng);
        m
    }

    fn valid(&self, h: Heading) -> bool {
        let (dx, dy) = h.delta();
        let (tx, ty) = (self.ix + dx, self.iy + dy);
        (0..=self.nx).contains(&tx) && (0..=self.ny).contains(&ty)
    }

    /// Turn decision: straight 0.5, left 0.25, right 0.25, filtered to
    /// headings that stay inside the grid (falling back to any valid
    /// heading, including U-turns at dead ends).
    fn pick_heading(&self, current: Option<Heading>, rng: &mut SimRng) -> Heading {
        if let Some(cur) = current {
            let mut options: Vec<(Heading, f64)> = Vec::with_capacity(3);
            if self.valid(cur) {
                options.push((cur, 0.5));
            }
            if self.valid(cur.left()) {
                options.push((cur.left(), 0.25));
            }
            if self.valid(cur.right()) {
                options.push((cur.right(), 0.25));
            }
            if !options.is_empty() {
                let total: f64 = options.iter().map(|&(_, w)| w).sum();
                let mut draw = rng.f64() * total;
                for &(h, w) in &options {
                    if draw < w {
                        return h;
                    }
                    draw -= w;
                }
                return options.last().expect("nonempty").0;
            }
            // Dead end in all three directions: U-turn.
            return cur.left().left();
        }
        // Initial heading: uniform over valid ones.
        let all = [Heading::East, Heading::North, Heading::West, Heading::South];
        let valid: Vec<Heading> = all.into_iter().filter(|&h| self.valid(h)).collect();
        *rng.choose(&valid).expect("isolated intersection")
    }

    fn start_segment(&mut self, now: SimTime, rng: &mut SimRng) {
        self.speed = (self.mean_speed + self.sigma_speed * rng.standard_normal()).max(1.0);
        self.depart = now;
        self.arrive = now + SimDuration::from_secs_f64(self.block / self.speed);
    }

    fn intersection(&self, ix: i64, iy: i64) -> Vec2 {
        self.region
            .clamp(Vec2::new(ix as f64 * self.block, iy as f64 * self.block))
    }

    /// Position at `t` within the current segment.
    pub fn position(&self, t: SimTime) -> Vec2 {
        let from = self.intersection(self.ix, self.iy);
        let (dx, dy) = self.dir.delta();
        let to = self.intersection(self.ix + dx, self.iy + dy);
        if t <= self.depart {
            return from;
        }
        if t >= self.arrive {
            return to;
        }
        let frac =
            t.since(self.depart).as_secs_f64() / self.arrive.since(self.depart).as_secs_f64();
        from.lerp(to, frac)
    }

    /// Velocity at `t`.
    pub fn velocity(&self, t: SimTime) -> Vec2 {
        if t < self.depart || t >= self.arrive {
            Vec2::ZERO
        } else {
            self.dir.unit() * self.speed
        }
    }

    /// Arrival at the next intersection.
    pub fn next_update(&self) -> SimTime {
        self.arrive
    }

    /// Arrive at the next intersection and choose the next street.
    pub fn advance(&mut self, now: SimTime, rng: &mut SimRng) {
        if now < self.arrive {
            return;
        }
        let (dx, dy) = self.dir.delta();
        self.ix += dx;
        self.iy += dy;
        self.dir = self.pick_heading(Some(self.dir), rng);
        self.start_segment(now, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walker(seed: u64) -> (Manhattan, SimRng) {
        let mut rng = SimRng::new(seed);
        let m = Manhattan::new(
            Vec2::new(100.0, 100.0),
            Region::square(200.0),
            50.0,
            10.0,
            0.0,
            SimTime::ZERO,
            &mut rng,
        );
        (m, rng)
    }

    #[test]
    fn moves_along_grid_lines() {
        let (mut m, mut rng) = walker(1);
        for _ in 0..200 {
            let t = m.next_update();
            let mid = SimTime(t.as_nanos() - 1);
            let p = m.position(mid);
            // At least one coordinate is on a street (multiple of 50).
            let on_x = (p.x / 50.0 - (p.x / 50.0).round()).abs() < 1e-6;
            let on_y = (p.y / 50.0 - (p.y / 50.0).round()).abs() < 1e-6;
            assert!(on_x || on_y, "off-street at {p:?}");
            m.advance(t, &mut rng);
        }
    }

    #[test]
    fn segment_time_matches_block_over_speed() {
        let (m, _) = walker(2);
        // sigma = 0 → speed exactly 10, block 50 → 5 s per segment.
        assert_eq!(m.next_update(), SimTime::from_secs(5));
        let v = m.velocity(SimTime::from_secs(1)).norm();
        assert!((v - 10.0).abs() < 1e-9);
    }

    #[test]
    fn never_leaves_region() {
        let (mut m, mut rng) = walker(3);
        for _ in 0..2_000 {
            let t = m.next_update();
            let p = m.position(t);
            assert!(
                (0.0..=200.0).contains(&p.x) && (0.0..=200.0).contains(&p.y),
                "escaped to {p:?}"
            );
            m.advance(t, &mut rng);
        }
    }

    #[test]
    fn corner_start_works() {
        let mut rng = SimRng::new(4);
        let mut m = Manhattan::new(
            Vec2::new(0.0, 0.0),
            Region::square(200.0),
            50.0,
            10.0,
            2.0,
            SimTime::ZERO,
            &mut rng,
        );
        for _ in 0..100 {
            let t = m.next_update();
            assert!(m.position(t).is_finite());
            m.advance(t, &mut rng);
        }
    }

    #[test]
    fn turns_occur() {
        let (mut m, mut rng) = walker(5);
        let mut xs = std::collections::HashSet::new();
        let mut ys = std::collections::HashSet::new();
        for _ in 0..100 {
            let t = m.next_update();
            m.advance(t, &mut rng);
            xs.insert(m.ix);
            ys.insert(m.iy);
        }
        assert!(xs.len() > 1, "never moved in x");
        assert!(ys.len() > 1, "never moved in y");
    }
}
