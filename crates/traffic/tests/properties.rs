//! Property-based tests of traffic generation and delivery tracking.

use proptest::prelude::*;
use wmn_routing::{FlowId, NodeId};
use wmn_sim::{SimDuration, SimRng, SimTime};
use wmn_traffic::{FlowSpec, FlowState, FlowTracker, TrafficPattern};

proptest! {
    /// Emission times are strictly increasing, sequence numbers contiguous,
    /// and nothing is emitted at/after the stop time — for every pattern.
    #[test]
    fn emissions_ordered_and_bounded(
        seed in any::<u64>(),
        pps in 0.5f64..50.0,
        dur_s in 1u64..30,
        pattern_sel in 0u8..3,
    ) {
        let pattern = match pattern_sel {
            0 => TrafficPattern::cbr_pps(pps),
            1 => TrafficPattern::Poisson {
                mean_interval: SimDuration::from_secs_f64(1.0 / pps),
            },
            _ => TrafficPattern::OnOff {
                interval: SimDuration::from_secs_f64(1.0 / pps),
                mean_on: SimDuration::from_secs(1),
                mean_off: SimDuration::from_secs(1),
            },
        };
        let spec = FlowSpec {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            payload: 512,
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(1 + dur_s),
            pattern,
        };
        let mut rng = SimRng::new(seed);
        let mut f = FlowState::new(spec);
        let mut now = spec.start;
        let mut expect_seq = 0u32;
        loop {
            prop_assert!(now < spec.stop);
            let (seq, next) = f.emit(now, &mut rng);
            prop_assert_eq!(seq, expect_seq);
            expect_seq += 1;
            match next {
                Some(t) => {
                    prop_assert!(t > now);
                    now = t;
                }
                None => break,
            }
            prop_assert!(expect_seq < 10_000, "runaway flow");
        }
    }

    /// Tracker PDR is always in [0, 1] and deliveries never exceed sends
    /// when driven consistently.
    #[test]
    fn tracker_consistency(
        events in prop::collection::vec((0u64..5_000, any::<bool>()), 0..200),
    ) {
        let mut tr = FlowTracker::new(SimTime::from_millis(100));
        let mut sent = 0u64;
        for (t_ms, deliver_too) in events {
            let created = SimTime::from_millis(t_ms);
            tr.on_sent(FlowId(0), created);
            if created >= SimTime::from_millis(100) {
                sent += 1;
            }
            if deliver_too {
                tr.on_delivered(FlowId(0), created, created + SimDuration::from_millis(7), 512);
            }
        }
        let s = tr.summary();
        prop_assert_eq!(s.sent, sent);
        prop_assert!(s.delivered <= s.sent);
        prop_assert!((0.0..=1.0).contains(&s.delivery_ratio));
        prop_assert!(s.mean_delay_s >= 0.0);
        prop_assert!(s.p95_delay_s <= s.max_delay_s + 1e-12);
    }
}
