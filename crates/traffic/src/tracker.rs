//! Per-flow delivery bookkeeping.

use std::collections::BTreeMap;
use wmn_routing::FlowId;
use wmn_sim::{SimDuration, SimTime};

/// Per-flow counters.
#[derive(Clone, Copy, Debug, Default)]
struct FlowRecord {
    sent: u64,
    delivered: u64,
    delivered_bytes: u64,
    delay_sum_s: f64,
    delay_max_s: f64,
}

/// Tracks end-to-end delivery per flow (and in aggregate).
///
/// Packets created during the warm-up period are excluded from statistics —
/// standard practice so that route-discovery transients do not bias the
/// steady-state figures.
#[derive(Clone, Debug)]
pub struct FlowTracker {
    warmup_end: SimTime,
    /// Ordered map: the summary sums floats over all flows, and `HashMap`'s
    /// per-process hasher would make that sum order (and its last ulp)
    /// nondeterministic between runs.
    flows: BTreeMap<FlowId, FlowRecord>,
    delays_s: Vec<f64>,
}

/// Aggregate results over all tracked flows.
#[derive(Clone, Debug, PartialEq)]
pub struct TrackerSummary {
    /// Packets offered after warm-up.
    pub sent: u64,
    /// Packets delivered whose creation was after warm-up.
    pub delivered: u64,
    /// Delivered ÷ sent (1.0 for an idle network).
    pub delivery_ratio: f64,
    /// Mean end-to-end delay, seconds.
    pub mean_delay_s: f64,
    /// 95th-percentile delay, seconds.
    pub p95_delay_s: f64,
    /// Maximum delay, seconds.
    pub max_delay_s: f64,
    /// Delivered application bytes.
    pub delivered_bytes: u64,
}

impl FlowTracker {
    /// Track deliveries, ignoring packets created before `warmup_end`.
    pub fn new(warmup_end: SimTime) -> Self {
        FlowTracker {
            warmup_end,
            flows: BTreeMap::new(),
            delays_s: Vec::new(),
        }
    }

    /// Record a packet handed to the routing layer at its source.
    pub fn on_sent(&mut self, flow: FlowId, created: SimTime) {
        if created < self.warmup_end {
            return;
        }
        self.flows.entry(flow).or_default().sent += 1;
    }

    /// Record a delivery at the destination application.
    pub fn on_delivered(&mut self, flow: FlowId, created: SimTime, now: SimTime, bytes: usize) {
        if created < self.warmup_end {
            return;
        }
        let delay = now.since(created);
        let rec = self.flows.entry(flow).or_default();
        rec.delivered += 1;
        rec.delivered_bytes += bytes as u64;
        let d = delay.as_secs_f64();
        rec.delay_sum_s += d;
        rec.delay_max_s = rec.delay_max_s.max(d);
        self.delays_s.push(d);
    }

    /// Delivery ratio of a single flow (`None` if it never sent).
    pub fn flow_pdr(&self, flow: FlowId) -> Option<f64> {
        let rec = self.flows.get(&flow)?;
        (rec.sent > 0).then(|| rec.delivered as f64 / rec.sent as f64)
    }

    /// Aggregate summary. `duration` is the measured interval for
    /// throughput computations by the caller.
    pub fn summary(&self) -> TrackerSummary {
        let mut sent = 0;
        let mut delivered = 0;
        let mut delivered_bytes = 0;
        let mut delay_sum = 0.0;
        let mut delay_max: f64 = 0.0;
        for rec in self.flows.values() {
            sent += rec.sent;
            delivered += rec.delivered;
            delivered_bytes += rec.delivered_bytes;
            delay_sum += rec.delay_sum_s;
            delay_max = delay_max.max(rec.delay_max_s);
        }
        let mut sorted = self.delays_s.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN delay"));
        let p95 = if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() as f64 * 0.95) as usize).min(sorted.len() - 1)]
        };
        TrackerSummary {
            sent,
            delivered,
            delivery_ratio: if sent == 0 {
                1.0
            } else {
                delivered as f64 / sent as f64
            },
            mean_delay_s: if delivered == 0 {
                0.0
            } else {
                delay_sum / delivered as f64
            },
            p95_delay_s: p95,
            max_delay_s: delay_max,
            delivered_bytes,
        }
    }

    /// Aggregate goodput in bits per second over `duration`.
    pub fn goodput_bps(&self, duration: SimDuration) -> f64 {
        if duration.is_zero() {
            return 0.0;
        }
        self.summary().delivered_bytes as f64 * 8.0 / duration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn counts_and_ratio() {
        let mut tr = FlowTracker::new(SimTime::ZERO);
        for i in 0..10 {
            tr.on_sent(FlowId(1), t(i * 100));
        }
        for i in 0..7 {
            tr.on_delivered(FlowId(1), t(i * 100), t(i * 100 + 30), 512);
        }
        let s = tr.summary();
        assert_eq!(s.sent, 10);
        assert_eq!(s.delivered, 7);
        assert!((s.delivery_ratio - 0.7).abs() < 1e-12);
        assert!((s.mean_delay_s - 0.030).abs() < 1e-9);
        assert_eq!(s.delivered_bytes, 7 * 512);
        assert_eq!(tr.flow_pdr(FlowId(1)), Some(0.7));
        assert_eq!(tr.flow_pdr(FlowId(9)), None);
    }

    #[test]
    fn warmup_exclusion() {
        let mut tr = FlowTracker::new(t(1000));
        tr.on_sent(FlowId(1), t(500)); // warm-up — ignored
        tr.on_sent(FlowId(1), t(1500));
        tr.on_delivered(FlowId(1), t(500), t(600), 512); // ignored
        tr.on_delivered(FlowId(1), t(1500), t(1600), 512);
        let s = tr.summary();
        assert_eq!(s.sent, 1);
        assert_eq!(s.delivered, 1);
    }

    #[test]
    fn p95_and_max() {
        let mut tr = FlowTracker::new(SimTime::ZERO);
        for i in 1..=100u64 {
            tr.on_sent(FlowId(1), t(0));
            tr.on_delivered(FlowId(1), t(0), SimTime::from_millis(i), 100);
        }
        let s = tr.summary();
        assert!((s.max_delay_s - 0.100).abs() < 1e-9);
        assert!(
            (s.p95_delay_s - 0.096).abs() < 2e-3,
            "p95 {}",
            s.p95_delay_s
        );
    }

    #[test]
    fn goodput() {
        let mut tr = FlowTracker::new(SimTime::ZERO);
        tr.on_sent(FlowId(1), t(0));
        tr.on_delivered(FlowId(1), t(0), t(10), 1000);
        let g = tr.goodput_bps(SimDuration::from_secs(10));
        assert!((g - 800.0).abs() < 1e-9);
        assert_eq!(tr.goodput_bps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn empty_tracker_is_benign() {
        let tr = FlowTracker::new(SimTime::ZERO);
        let s = tr.summary();
        assert_eq!(s.sent, 0);
        assert_eq!(s.delivery_ratio, 1.0);
        assert_eq!(s.mean_delay_s, 0.0);
        assert_eq!(s.p95_delay_s, 0.0);
    }
}
