//! `wmn-traffic` — application-layer workload generation.
//!
//! Rebuilds the ns-2 `cbr`/exponential traffic agents: a scenario declares a
//! set of [`FlowSpec`]s (constant-bit-rate, Poisson or on/off sources), each
//! driven by a [`FlowState`] that yields successive packet emission times.
//! [`FlowTracker`] does the per-flow delivery bookkeeping that the
//! evaluation's PDR/delay/throughput figures are computed from.

#![warn(missing_docs)]

pub mod flow;
pub mod tracker;

pub use flow::{FlowSpec, FlowState, TrafficPattern};
pub use tracker::{FlowTracker, TrackerSummary};
