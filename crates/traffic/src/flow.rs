//! Flow specifications and emission-time generation.

use wmn_routing::{FlowId, NodeId};
use wmn_sim::{SimDuration, SimRng, SimTime};

/// The packet-emission pattern of a flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Constant bit rate: one packet every `interval`.
    Cbr {
        /// Inter-packet gap.
        interval: SimDuration,
    },
    /// Poisson arrivals with the given mean inter-packet gap.
    Poisson {
        /// Mean gap.
        mean_interval: SimDuration,
    },
    /// Exponential on/off source: CBR at `interval` during on-periods.
    OnOff {
        /// Packet gap while on.
        interval: SimDuration,
        /// Mean on-period length.
        mean_on: SimDuration,
        /// Mean off-period length.
        mean_off: SimDuration,
    },
}

impl TrafficPattern {
    /// CBR from a packets-per-second rate.
    pub fn cbr_pps(pps: f64) -> Self {
        assert!(pps > 0.0);
        TrafficPattern::Cbr {
            interval: SimDuration::from_secs_f64(1.0 / pps),
        }
    }
}

/// A declared application flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSpec {
    /// Flow identifier.
    pub id: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Application payload per packet, bytes.
    pub payload: usize,
    /// First emission time.
    pub start: SimTime,
    /// No emissions at or after this time.
    pub stop: SimTime,
    /// Emission pattern.
    pub pattern: TrafficPattern,
}

impl FlowSpec {
    /// Offered load of this flow in bits per second (long-run average).
    pub fn offered_bps(&self) -> f64 {
        let bits = self.payload as f64 * 8.0;
        match self.pattern {
            TrafficPattern::Cbr { interval }
            | TrafficPattern::Poisson {
                mean_interval: interval,
            } => bits / interval.as_secs_f64(),
            TrafficPattern::OnOff {
                interval,
                mean_on,
                mean_off,
            } => {
                let duty = mean_on.as_secs_f64() / (mean_on + mean_off).as_secs_f64();
                duty * bits / interval.as_secs_f64()
            }
        }
    }
}

/// Emission-time iterator state for one flow.
#[derive(Clone, Debug)]
pub struct FlowState {
    spec: FlowSpec,
    next_seq: u32,
    /// Remaining on-period end (OnOff only).
    on_until: SimTime,
}

impl FlowState {
    /// Initialise; the first packet is due at `spec.start`.
    pub fn new(spec: FlowSpec) -> Self {
        FlowState {
            spec,
            next_seq: 0,
            on_until: spec.start,
        }
    }

    /// The flow spec.
    pub fn spec(&self) -> &FlowSpec {
        &self.spec
    }

    /// Sequence number the next emission will carry.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Emit one packet at `now`: returns `(seq, next_emission_time)`.
    /// `next_emission_time` is `None` once the flow's stop time is reached.
    pub fn emit(&mut self, now: SimTime, rng: &mut SimRng) -> (u32, Option<SimTime>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let gap = match self.spec.pattern {
            TrafficPattern::Cbr { interval } => interval,
            TrafficPattern::Poisson { mean_interval } => {
                SimDuration::from_secs_f64(rng.exponential(mean_interval.as_secs_f64()))
            }
            TrafficPattern::OnOff {
                interval,
                mean_on,
                mean_off,
            } => {
                if now + interval <= self.on_until {
                    interval
                } else {
                    // Off period, then a fresh on period.
                    let off = SimDuration::from_secs_f64(rng.exponential(mean_off.as_secs_f64()));
                    let on = SimDuration::from_secs_f64(rng.exponential(mean_on.as_secs_f64()));
                    self.on_until = now + interval + off + on;
                    interval + off
                }
            }
        };
        let next = now + gap;
        ((seq), (next < self.spec.stop).then_some(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pattern: TrafficPattern) -> FlowSpec {
        FlowSpec {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(9),
            payload: 512,
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(11),
            pattern,
        }
    }

    #[test]
    fn cbr_emits_on_schedule() {
        let mut rng = SimRng::new(1);
        let s = spec(TrafficPattern::cbr_pps(4.0));
        let mut f = FlowState::new(s);
        let mut now = s.start;
        let mut count = 0;
        loop {
            let (seq, next) = f.emit(now, &mut rng);
            assert_eq!(seq, count);
            count += 1;
            match next {
                Some(t) => {
                    assert_eq!(t.since(now), SimDuration::from_millis(250));
                    now = t;
                }
                None => break,
            }
        }
        // 10 s at 4 pps = 40 packets.
        assert_eq!(count, 40);
    }

    #[test]
    fn poisson_mean_rate() {
        let mut rng = SimRng::new(2);
        let s = FlowSpec {
            stop: SimTime::from_secs(1001),
            ..spec(TrafficPattern::Poisson {
                mean_interval: SimDuration::from_millis(250),
            })
        };
        let mut f = FlowState::new(s);
        let mut now = s.start;
        let mut count = 0u32;
        while let (_, Some(t)) = f.emit(now, &mut rng) {
            now = t;
            count += 1;
        }
        // 1000 s at 4 pps ≈ 4000 packets.
        assert!((count as f64 - 4000.0).abs() < 200.0, "count {count}");
    }

    #[test]
    fn onoff_duty_cycle_reduces_volume() {
        let mut rng = SimRng::new(3);
        let pattern = TrafficPattern::OnOff {
            interval: SimDuration::from_millis(100),
            mean_on: SimDuration::from_secs(1),
            mean_off: SimDuration::from_secs(1),
        };
        let s = FlowSpec {
            stop: SimTime::from_secs(201),
            ..spec(pattern)
        };
        let mut f = FlowState::new(s);
        let mut now = s.start;
        let mut count = 0u32;
        while let (_, Some(t)) = f.emit(now, &mut rng) {
            now = t;
            count += 1;
        }
        // 200 s at 10 pps with ~50% duty ≈ 1000; allow generous slack.
        assert!((600..1400).contains(&count), "count {count}");
    }

    #[test]
    fn offered_bps() {
        let s = spec(TrafficPattern::cbr_pps(4.0));
        assert!((s.offered_bps() - 512.0 * 8.0 * 4.0).abs() < 1e-6);
        let onoff = spec(TrafficPattern::OnOff {
            interval: SimDuration::from_millis(100),
            mean_on: SimDuration::from_secs(1),
            mean_off: SimDuration::from_secs(3),
        });
        assert!((onoff.offered_bps() - 0.25 * 512.0 * 8.0 * 10.0).abs() < 1e-6);
    }

    #[test]
    fn stop_time_is_exclusive() {
        let mut rng = SimRng::new(4);
        let s = FlowSpec {
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(1) + SimDuration::from_millis(250),
            ..spec(TrafficPattern::cbr_pps(4.0))
        };
        let mut f = FlowState::new(s);
        let (seq, next) = f.emit(s.start, &mut rng);
        assert_eq!(seq, 0);
        assert!(next.is_none(), "emission at stop time must not occur");
    }
}
