//! Property-based tests of the statistics substrate.

use proptest::prelude::*;
use wmn_metrics::{jain_index, LogHistogram, MeanCi, Welford};

proptest! {
    /// Welford matches the naive two-pass mean/variance.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
            prop_assert!((w.variance() - var).abs() <= 1e-4 * (1.0 + var));
        }
        prop_assert_eq!(w.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(w.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging split halves equals one pass.
    #[test]
    fn welford_merge_associative(xs in prop::collection::vec(-1e3f64..1e3, 2..100), split in 1usize..99) {
        let split = split.min(xs.len() - 1);
        let mut whole = Welford::new();
        for &x in &xs { whole.add(x); }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] { a.add(x); }
        for &x in &xs[split..] { b.add(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7 * (1.0 + whole.variance()));
    }

    /// Jain's index lies in [1/n, 1] and is scale invariant.
    #[test]
    fn jain_bounds(xs in prop::collection::vec(0.0f64..1e6, 1..100), k in 0.001f64..1000.0) {
        let j = jain_index(&xs);
        prop_assert!(j <= 1.0 + 1e-12);
        prop_assert!(j >= 1.0 / xs.len() as f64 - 1e-12);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-9);
    }

    /// Histogram quantiles are monotone in q and bracket the sample range.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(1e-6f64..1e3, 1..300)) {
        let mut h = LogHistogram::for_delays();
        for &x in &xs {
            h.record(x);
        }
        let mut last = 0.0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= last);
            last = q;
        }
        let max = xs.iter().cloned().fold(0.0, f64::max);
        // Bucket midpoint error ≤ 1 sub-bucket width (1/16 of a doubling).
        prop_assert!(h.quantile(1.0) <= max * 1.1 + 1e-9);
    }

    /// Confidence intervals shrink (weakly) with more identical batches.
    #[test]
    fn ci_halfwidth_nonnegative(xs in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let ci = MeanCi::from_samples(&xs);
        prop_assert!(ci.half_width >= 0.0);
        prop_assert_eq!(ci.n, xs.len() as u64);
    }
}
