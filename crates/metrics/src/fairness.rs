//! Load-distribution fairness measures.
//!
//! CNLR's load-balancing claim is quantified with Jain's fairness index over
//! per-node forwarding counts, plus the max/mean ratio as a hotspot measure.

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, in `(0, 1]`. 1 = perfectly
/// even, `1/n` = one node carries everything. Returns 1.0 for empty or
/// all-zero inputs (vacuously fair).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    debug_assert!(xs.iter().all(|x| *x >= 0.0), "negative load");
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// Max-to-mean ratio (≥ 1): the hotspot factor. Returns 1.0 for empty or
/// all-zero inputs.
pub fn hotspot_factor(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    xs.iter().cloned().fold(f64::MIN, f64::max) / mean
}

/// Coefficient of variation (σ/μ), 0 when degenerate.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog() {
        let xs = [10.0, 0.0, 0.0, 0.0];
        assert!((jain_index(&xs) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_known_value() {
        // (1+2+3)² / (3·(1+4+9)) = 36/42.
        assert!((jain_index(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 5.0]);
        let b = jain_index(&[10.0, 20.0, 50.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn hotspot() {
        assert!((hotspot_factor(&[1.0, 1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(hotspot_factor(&[2.0, 2.0]), 1.0);
        assert_eq!(hotspot_factor(&[]), 1.0);
        assert_eq!(hotspot_factor(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn cov() {
        assert_eq!(coefficient_of_variation(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[1.0]), 0.0);
        // mean 3, sample sd √2 → cov = √2/3.
        let c = coefficient_of_variation(&[2.0, 4.0]);
        assert!(
            (c - std::f64::consts::SQRT_2 / 3.0).abs() < 1e-12,
            "cov {c}"
        );
    }
}
