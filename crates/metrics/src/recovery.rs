//! Recovery metrics under fault injection: route-repair latency,
//! PDR-during-outage, and time-to-reconverge.
//!
//! These quantify how a routing scheme survives network dynamics — the
//! questions the fault subsystem exists to answer. All three are derived
//! from the run's time-binned send/delivery series plus the outage log, so
//! they cost nothing when no fault fires.

use crate::series::TimeSeries;
use wmn_sim::SimTime;

/// Online route-repair latency tracker.
///
/// Measures the time from a disruptive fault (a node crash) to the first
/// subsequent end-to-end delivery — a proxy for how quickly the routing
/// layer detects the break, propagates RERRs, and finds a replacement
/// path. Overlapping faults are measured from the *earliest* unrecovered
/// one (the network is not "repaired" until traffic flows again).
#[derive(Clone, Debug, Default)]
pub struct RecoveryTracker {
    pending: Option<SimTime>,
    latencies: Vec<f64>,
}

impl RecoveryTracker {
    /// A tracker with no faults observed.
    pub fn new() -> Self {
        RecoveryTracker::default()
    }

    /// A disruptive fault fired at `t`.
    pub fn on_fault(&mut self, t: SimTime) {
        if self.pending.is_none() {
            self.pending = Some(t);
        }
    }

    /// An end-to-end delivery happened at `t`.
    pub fn on_delivery(&mut self, t: SimTime) {
        if let Some(t0) = self.pending.take() {
            self.latencies.push(t.since(t0).as_secs_f64());
        }
    }

    /// Repair latencies observed so far, seconds, in fault order.
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Mean repair latency, seconds (`None` before the first repair).
    pub fn mean_latency_s(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(self.latencies.iter().sum::<f64>() / self.latencies.len() as f64)
        }
    }

    /// Consume the tracker, returning the latency list.
    pub fn into_latencies(self) -> Vec<f64> {
        self.latencies
    }
}

/// Packet delivery ratio restricted to outage windows.
///
/// `outages` are `(start_s, end_s)` intervals; a time bin counts when its
/// start lies inside any interval. Returns `None` when no send bin
/// overlaps an outage (no outage, or outages outside the run).
pub fn pdr_during_outages(
    sent: &TimeSeries,
    delivered: &TimeSeries,
    outages: &[(f64, f64)],
) -> Option<f64> {
    let width = sent.bin_width().as_secs_f64();
    let in_outage = |i: usize| {
        outages
            .iter()
            .any(|&(a, b)| i as f64 * width >= a && (i as f64) * width < b)
    };
    let mut s = 0u64;
    let mut d = 0u64;
    for (i, bin) in sent.bins().iter().enumerate() {
        if in_outage(i) {
            s += bin.count;
            d += delivered.bins().get(i).map_or(0, |b| b.count);
        }
    }
    if s == 0 {
        None
    } else {
        Some(d as f64 / s as f64)
    }
}

/// Time from `fault_s` until the delivery rate first returns to
/// `frac` of its pre-fault baseline and stays there for `sustain_bins`
/// consecutive bins. Returns `None` if the rate never re-converges within
/// the series (or there is no pre-fault baseline).
pub fn time_to_reconverge(
    delivered: &TimeSeries,
    fault_s: f64,
    frac: f64,
    sustain_bins: usize,
) -> Option<f64> {
    let width = delivered.bin_width().as_secs_f64();
    let fault_bin = (fault_s / width) as usize;
    if fault_bin == 0 || delivered.bins().len() <= fault_bin {
        return None;
    }
    let baseline: f64 = delivered.bins()[..fault_bin]
        .iter()
        .map(|b| b.count as f64)
        .sum::<f64>()
        / fault_bin as f64;
    if baseline <= 0.0 {
        return None;
    }
    let target = frac * baseline;
    let bins = delivered.bins();
    let sustain = sustain_bins.max(1);
    for start in fault_bin..bins.len() {
        if start + sustain > bins.len() {
            break;
        }
        if bins[start..start + sustain]
            .iter()
            .all(|b| b.count as f64 >= target)
        {
            // A fault landing mid-bin that never dents delivery recovers
            // "immediately": clamp the bin-aligned delta at zero.
            return Some((start as f64 * width - fault_s).max(0.0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn repair_latency_measures_fault_to_next_delivery() {
        let mut r = RecoveryTracker::new();
        r.on_delivery(t(1.0)); // pre-fault delivery: no measurement
        assert!(r.latencies().is_empty());
        r.on_fault(t(10.0));
        r.on_fault(t(11.0)); // overlapping fault: earliest wins
        r.on_delivery(t(12.5));
        r.on_delivery(t(12.6)); // only the first post-fault delivery counts
        assert_eq!(r.latencies(), &[2.5]);
        assert_eq!(r.mean_latency_s(), Some(2.5));
    }

    fn series(counts: &[u64]) -> TimeSeries {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                s.mark(t(i as f64 + 0.5));
            }
        }
        s
    }

    #[test]
    fn outage_pdr_counts_only_outage_bins() {
        let sent = series(&[10, 10, 10, 10, 10]);
        let delivered = series(&[10, 10, 2, 4, 10]);
        // Outage covers bins 2 and 3: 6 of 20 delivered.
        let pdr = pdr_during_outages(&sent, &delivered, &[(2.0, 4.0)]).unwrap();
        assert!((pdr - 0.3).abs() < 1e-12, "{pdr}");
        assert_eq!(pdr_during_outages(&sent, &delivered, &[]), None);
        assert_eq!(
            pdr_during_outages(&sent, &delivered, &[(100.0, 200.0)]),
            None
        );
    }

    #[test]
    fn reconvergence_requires_sustained_recovery() {
        // Baseline 10/s for 5 s; crash at 5 s; a one-bin blip at 7 s must
        // not count as reconvergence, the sustained return at 9 s does.
        let delivered = series(&[10, 10, 10, 10, 10, 0, 0, 9, 0, 10, 10, 10]);
        let ttr = time_to_reconverge(&delivered, 5.0, 0.8, 2).unwrap();
        assert!((ttr - 4.0).abs() < 1e-12, "{ttr}");
        // Never recovers → None.
        let dead = series(&[10, 10, 0, 0, 0]);
        assert_eq!(time_to_reconverge(&dead, 2.0, 0.8, 2), None);
        // No baseline → None.
        assert_eq!(time_to_reconverge(&series(&[0, 0, 5]), 1.0, 0.8, 1), None);
    }
}
