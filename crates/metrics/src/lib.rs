//! `wmn-metrics` — measurement, aggregation and reporting.
//!
//! Replaces the awk-over-trace-files post-processing of an ns-2 evaluation
//! with typed streaming statistics: Welford mean/variance accumulators,
//! log-scaled latency histograms, Jain's fairness index (CNLR's
//! load-balance metric), Student-t confidence intervals over replications, a
//! scoped-thread parallel job pool, and markdown/CSV result tables.

#![warn(missing_docs)]

pub mod ci;
pub mod fairness;
pub mod histogram;
pub mod recovery;
pub mod replicate;
pub mod series;
pub mod table;
pub mod welford;

pub use ci::{t_critical_95, MeanCi};
pub use fairness::{coefficient_of_variation, hotspot_factor, jain_index};
pub use histogram::LogHistogram;
pub use recovery::{pdr_during_outages, time_to_reconverge, RecoveryTracker};
pub use replicate::{default_threads, run_jobs, run_replications, seeds_from};
pub use series::{Bin, ProbeSeries, TimeSeries};
pub use table::{fmt_f, ResultTable};
pub use welford::Welford;
