//! Parallel replication — fan seeded runs out across CPU cores.
//!
//! Each simulation run is single-threaded and deterministic; statistical
//! confidence comes from replicating over seeds. Replications are
//! embarrassingly parallel, so the harness distributes them over a crossbeam
//! scope. Results are returned **in seed order** regardless of completion
//! order, keeping downstream aggregation deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f(seed)` for every seed in `seeds`, using up to `threads` worker
/// threads, and return the outputs in input order.
///
/// `f` must be `Sync` (it is shared by reference across workers); per-run
/// state belongs inside the closure body.
pub fn run_replications<T, F>(seeds: &[u64], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(threads >= 1);
    let n = seeds.len();
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next: AtomicUsize = AtomicUsize::new(0);
    let workers = threads.min(n.max(1));
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(seeds[i]);
                results.lock().expect("poisoned results").insert_at(i, out);
            });
        }
    })
    .expect("replication worker panicked");
    results
        .into_inner()
        .expect("poisoned results")
        .into_iter()
        .map(|o| o.expect("missing replication result"))
        .collect()
}

/// Helper trait to keep the hot closure tidy.
trait InsertAt<T> {
    fn insert_at(&mut self, i: usize, value: T);
}

impl<T> InsertAt<T> for Vec<Option<T>> {
    fn insert_at(&mut self, i: usize, value: T) {
        self[i] = Some(value);
    }
}

/// A reasonable worker count: physical parallelism minus one (leaving a
/// core for the coordinating thread), at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

/// Derive `n` distinct replication seeds from a base seed.
pub fn seeds_from(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            base.wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(i.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_seed_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let out = run_replications(&seeds, 4, |s| s * 10);
        assert_eq!(out, seeds.iter().map(|s| s * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let out = run_replications(&[5, 6], 1, |s| s + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_seed_list() {
        let out: Vec<u64> = run_replications(&[], 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let out = run_replications(&[1], 16, |s| s * 2);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn parallel_equals_serial() {
        let seeds = seeds_from(42, 20);
        let serial: Vec<u64> = seeds.iter().map(|&s| s.wrapping_mul(3)).collect();
        let parallel = run_replications(&seeds, 8, |s| s.wrapping_mul(3));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds = seeds_from(7, 100);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
        // And differ from another base.
        let other = seeds_from(8, 100);
        assert_ne!(seeds, other);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
