//! Parallel job pool — fan seeded runs out across CPU cores.
//!
//! Each simulation run is single-threaded and deterministic; statistical
//! confidence comes from replicating over seeds, and figure sweeps multiply
//! that by (x value × scheme) cells. Both are embarrassingly parallel, so
//! the harness flattens whatever it is given into one indexed work queue
//! executed by a scoped thread pool ([`run_jobs`]). Results are returned
//! **in job order** regardless of completion order, keeping downstream
//! aggregation deterministic.
//!
//! Workers claim job indices from an atomic counter and ship `(index,
//! result)` pairs over a channel; the parent thread alone writes the result
//! slots, so no lock is held per completed run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Run `f(i)` for every `i in 0..jobs`, using up to `threads` worker
/// threads, and return the outputs in index order.
///
/// `f` must be `Sync` (it is shared by reference across workers); per-job
/// state belongs inside the closure body. Job `i` is always computed from
/// the same inputs regardless of thread count, so results are identical to
/// a serial run.
pub fn run_jobs<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1);
    let workers = threads.min(jobs);
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }

    let mut results: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Sole writer of the slots: each index arrives exactly once.
        for (i, out) in rx {
            results[i] = Some(out);
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("missing job result"))
        .collect()
}

/// Run `f(seed)` for every seed in `seeds`, using up to `threads` worker
/// threads, and return the outputs in input order.
pub fn run_replications<T, F>(seeds: &[u64], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_jobs(seeds.len(), threads, |i| f(seeds[i]))
}

/// A reasonable worker count: physical parallelism minus one (leaving a
/// core for the coordinating thread), at least 1.
///
/// Set the `WMN_THREADS` environment variable (≥ 1) to pin the count —
/// CI and benchmarks use this for reproducible timings.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("WMN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

/// Derive `n` distinct replication seeds from a base seed.
pub fn seeds_from(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            base.wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(i.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_seed_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let out = run_replications(&seeds, 4, |s| s * 10);
        assert_eq!(out, seeds.iter().map(|s| s * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let out = run_replications(&[5, 6], 1, |s| s + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_seed_list() {
        let out: Vec<u64> = run_replications(&[], 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let out = run_replications(&[1], 16, |s| s * 2);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn parallel_equals_serial() {
        let seeds = seeds_from(42, 20);
        let serial: Vec<u64> = seeds.iter().map(|&s| s.wrapping_mul(3)).collect();
        let parallel = run_replications(&seeds, 8, |s| s.wrapping_mul(3));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn jobs_in_index_order_under_contention() {
        // Reverse-skewed job durations: late indices finish first, so the
        // channel delivers out of order and slot writes must reorder.
        let out = run_jobs(64, 8, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((64 - i) * 20) as u64));
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_serial_matches_parallel() {
        let serial = run_jobs(100, 1, |i| i as u64 * 7 + 1);
        let parallel = run_jobs(100, 7, |i| i as u64 * 7 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds = seeds_from(7, 100);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
        // And differ from another base.
        let other = seeds_from(8, 100);
        assert_ne!(seeds, other);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn wmn_threads_env_overrides() {
        // Serialised with other env-reading tests by running in-process
        // against a private variable copy.
        std::env::set_var("WMN_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("WMN_THREADS", "not-a-number");
        assert!(default_threads() >= 1);
        std::env::set_var("WMN_THREADS", "0");
        assert!(default_threads() >= 1);
        std::env::remove_var("WMN_THREADS");
    }
}
