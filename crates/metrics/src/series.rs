//! Time-binned series — metrics as a function of simulation time.
//!
//! Used for convergence/transient views: delivery ratio per second, queue
//! build-up over time, etc. Values are accumulated into fixed-width bins;
//! each bin exposes count/sum/mean.

use wmn_sim::{SimDuration, SimTime};

/// One accumulation bin.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Bin {
    /// Samples recorded.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
}

impl Bin {
    /// Mean of the bin's samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A fixed-bin time series starting at t = 0.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    width: SimDuration,
    bins: Vec<Bin>,
}

impl TimeSeries {
    /// Create a series with the given bin width.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(!bin_width.is_zero(), "zero bin width");
        TimeSeries {
            width: bin_width,
            bins: Vec::new(),
        }
    }

    fn bin_index(&self, t: SimTime) -> usize {
        (t.as_nanos() / self.width.as_nanos()) as usize
    }

    /// Record `value` at time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let i = self.bin_index(t);
        if i >= self.bins.len() {
            self.bins.resize(i + 1, Bin::default());
        }
        let b = &mut self.bins[i];
        b.count += 1;
        b.sum += value;
    }

    /// Record an event (value 1) at `t` — turns the series into a rate
    /// counter (`bin.count / bin_width`).
    pub fn mark(&mut self, t: SimTime) {
        self.record(t, 1.0);
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.width
    }

    /// All bins (trailing empty bins up to the last recorded one included).
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// `(bin_start_time, mean)` pairs.
    pub fn means(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, b)| (SimTime(self.width.as_nanos() * i as u64), b.mean()))
    }

    /// `(bin_start_time, events_per_second)` pairs.
    pub fn rates(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let secs = self.width.as_secs_f64();
        self.bins.iter().enumerate().map(move |(i, b)| {
            (
                SimTime(self.width.as_nanos() * i as u64),
                b.count as f64 / secs,
            )
        })
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }
}

/// The periodic cross-layer probe feed: one [`TimeSeries`] per sampled
/// signal, all sharing the probe tick as bin width. Each probe records one
/// sample per node, so a bin's mean is the network-wide mean for that tick.
#[derive(Clone, Debug)]
pub struct ProbeSeries {
    /// Interface-queue utilisation `[0, 1]`.
    pub queue: TimeSeries,
    /// Channel busy ratio `[0, 1]`.
    pub busy: TimeSeries,
    /// Neighbourhood load estimate `[0, 1]` (0 for load-blind schemes).
    pub load: TimeSeries,
    /// Rebroadcast probability the policy would apply.
    pub fwd_p: TimeSeries,
}

impl ProbeSeries {
    /// Create the feed with the probe tick as bin width.
    pub fn new(tick: SimDuration) -> Self {
        ProbeSeries {
            queue: TimeSeries::new(tick),
            busy: TimeSeries::new(tick),
            load: TimeSeries::new(tick),
            fwd_p: TimeSeries::new(tick),
        }
    }

    /// Record one node's sample at `t`.
    pub fn record(&mut self, t: SimTime, queue: f64, busy: f64, load: f64, fwd_p: f64) {
        self.queue.record(t, queue);
        self.busy.record(t, busy);
        self.load.record(t, load);
        self.fwd_p.record(t, fwd_p);
    }

    /// True when no probe ever fired.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn probe_series_bins_by_tick() {
        let mut p = ProbeSeries::new(SimDuration::from_secs(1));
        assert!(p.is_empty());
        p.record(t(100), 0.5, 0.25, 0.1, 0.9);
        p.record(t(200), 0.7, 0.75, 0.3, 0.7);
        assert!((p.queue.bins()[0].mean() - 0.6).abs() < 1e-12);
        assert!((p.busy.bins()[0].mean() - 0.5).abs() < 1e-12);
        assert!((p.load.bins()[0].mean() - 0.2).abs() < 1e-12);
        assert!((p.fwd_p.bins()[0].mean() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn binning_and_means() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(t(100), 2.0);
        s.record(t(900), 4.0);
        s.record(t(1_500), 10.0);
        s.record(t(3_100), 1.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.bins()[0], Bin { count: 2, sum: 6.0 });
        assert!((s.bins()[0].mean() - 3.0).abs() < 1e-12);
        assert!((s.bins()[1].mean() - 10.0).abs() < 1e-12);
        assert_eq!(s.bins()[2].mean(), 0.0); // empty gap bin
        let means: Vec<(SimTime, f64)> = s.means().collect();
        assert_eq!(means[3], (t(3_000), 1.0));
    }

    #[test]
    fn rates() {
        let mut s = TimeSeries::new(SimDuration::from_millis(500));
        for i in 0..10 {
            s.mark(t(i * 100)); // 10 events in the first second
        }
        let rates: Vec<f64> = s.rates().map(|(_, r)| r).collect();
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 10.0).abs() < 1e-12); // 5 events / 0.5 s
        assert!((rates[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new(SimDuration::from_secs(1));
        assert!(s.is_empty());
        assert_eq!(s.means().count(), 0);
    }

    #[test]
    fn boundary_lands_in_upper_bin() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(t(1_000), 5.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bins()[0].count, 0);
        assert_eq!(s.bins()[1].count, 1);
    }

    #[test]
    #[should_panic(expected = "zero bin width")]
    fn zero_width_rejected() {
        TimeSeries::new(SimDuration::ZERO);
    }
}
