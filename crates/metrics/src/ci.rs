//! Confidence intervals over replicated runs.

use crate::welford::Welford;

/// Two-sided Student-t critical values at 95 % confidence, indexed by
/// degrees of freedom (1-based). Beyond the table the normal quantile is
/// used.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// 95 % t critical value for `df` degrees of freedom.
pub fn t_critical_95(df: u64) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T_95[(df - 1) as usize]
    } else {
        1.960
    }
}

/// A mean with its 95 % confidence half-width.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanCi {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the 95 % interval (0 for < 2 samples with zero var).
    pub half_width: f64,
    /// Replications.
    pub n: u64,
}

impl MeanCi {
    /// Compute from an accumulator of per-replication values.
    pub fn from_welford(w: &Welford) -> Self {
        let hw = if w.count() < 2 {
            0.0
        } else {
            t_critical_95(w.count() - 1) * w.std_err()
        };
        MeanCi {
            mean: w.mean(),
            half_width: hw,
            n: w.count(),
        }
    }

    /// Compute directly from samples.
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut w = Welford::new();
        for &x in xs {
            w.add(x);
        }
        MeanCi::from_welford(&w)
    }

    /// `mean ± hw` as a display string with the given precision.
    pub fn display(&self, precision: usize) -> String {
        format!("{:.p$} ±{:.p$}", self.mean, self.half_width, p = precision)
    }

    /// Whether `other`'s interval overlaps ours (a quick significance
    /// screen for "who wins" claims).
    pub fn overlaps(&self, other: &MeanCi) -> bool {
        (self.mean - other.mean).abs() <= self.half_width + other.half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_entries() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(9) - 2.262).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.960).abs() < 1e-9);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn ci_from_known_samples() {
        // 10 samples, mean 5, sd ≈ 1: hw = 2.262 · 1/√10.
        let xs: Vec<f64> = vec![4.0, 5.0, 6.0, 5.0, 4.5, 5.5, 5.0, 4.0, 6.0, 5.0];
        let ci = MeanCi::from_samples(&xs);
        assert!((ci.mean - 5.0).abs() < 1e-12);
        assert!(
            ci.half_width > 0.3 && ci.half_width < 0.8,
            "hw {}",
            ci.half_width
        );
        assert_eq!(ci.n, 10);
    }

    #[test]
    fn single_sample_has_zero_hw() {
        let ci = MeanCi::from_samples(&[3.0]);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.mean, 3.0);
    }

    #[test]
    fn overlap_detection() {
        let a = MeanCi {
            mean: 1.0,
            half_width: 0.2,
            n: 5,
        };
        let b = MeanCi {
            mean: 1.3,
            half_width: 0.2,
            n: 5,
        };
        let c = MeanCi {
            mean: 2.0,
            half_width: 0.2,
            n: 5,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn display_format() {
        let ci = MeanCi {
            mean: 0.91234,
            half_width: 0.0123,
            n: 10,
        };
        assert_eq!(ci.display(2), "0.91 ±0.01");
    }
}
