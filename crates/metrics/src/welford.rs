//! Streaming mean/variance (Welford's algorithm).

/// Online mean/variance accumulator, numerically stable.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest sample (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator (parallel aggregation).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Welford::new();
        a.add(1.0);
        let b = Welford::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }
}
