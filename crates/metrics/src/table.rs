//! Result-table rendering (markdown and CSV).
//!
//! The bench harness prints each reconstructed figure as rows of a table;
//! this keeps the output diff-able and directly pasteable into
//! EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned results table.
#[derive(Clone, Debug)]
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (title as a `#` comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let escape = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(escape)
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(escape).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a float with sensible width for tables.
pub fn fmt_f(x: f64, precision: usize) -> String {
    format!("{x:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new("Fig. 1", &["scheme", "pdr"]);
        t.add_row(vec!["flooding".into(), "0.82".into()]);
        t.add_row(vec!["cnlr".into(), "0.93".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.contains("### Fig. 1"));
        assert!(md.contains("| scheme"));
        assert!(md.contains("| cnlr"));
        let lines: Vec<&str> = md.lines().collect();
        // title, blank, header, separator, 2 rows
        assert_eq!(lines.len(), 6);
        assert!(lines[3].starts_with("|--"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = ResultTable::new("T", &["a", "b"]);
        t.add_row(vec!["x,y".into(), "q\"uote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"uote\""));
        assert!(csv.starts_with("# T\n"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = ResultTable::new("T", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(0.91637, 3), "0.916");
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
    }
}
