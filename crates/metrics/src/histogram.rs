//! Fixed-memory log-scaled histogram for latency-like quantities.

/// A base-2 logarithmic histogram with linear sub-buckets: 2 % relative
/// error on quantiles across twelve decades, in a few KiB.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// `buckets[major][minor]`; major = exponent, minor = linear subdivision.
    counts: Vec<[u64; SUBBUCKETS]>,
    underflow: u64,
    total: u64,
    /// Smallest representable value (values below count as underflow).
    floor: f64,
}

const SUBBUCKETS: usize = 16;
const MAJORS: usize = 40;

impl LogHistogram {
    /// Histogram covering `[floor, floor·2⁴⁰)`.
    pub fn new(floor: f64) -> Self {
        assert!(floor > 0.0 && floor.is_finite());
        LogHistogram {
            counts: vec![[0; SUBBUCKETS]; MAJORS],
            underflow: 0,
            total: 0,
            floor,
        }
    }

    /// Suitable default for second-denominated delays: 1 µs floor.
    pub fn for_delays() -> Self {
        LogHistogram::new(1e-6)
    }

    fn index_of(&self, x: f64) -> Option<(usize, usize)> {
        if x < self.floor {
            return None;
        }
        let ratio = x / self.floor;
        let major = ratio.log2().floor() as usize;
        let major = major.min(MAJORS - 1);
        let base = self.floor * (1u64 << major) as f64;
        let minor = (((x - base) / base) * SUBBUCKETS as f64) as usize;
        Some((major, minor.min(SUBBUCKETS - 1)))
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite() && x >= 0.0, "bad sample {x}");
        self.total += 1;
        match self.index_of(x) {
            None => self.underflow += 1,
            Some((maj, min)) => self.counts[maj][min] += 1,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q ∈ [0, 1]` (returns 0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return self.floor;
        }
        for maj in 0..MAJORS {
            for min in 0..SUBBUCKETS {
                seen += self.counts[maj][min];
                if seen >= target {
                    let base = self.floor * (1u64 << maj) as f64;
                    // Bucket midpoint.
                    return base * (1.0 + (min as f64 + 0.5) / SUBBUCKETS as f64);
                }
            }
        }
        self.floor * (1u64 << (MAJORS - 1)) as f64 * 2.0
    }

    /// Merge another histogram with identical parameters.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.floor, other.floor, "incompatible histograms");
        self.underflow += other.underflow;
        self.total += other.total;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LogHistogram::for_delays();
        // 1..=10000 ms.
        for i in 1..=10_000u64 {
            h.record(i as f64 * 1e-3);
        }
        assert_eq!(h.count(), 10_000);
        for (q, expect) in [(0.5, 5.0), (0.95, 9.5), (0.99, 9.9)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q{q}: got {got}, want {expect}");
        }
    }

    #[test]
    fn empty_quantile_zero() {
        let h = LogHistogram::for_delays();
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn underflow_maps_to_floor() {
        let mut h = LogHistogram::new(1.0);
        h.record(0.001);
        h.record(0.5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), 1.0);
    }

    #[test]
    fn merge_matches_union() {
        let mut a = LogHistogram::for_delays();
        let mut b = LogHistogram::for_delays();
        let mut whole = LogHistogram::for_delays();
        for i in 1..=1000u64 {
            let x = i as f64 * 1e-4;
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.9] {
            assert!((a.quantile(q) - whole.quantile(q)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_incompatible_panics() {
        let mut a = LogHistogram::new(1.0);
        let b = LogHistogram::new(2.0);
        a.merge(&b);
    }

    #[test]
    fn extreme_values_clamp() {
        let mut h = LogHistogram::for_delays();
        h.record(1e30); // far beyond range — clamps into the top bucket
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > 1e5);
    }
}
