//! Ablation benchmarks of CNLR's design choices (DESIGN.md §3):
//! queue-only vs busy-only vs combined digests, own-load-only vs 1-hop
//! aggregation, and the probability floor. Each variant runs the same small
//! saturated scenario; the reported measure is wall time, while the printed
//! PDR (via `eprintln` once per config) documents the quality effect —
//! the full quality ablation lives in the fig8/tab2 harness bins.

use cnlr::{CnlrConfig, Scheme};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn run_variant(cfg: CnlrConfig) -> cnlr::RunResults {
    cnlr::ScenarioBuilder::new()
        .seed(11)
        .grid(6, 6, 180.0)
        .scheme(Scheme::Cnlr(cfg))
        .flows(12, 6.0, 512)
        .duration(wmn_sim::SimDuration::from_secs(12))
        .warmup(wmn_sim::SimDuration::from_secs(3))
        .build()
        .expect("build")
        .run()
}

fn run_with_mac(mac: wmn_mac::MacParams) -> cnlr::RunResults {
    cnlr::ScenarioBuilder::new()
        .seed(11)
        .grid(6, 6, 180.0)
        .scheme(Scheme::Cnlr(CnlrConfig::default()))
        .mac(mac)
        .flows(12, 6.0, 512)
        .duration(wmn_sim::SimDuration::from_secs(12))
        .warmup(wmn_sim::SimDuration::from_secs(3))
        .build()
        .expect("build")
        .run()
}

fn bench_rts(c: &mut Criterion) {
    let mut g = c.benchmark_group("mac_ablation");
    g.sample_size(10);
    let variants: Vec<(&str, wmn_mac::MacParams)> = vec![
        ("rts_off", Default::default()),
        (
            "rts_all_unicast",
            wmn_mac::MacParams {
                rts_threshold: Some(0),
                ..Default::default()
            },
        ),
        (
            "control_priority",
            wmn_mac::MacParams {
                control_priority: true,
                ..Default::default()
            },
        ),
    ];
    for (name, mac) in variants {
        let probe = run_with_mac(mac.clone());
        eprintln!(
            "[mac:{name}] pdr={:.3} collisions={} rts_sent={} disc={:.2}",
            probe.pdr(),
            probe.medium.collisions,
            probe.mac.rts_sent,
            probe.discovery_success,
        );
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_with_mac(mac.clone()).events))
        });
    }
    g.finish();
}

fn run_with_routing(routing: wmn_routing::RoutingConfig) -> cnlr::RunResults {
    cnlr::ScenarioBuilder::new()
        .seed(11)
        .grid(6, 6, 180.0)
        .scheme(Scheme::Cnlr(CnlrConfig::default()))
        .routing(routing)
        .flows(12, 6.0, 512)
        .duration(wmn_sim::SimDuration::from_secs(12))
        .warmup(wmn_sim::SimDuration::from_secs(3))
        .build()
        .expect("build")
        .run()
}

fn bench_expanding_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_ablation");
    g.sample_size(10);
    for (name, ring) in [("full_ttl", false), ("expanding_ring", true)] {
        let routing = wmn_routing::RoutingConfig {
            expanding_ring: ring,
            ..Default::default()
        };
        let probe = run_with_routing(routing.clone());
        eprintln!(
            "[ring:{name}] pdr={:.3} rreq_tx={} disc={:.2}",
            probe.pdr(),
            probe.rreq_tx,
            probe.discovery_success
        );
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_with_routing(routing.clone()).events))
        });
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let variants: Vec<(&str, CnlrConfig)> = vec![
        ("combined", CnlrConfig::default()),
        (
            "queue_only",
            CnlrConfig {
                w_busy: 0.0,
                ..CnlrConfig::default()
            },
        ),
        (
            "busy_only",
            CnlrConfig {
                w_queue: 0.0,
                ..CnlrConfig::default()
            },
        ),
        (
            "own_load_only",
            CnlrConfig {
                w_self: 1.0,
                ..CnlrConfig::default()
            },
        ),
        (
            "neighbours_only",
            CnlrConfig {
                w_self: 0.0,
                ..CnlrConfig::default()
            },
        ),
        (
            "high_floor",
            CnlrConfig {
                p_min: 0.6,
                ..CnlrConfig::default()
            },
        ),
        (
            "density_corrected",
            CnlrConfig {
                density_gamma: 0.5,
                ..CnlrConfig::default()
            },
        ),
    ];
    let mut g = c.benchmark_group("cnlr_ablation");
    g.sample_size(10);
    for (name, cfg) in variants {
        let probe = run_variant(cfg);
        eprintln!(
            "[ablation:{name}] pdr={:.3} rreq/disc={:.1} jain={:.3}",
            probe.pdr(),
            probe.rreq_tx_per_discovery,
            probe.jain_forwarding
        );
        g.bench_function(name, |b| b.iter(|| black_box(run_variant(cfg).events)));
    }
    g.finish();
}

criterion_group!(benches, bench_ablations, bench_rts, bench_expanding_ring);
criterion_main!(benches);
