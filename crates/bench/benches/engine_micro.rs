//! Microbenchmarks of the simulator's hot paths: the future-event list,
//! the RNG, the path-loss/PER physics, and a full small scenario
//! (events/second of the integrated stack).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wmn_radio::{PathLoss, PhyParams, Rate};
use wmn_sim::{EventQueue, SimRng, SimTime};
use wmn_topology::{Region, SpatialIndex, Vec2};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<SimTime> = (0..10_000).map(|_| SimTime(rng.below(1 << 40))).collect();
        b.iter_batched(
            || times.clone(),
            |times| {
                let mut q = EventQueue::with_capacity(10_000);
                for (i, t) in times.into_iter().enumerate() {
                    q.schedule(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/f64_x1k", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += rng.f64();
            }
            black_box(acc)
        })
    });
}

fn bench_physics(c: &mut Criterion) {
    let phy = PhyParams::classic_802_11b();
    c.bench_function("radio/rx_power_x1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1_000u32 {
                acc += phy.rx_power_dbm(i as f64, 0, i);
            }
            black_box(acc)
        })
    });
    c.bench_function("radio/per_x1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1_000u32 {
                let sinr = i as f64 * 0.01;
                acc += Rate::Dqpsk2Mbps.per(sinr, 4096);
            }
            black_box(acc)
        })
    });
    c.bench_function("radio/two_ray_loss_x1k", |b| {
        let m = PathLoss::default_two_ray();
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1_000u32 {
                acc += m.loss_db(i as f64);
            }
            black_box(acc)
        })
    });
}

/// `query_radius` on a 1k-node field at backbone density, for both a
/// grid-ordered layout (ids correlate with space: the append fast path) and
/// a shuffled one (ids arrive out of order: the insertion path). The sorted
/// buckets make both return ascending ids without a final sort.
fn bench_spatial(c: &mut Criterion) {
    let side = 32usize; // 1024 nodes
    let pitch = 180.0;
    let extent = side as f64 * pitch;
    let region = Region::new(extent, extent);
    let grid: Vec<Vec2> = (0..side * side)
        .map(|i| Vec2::new((i % side) as f64 * pitch, (i / side) as f64 * pitch))
        .collect();
    let mut shuffled = grid.clone();
    // Deterministic Fisher-Yates: decorrelate id from position.
    let mut rng = SimRng::new(7);
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let radius = 575.0; // interference range + slack, the medium's query

    let mut g = c.benchmark_group("spatial");
    for (name, positions) in [
        ("query_radius_1k_grid_ids", &grid),
        ("query_radius_1k_shuffled_ids", &shuffled),
    ] {
        let idx = SpatialIndex::new(region, radius / 2.0, positions);
        g.bench_function(name, |b| {
            let mut out = Vec::with_capacity(128);
            b.iter(|| {
                let mut total = 0usize;
                for i in (0..positions.len()).step_by(37) {
                    idx.query_radius(positions[i], radius, i, &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

fn bench_full_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("small_5x5_10s", |b| {
        b.iter(|| {
            let r = cnlr::ScenarioBuilder::new()
                .seed(3)
                .grid(5, 5, 180.0)
                .flows(4, 2.0, 512)
                .duration(wmn_sim::SimDuration::from_secs(10))
                .warmup(wmn_sim::SimDuration::from_secs(2))
                .build()
                .expect("build")
                .run();
            black_box(r.events)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_physics,
    bench_spatial,
    bench_full_scenario
);
criterion_main!(benches);
