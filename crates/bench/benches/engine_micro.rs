//! Microbenchmarks of the simulator's hot paths: the future-event list,
//! the RNG, the path-loss/PER physics, and a full small scenario
//! (events/second of the integrated stack).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wmn_radio::{PathLoss, PhyParams, Rate};
use wmn_sim::{EventQueue, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<SimTime> = (0..10_000).map(|_| SimTime(rng.below(1 << 40))).collect();
        b.iter_batched(
            || times.clone(),
            |times| {
                let mut q = EventQueue::with_capacity(10_000);
                for (i, t) in times.into_iter().enumerate() {
                    q.schedule(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/f64_x1k", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += rng.f64();
            }
            black_box(acc)
        })
    });
}

fn bench_physics(c: &mut Criterion) {
    let phy = PhyParams::classic_802_11b();
    c.bench_function("radio/rx_power_x1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1_000u32 {
                acc += phy.rx_power_dbm(i as f64, 0, i);
            }
            black_box(acc)
        })
    });
    c.bench_function("radio/per_x1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1_000u32 {
                let sinr = i as f64 * 0.01;
                acc += Rate::Dqpsk2Mbps.per(sinr, 4096);
            }
            black_box(acc)
        })
    });
    c.bench_function("radio/two_ray_loss_x1k", |b| {
        let m = PathLoss::default_two_ray();
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1_000u32 {
                acc += m.loss_db(i as f64);
            }
            black_box(acc)
        })
    });
}

fn bench_full_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("small_5x5_10s", |b| {
        b.iter(|| {
            let r = cnlr::ScenarioBuilder::new()
                .seed(3)
                .grid(5, 5, 180.0)
                .flows(4, 2.0, 512)
                .duration(wmn_sim::SimDuration::from_secs(10))
                .warmup(wmn_sim::SimDuration::from_secs(2))
                .build()
                .expect("build")
                .run();
            black_box(r.events)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_physics,
    bench_full_scenario
);
criterion_main!(benches);
