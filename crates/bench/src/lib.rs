//! `wmn-bench` — the experiment harness.
//!
//! One binary per reconstructed table/figure (see DESIGN.md §3). Each binary
//! sweeps its x-axis over every scheme, replicates over seeds, prints the
//! figure as a markdown table (mean ±95 % CI) and writes a CSV under
//! `results/`. `QUICK=1` in the environment shrinks seeds/durations for CI.

use cnlr::{RunResults, ScenarioBuilder, Scheme};
use wmn_metrics::{run_jobs, run_replications, seeds_from, MeanCi, ResultTable};
use wmn_telemetry::{git_rev, Counters, RunManifest};

pub mod served;

/// Metadata of one reconstructed figure.
#[derive(Clone, Copy, Debug)]
pub struct FigureSpec {
    /// Identifier (`fig1`, `tab2`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// x-axis label.
    pub x_label: &'static str,
}

/// Whether quick mode (fewer seeds, shorter runs) is requested.
pub fn quick_mode() -> bool {
    std::env::var("QUICK")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// Replication seeds for the current mode.
pub fn replication_seeds() -> Vec<u64> {
    seeds_from(0xC41B, if quick_mode() { 2 } else { 5 })
}

/// Run one `(x, scheme)` cell: replicate over seeds and aggregate `metric`.
pub fn run_cell<F, M>(x: f64, scheme: &Scheme, build: &F, metric: &M) -> MeanCi
where
    F: Fn(f64, &Scheme, u64) -> ScenarioBuilder + Sync,
    M: Fn(&RunResults) -> f64 + Sync,
{
    let seeds = replication_seeds();
    let threads = wmn_metrics::default_threads();
    let values = run_replications(&seeds, threads, |seed| {
        let results = build(x, scheme, seed)
            .build()
            .unwrap_or_else(|e| panic!("scenario build failed at x={x}: {e}"))
            .run();
        metric(&results)
    });
    MeanCi::from_samples(&values)
}

/// A named metric extractor.
pub type Metric<'a> = (&'a str, &'a (dyn Fn(&RunResults) -> f64 + Sync));

/// Decompose a flattened sweep job index into `(x, scheme, seed)` indices.
/// Seed is the fastest-varying axis so one cell's replications stay
/// contiguous in the result vector.
pub(crate) fn job_coords(i: usize, n_schemes: usize, n_seeds: usize) -> (usize, usize, usize) {
    let (cell, si) = (i / n_seeds, i % n_seeds);
    (cell / n_schemes, cell % n_schemes, si)
}

/// Append a JSONL benchmark record to the file named by `$BENCH_JSON`
/// (no-op when the variable is unset). The bench harness concatenates these
/// lines into the dated `BENCH_*.json` snapshot at the repo root.
pub fn record_bench(kind: &str, name: &str, wall_s: f64, jobs: usize) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = writeln!(
                f,
                "{{\"kind\":\"{kind}\",\"name\":\"{name}\",\"wall_s\":{wall_s:.3},\
                 \"jobs\":{jobs},\"threads\":{},\"quick\":{}}}",
                wmn_metrics::default_threads(),
                quick_mode(),
            );
        }
        Err(e) => eprintln!("warning: could not append to {path}: {e}"),
    }
}

/// Sweep a full figure once, extracting several metrics from the same runs:
/// one [`ResultTable`] per metric, rows = x values, one column per scheme.
///
/// The whole sweep is flattened into a single `(x, scheme, seed)` job queue
/// so the thread pool stays saturated across cell boundaries (replication
/// counts are small relative to core counts, so a per-cell pool spends most
/// of its time waiting on the slowest seed). Results come back in job-index
/// order, which keeps the aggregation — and therefore every table — exactly
/// as deterministic as the nested-loop version.
pub fn sweep_figure_multi<F>(
    spec: &FigureSpec,
    metrics: &[Metric<'_>],
    xs: &[f64],
    schemes: &[Scheme],
    build: F,
) -> Vec<ResultTable>
where
    F: Fn(f64, &Scheme, u64) -> ScenarioBuilder + Sync,
{
    let t0 = std::time::Instant::now();
    let mut headers: Vec<String> = vec![spec.x_label.to_string()];
    headers.extend(schemes.iter().map(Scheme::label));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut tables: Vec<ResultTable> = metrics
        .iter()
        .map(|(name, _)| {
            ResultTable::new(
                format!("{} — {} ({name})", spec.id, spec.title),
                &header_refs,
            )
        })
        .collect();
    let seeds = replication_seeds();
    let threads = wmn_metrics::default_threads();
    let n_jobs = xs.len() * schemes.len() * seeds.len();
    eprintln!("[{}] {} jobs on {} threads", spec.id, n_jobs, threads);
    let runs = run_jobs(n_jobs, threads, |i| {
        let (xi, schi, si) = job_coords(i, schemes.len(), seeds.len());
        let (x, scheme, seed) = (xs[xi], &schemes[schi], seeds[si]);
        build(x, scheme, seed)
            .build()
            .unwrap_or_else(|e| panic!("scenario build failed at x={x}: {e}"))
            .run()
    });
    for (xi, &x) in xs.iter().enumerate() {
        let mut rows: Vec<Vec<String>> = metrics.iter().map(|_| vec![format!("{x}")]).collect();
        for schi in 0..schemes.len() {
            let base = (xi * schemes.len() + schi) * seeds.len();
            let cell = &runs[base..base + seeds.len()];
            for (mi, (_, metric)) in metrics.iter().enumerate() {
                let values: Vec<f64> = cell.iter().map(metric).collect();
                rows[mi].push(MeanCi::from_samples(&values).display(3));
            }
        }
        for (table, row) in tables.iter_mut().zip(rows) {
            table.add_row(row);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    record_bench("sweep", spec.id, wall_s, n_jobs);
    write_manifest(spec, schemes, &seeds, xs, wall_s, &runs, &[]);
    tables
}

/// Aggregate the per-run counter registries and attach a provenance
/// manifest to the figure's `results/` output (`<id>_manifest.json`).
/// `extra_params` lets a binary record figure-specific knobs on top of the
/// standard duration/quick/thread set.
pub fn write_manifest(
    spec: &FigureSpec,
    schemes: &[Scheme],
    seeds: &[u64],
    xs: &[f64],
    wall_s: f64,
    runs: &[RunResults],
    extra_params: &[(&str, String)],
) {
    let mut counters = Counters::new();
    let mut events = 0u64;
    for r in runs {
        for (name, v) in r.counters().iter() {
            counters.add(name, v);
        }
        events += r.events;
    }
    let (dur, warm) = sweep_durations();
    let mut params = vec![
        ("x_label".to_string(), spec.x_label.to_string()),
        ("duration_s".to_string(), format!("{}", dur.as_secs_f64())),
        ("warmup_s".to_string(), format!("{}", warm.as_secs_f64())),
        ("quick".to_string(), quick_mode().to_string()),
        (
            "threads".to_string(),
            wmn_metrics::default_threads().to_string(),
        ),
        ("replications".to_string(), seeds.len().to_string()),
        ("runs".to_string(), runs.len().to_string()),
    ];
    params.extend(extra_params.iter().map(|(k, v)| (k.to_string(), v.clone())));
    let host = wmn_telemetry::sample_host();
    let manifest = RunManifest {
        id: spec.id.to_string(),
        title: spec.title.to_string(),
        git_rev: git_rev(),
        schemes: schemes.iter().map(Scheme::label).collect(),
        seeds: seeds.to_vec(),
        xs: xs.to_vec(),
        params,
        wall_s,
        events_processed: events,
        host_cores: host.host_cores,
        peak_rss_bytes: host.peak_rss_bytes,
        counters,
        lineage: vec![],
    };
    match manifest.write(std::path::Path::new("results")) {
        Ok(path) => eprintln!("[{}] wrote {}", spec.id, path.display()),
        Err(e) => eprintln!("warning: could not write {} manifest: {e}", spec.id),
    }
}

/// Single-metric convenience wrapper over [`sweep_figure_multi`].
pub fn sweep_figure<F, M>(
    spec: &FigureSpec,
    metric_name: &str,
    xs: &[f64],
    schemes: &[Scheme],
    build: F,
    metric: M,
) -> ResultTable
where
    F: Fn(f64, &Scheme, u64) -> ScenarioBuilder + Sync,
    M: Fn(&RunResults) -> f64 + Sync,
{
    sweep_figure_multi(spec, &[(metric_name, &metric)], xs, schemes, build)
        .pop()
        .expect("one table")
}

/// Print a table and persist it under `results/<id>[_suffix].csv`.
pub fn emit(spec: &FigureSpec, suffix: &str, table: &ResultTable) {
    println!("{}", table.to_markdown());
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let name = if suffix.is_empty() {
        format!("{}.csv", spec.id)
    } else {
        format!("{}_{}.csv", spec.id, suffix)
    };
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[{}] wrote {}", spec.id, path.display());
    }
}

/// The standard scheme set.
pub fn standard_schemes() -> Vec<Scheme> {
    Scheme::evaluation_set()
}

/// Strict argv parsing for the figure binaries: the only accepted flags
/// are `--served SOCKET` (route the sweep through a `wmn-served` daemon)
/// and `--help`. Anything else exits 2 with usage — a silently ignored
/// flag would run the wrong experiment and report success.
pub fn parse_fig_args(bin: &str) -> Option<String> {
    let mut served = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--served" => match args.next() {
                Some(socket) => served = Some(socket),
                None => {
                    eprintln!("error: --served requires a socket path");
                    eprintln!("usage: {bin} [--served SOCKET]");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: {bin} [--served SOCKET]\n\
                     \n\
                     --served SOCKET  submit the sweep to a wmn-served daemon instead of\n\
                     \u{20}                running in-process (CSV output is byte-identical)\n\
                     \n\
                     env: QUICK=1 shrinks seeds/durations; WMN_THREADS caps parallelism"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument '{other}' for {bin}");
                eprintln!("usage: {bin} [--served SOCKET]");
                std::process::exit(2);
            }
        }
    }
    served
}

/// Run duration knobs shared by the figure binaries:
/// `(duration, warmup)`.
pub fn sweep_durations() -> (wmn_sim::SimDuration, wmn_sim::SimDuration) {
    if quick_mode() {
        (
            wmn_sim::SimDuration::from_secs(20),
            wmn_sim::SimDuration::from_secs(5),
        )
    } else {
        (
            wmn_sim::SimDuration::from_secs(60),
            wmn_sim::SimDuration::from_secs(10),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = replication_seeds();
        let b = replication_seeds();
        assert_eq!(a, b);
        let mut c = a.clone();
        c.sort_unstable();
        c.dedup();
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn durations_ordered() {
        let (d, w) = sweep_durations();
        assert!(d > w);
    }

    #[test]
    fn job_coords_cover_the_sweep_in_order() {
        // 3 x-values × 2 schemes × 5 seeds: the flattened index must walk
        // seeds fastest, then schemes, then x — exactly the nested-loop
        // order the aggregation slices assume.
        let (nx, nsch, nseed) = (3, 2, 5);
        let mut expect = Vec::new();
        for xi in 0..nx {
            for schi in 0..nsch {
                for si in 0..nseed {
                    expect.push((xi, schi, si));
                }
            }
        }
        let got: Vec<_> = (0..nx * nsch * nseed)
            .map(|i| job_coords(i, nsch, nseed))
            .collect();
        assert_eq!(got, expect);
    }
}
