//! Fig. 4 — end-to-end delay vs offered load.
//!
//! Same sweep as Fig. 3; mean and p95 delay. Expected shape: near-zero load
//! all schemes sit at a few ms (flooding marginally lowest — its redundant
//! RREQs are harmless and find shortest paths); under load the ordering
//! inverts and CNLR's queues stay shortest.

use wmn_bench::{emit, standard_schemes, sweep_durations, sweep_figure_multi, FigureSpec};

fn main() {
    let spec = FigureSpec {
        id: "fig4",
        title: "End-to-end delay vs offered load",
        x_label: "flows",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 30.0, 40.0, 50.0]
    };
    let schemes = standard_schemes();
    let build = move |flows: f64, scheme: &cnlr::Scheme, seed: u64| {
        cnlr::presets::backbone(8, 0, seed)
            .scheme(scheme.clone())
            .flows(flows as usize, 8.0, 512)
            .duration(dur)
            .warmup(warm)
    };
    let tables = sweep_figure_multi(
        &spec,
        &[
            ("mean delay (ms)", &|r: &cnlr::RunResults| r.mean_delay_ms()),
            ("p95 delay (ms)", &|r: &cnlr::RunResults| {
                r.summary.p95_delay_s * 1000.0
            }),
        ],
        &xs,
        &schemes,
        build,
    );
    emit(&spec, "", &tables[0]);
    emit(&spec, "p95", &tables[1]);
}
