//! Fig. 3 — packet delivery ratio vs offered load.
//!
//! 8×8 backbone, 8 pkt/s × 512 B CBR flows, flow count swept 5–40.
//! Expected shape: all schemes ≈ 1 at light load; CNLR degrades latest and
//! leads at saturation (it discovers through, and routes around, quiet
//! regions); flooding and counter collapse together (both storm-limited).

use wmn_bench::{emit, standard_schemes, sweep_durations, sweep_figure, FigureSpec};

fn main() {
    let spec = FigureSpec {
        id: "fig3",
        title: "Packet delivery ratio vs offered load",
        x_label: "flows",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 30.0, 40.0, 50.0]
    };
    let schemes = standard_schemes();
    let build = move |flows: f64, scheme: &cnlr::Scheme, seed: u64| {
        cnlr::presets::backbone(8, 0, seed)
            .scheme(scheme.clone())
            .flows(flows as usize, 8.0, 512)
            .duration(dur)
            .warmup(warm)
    };
    let t = sweep_figure(&spec, "PDR", &xs, &schemes, build, |r| r.pdr());
    emit(&spec, "", &t);
}
