//! Fig. 3 — packet delivery ratio vs offered load.
//!
//! 8×8 backbone, 8 pkt/s × 512 B CBR flows, flow count swept 5–40.
//! Expected shape: all schemes ≈ 1 at light load; CNLR degrades latest and
//! leads at saturation (it discovers through, and routes around, quiet
//! regions); flooding and counter collapse together (both storm-limited).
//!
//! `--served SOCKET` submits the sweep to a running `wmn-served` daemon
//! instead; the emitted CSV is byte-identical (the CI smoke job diffs it).

use wmn_bench::{
    emit, parse_fig_args, standard_schemes, sweep_durations, sweep_figure, FigureSpec,
};
use wmn_served::ScenarioSpec;

fn main() {
    let served = parse_fig_args("fig3_pdr_load");
    let spec = FigureSpec {
        id: "fig3",
        title: "Packet delivery ratio vs offered load",
        x_label: "flows",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 30.0, 40.0, 50.0]
    };
    let schemes = standard_schemes();
    let t = if let Some(socket) = served {
        let build = move |flows: f64, scheme: &cnlr::Scheme, seed: u64| ScenarioSpec {
            seed,
            scheme: scheme.spec_string(),
            grid_rows: 8,
            grid_cols: 8,
            pitch_m: 180.0,
            flows: flows as usize,
            pps: 8.0,
            payload: 512,
            duration_s: dur.as_secs_f64(),
            warmup_s: warm.as_secs_f64(),
            ..ScenarioSpec::default()
        };
        wmn_bench::served::sweep_figure_multi_served(
            &spec,
            &[("PDR", "pdr")],
            &xs,
            &schemes,
            &socket,
            build,
        )
        .pop()
        .expect("one table")
    } else {
        let build = move |flows: f64, scheme: &cnlr::Scheme, seed: u64| {
            cnlr::presets::backbone(8, 0, seed)
                .scheme(scheme.clone())
                .flows(flows as usize, 8.0, 512)
                .duration(dur)
                .warmup(warm)
        };
        sweep_figure(&spec, "PDR", &xs, &schemes, build, |r| r.pdr())
    };
    emit(&spec, "", &t);
}
