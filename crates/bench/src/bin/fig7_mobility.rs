//! Fig. 7 — mobile-client scenario vs maximum client speed.
//!
//! 6×6 static backbone plus 15 random-waypoint clients whose top speed is
//! swept 0–20 m/s. Compares flooding, CNLR, and the velocity-aware
//! VAP-CNLR. Expected shape: all schemes degrade with speed; VAP-CNLR
//! retains the highest PDR at speed (it excludes about-to-break links) at a
//! small overhead premium over CNLR.

use cnlr::{CnlrConfig, Scheme, VapConfig};
use wmn_bench::{emit, sweep_durations, sweep_figure_multi, FigureSpec};
use wmn_mobility::MobilityConfig;

fn main() {
    let spec = FigureSpec {
        id: "fig7",
        title: "Mobile clients: PDR vs max speed",
        x_label: "speed_mps",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![0.0, 20.0]
    } else {
        vec![0.0, 5.0, 10.0, 15.0, 20.0]
    };
    let schemes = vec![
        Scheme::Flooding,
        Scheme::Cnlr(CnlrConfig::default()),
        Scheme::VapCnlr(CnlrConfig::default(), VapConfig::default()),
    ];
    let build = move |speed: f64, scheme: &Scheme, seed: u64| {
        let clients = 15;
        let mobility = if speed <= 0.0 {
            MobilityConfig::Static
        } else {
            MobilityConfig::RandomWaypoint {
                v_min: 1.0,
                v_max: speed,
                pause_s: 2.0,
            }
        };
        cnlr::ScenarioBuilder::new()
            .seed(seed)
            .grid(6, 6, 180.0)
            .scheme(scheme.clone())
            .mobile_clients(clients, mobility)
            .flows(15, 4.0, 512)
            .duration(dur)
            .warmup(warm)
    };
    let tables = sweep_figure_multi(
        &spec,
        &[
            ("PDR", &|r: &cnlr::RunResults| r.pdr()),
            ("RREQ tx per discovery", &|r: &cnlr::RunResults| {
                r.rreq_tx_per_discovery
            }),
            // Link-cache effectiveness under mobility (the scenario the
            // neighbourhood-sharded invalidation scheme targets).
            ("link cache hit rate", &|r: &cnlr::RunResults| {
                r.medium.link_cache_hits as f64 / r.medium.tx_started.max(1) as f64
            }),
            ("link budget reuse rate", &|r: &cnlr::RunResults| {
                1.0 - r.medium.pathloss_evals as f64 / r.medium.link_budgets.max(1) as f64
            }),
        ],
        &xs,
        &schemes,
        build,
    );
    emit(&spec, "", &tables[0]);
    emit(&spec, "overhead", &tables[1]);
    emit(&spec, "cache", &tables[2]);
    emit(&spec, "reuse", &tables[3]);
}
