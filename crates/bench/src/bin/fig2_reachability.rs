//! Fig. 2 — discovery success vs network density.
//!
//! 8×8 grid with the pitch swept from dense (150 m) to marginal (240 m).
//! Expected shape: all schemes succeed when dense; fixed-p gossip decays
//! first as the network thins; CNLR's probability floor keeps it near
//! flooding.

use wmn_bench::{emit, standard_schemes, sweep_durations, sweep_figure_multi, FigureSpec};

fn main() {
    let spec = FigureSpec {
        id: "fig2",
        title: "Discovery success vs density (grid pitch)",
        x_label: "pitch_m",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![180.0, 230.0]
    } else {
        vec![150.0, 180.0, 200.0, 215.0, 230.0]
    };
    let schemes = standard_schemes();
    let build = |pitch: f64, scheme: &cnlr::Scheme, seed: u64| {
        cnlr::ScenarioBuilder::new()
            .seed(seed)
            .grid(8, 8, pitch)
            .scheme(scheme.clone())
            .flows(10, 2.0, 512)
            .duration(dur)
            .warmup(warm)
    };
    let tables = sweep_figure_multi(
        &spec,
        &[
            ("discovery success ratio", &|r: &cnlr::RunResults| {
                r.discovery_success
            }),
            ("packet delivery ratio", &|r: &cnlr::RunResults| r.pdr()),
        ],
        &xs,
        &schemes,
        build,
    );
    emit(&spec, "", &tables[0]);
    emit(&spec, "pdr", &tables[1]);
}
