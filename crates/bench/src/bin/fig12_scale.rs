//! Fig. 12 — the scale path: wall-clock and medium-cache behaviour as the
//! network grows from 100 to 10 000 routers at constant density.
//!
//! Sweeps N over the scale presets (grid placement for flooding/CNLR, plus
//! a uniform-random CNLR column) and reports, per scheme:
//! wall-clock seconds, engine events per second, pathloss evaluations per
//! transmission, the transmission-level link-cache hit rate, and the
//! budget-level reuse rate. Sweep cells run in parallel (bounded by
//! `WMN_THREADS`), but each cell's wall-clock is measured around its own
//! `sim.run()` inside the job, so the per-run numbers stay honest; results
//! are aggregated in job order, so tables and CSVs are identical to the
//! sequential version at `WMN_THREADS=1`.
//!
//! `QUICK=1` shrinks the sweep to {100, 1000} nodes and short runs (the CI
//! smoke job); the full sweep covers {100, 400, 1000, 4000, 10000}.

use cnlr::{presets, CnlrConfig, RunResults, Scheme};
use wmn_bench::{emit, quick_mode, record_bench, replication_seeds, write_manifest, FigureSpec};
use wmn_metrics::{run_jobs, ResultTable};
use wmn_sim::SimDuration;

struct Column {
    label: &'static str,
    scheme: Scheme,
    random_placement: bool,
}

fn main() {
    let spec = FigureSpec {
        id: "fig12",
        title: "Scale sweep: wall-clock and cache behaviour vs network size",
        x_label: "nodes",
    };
    let xs: Vec<f64> = if quick_mode() {
        vec![100.0, 1000.0]
    } else {
        vec![100.0, 400.0, 1000.0, 4000.0, 10000.0]
    };
    // Short horizons: the figure measures throughput of the simulator, not
    // steady-state protocol behaviour, and 10k nodes at 60 s would dominate
    // the whole bench suite.
    let (dur, warm) = if quick_mode() {
        (SimDuration::from_secs(10), SimDuration::from_secs(2))
    } else {
        (SimDuration::from_secs(20), SimDuration::from_secs(5))
    };
    let columns = [
        Column {
            label: "flooding",
            scheme: Scheme::Flooding,
            random_placement: false,
        },
        Column {
            label: "cnlr",
            scheme: Scheme::Cnlr(CnlrConfig::default()),
            random_placement: false,
        },
        Column {
            label: "cnlr-random",
            scheme: Scheme::Cnlr(CnlrConfig::default()),
            random_placement: true,
        },
    ];
    let seed = replication_seeds()[0];

    type Metric = (&'static str, &'static str, fn(&RunResults, f64) -> f64);
    let metrics: [Metric; 6] = [
        ("wall-clock s", "", |_, wall| wall),
        ("events per second", "events", |r, wall| {
            r.events as f64 / wall.max(1e-9)
        }),
        ("pathloss evals per tx", "evals", |r, _| {
            r.medium.pathloss_evals as f64 / r.medium.tx_started.max(1) as f64
        }),
        ("link cache hit rate", "cache", |r, _| {
            r.medium.link_cache_hits as f64 / r.medium.tx_started.max(1) as f64
        }),
        ("link budget reuse rate", "reuse", |r, _| {
            1.0 - r.medium.pathloss_evals as f64 / r.medium.link_budgets.max(1) as f64
        }),
        ("PDR", "pdr", |r, _| r.pdr()),
    ];

    let mut headers: Vec<&str> = vec![spec.x_label];
    headers.extend(columns.iter().map(|c| c.label));
    let mut tables: Vec<ResultTable> = metrics
        .iter()
        .map(|(name, _, _)| {
            ResultTable::new(format!("{} — {} ({name})", spec.id, spec.title), &headers)
        })
        .collect();

    let t0 = std::time::Instant::now();
    // One job per (n, column) cell, executed by the shared pool. The
    // closure measures wall-clock around its own run, so per-run numbers
    // are honest even when cells co-run; `run_jobs` returns results in job
    // order, so the aggregation below is byte-identical to a serial sweep.
    let n_cells = xs.len() * columns.len();
    let threads = wmn_metrics::default_threads().min(n_cells);
    eprintln!("[fig12] {n_cells} cells on {threads} threads");
    let cell_results: Vec<(RunResults, f64)> = run_jobs(n_cells, threads, |i| {
        let (xi, ci) = (i / columns.len(), i % columns.len());
        let n = xs[xi] as usize;
        // Offered load scales with the network: one flow per ~40 routers.
        let flows = (n / 40).max(5);
        let col = &columns[ci];
        let builder = if col.random_placement {
            presets::scale_random(n, flows, seed)
        } else {
            presets::scale_grid(n, flows, seed)
        };
        let sim = builder
            .scheme(col.scheme.clone())
            .duration(dur)
            .warmup(warm)
            .build()
            .unwrap_or_else(|e| panic!("scale scenario build failed at n={n}: {e}"));
        let run_t0 = std::time::Instant::now();
        let r = sim.run();
        let wall = run_t0.elapsed().as_secs_f64();
        eprintln!(
            "[fig12] n={n} {}: {:.2}s wall, {:.0} ev/s, {:.2} evals/tx, hit {:.3}, reuse {:.3}",
            col.label,
            wall,
            r.events as f64 / wall.max(1e-9),
            r.medium.pathloss_evals as f64 / r.medium.tx_started.max(1) as f64,
            r.medium.link_cache_hits as f64 / r.medium.tx_started.max(1) as f64,
            1.0 - r.medium.pathloss_evals as f64 / r.medium.link_budgets.max(1) as f64,
        );
        (r, wall)
    });
    // Load-imbalance across the cell pool: the honest per-cell walls are
    // the profiling signal here (cell-parallelism has no epoch barriers,
    // so barrier-wait share is not applicable to this figure).
    let cell_walls: Vec<f64> = cell_results.iter().map(|(_, w)| *w).collect();
    let wall_max = cell_walls.iter().cloned().fold(0.0f64, f64::max);
    let wall_mean = cell_walls.iter().sum::<f64>() / cell_walls.len().max(1) as f64;
    let mut runs: Vec<RunResults> = Vec::new();
    let mut cells = cell_results.into_iter();
    for &x in &xs {
        let n = x as usize;
        let mut rows: Vec<Vec<String>> = metrics.iter().map(|_| vec![format!("{n}")]).collect();
        for _ in &columns {
            let (r, wall) = cells.next().expect("one result per cell");
            for (mi, (_, _, f)) in metrics.iter().enumerate() {
                rows[mi].push(format!("{:.4}", f(&r, wall)));
            }
            runs.push(r);
        }
        for (table, row) in tables.iter_mut().zip(rows) {
            table.add_row(row);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let n_jobs = xs.len() * columns.len();
    record_bench("sweep", spec.id, wall_s, n_jobs);

    let schemes = vec![Scheme::Flooding, Scheme::Cnlr(CnlrConfig::default())];
    write_manifest(
        &spec,
        &schemes,
        &[seed],
        &xs,
        wall_s,
        &runs,
        &[
            ("placements", "grid, grid, uniform-random".to_string()),
            ("fig12_duration_s", format!("{}", dur.as_secs_f64())),
            ("fig12_warmup_s", format!("{}", warm.as_secs_f64())),
            ("cell_threads", threads.to_string()),
            (
                "cell_wall_imbalance",
                format!("{:.3}", wall_max / wall_mean.max(1e-9)),
            ),
            ("barrier_wait_share", "n/a (cell-parallel)".to_string()),
        ],
    );
    for ((_, suffix, _), table) in metrics.iter().zip(&tables) {
        emit(&spec, suffix, table);
    }
}
