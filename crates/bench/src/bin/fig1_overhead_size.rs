//! Fig. 1 — routing overhead vs network size.
//!
//! RREQ transmissions per discovery for 25–196-router grids at constant
//! density (180 m pitch). Expected shape: flooding grows ≈ N; gossip ≈ p·N;
//! CNLR between p_min·N and p_max·N depending on load, always below
//! flooding.

use wmn_bench::{emit, standard_schemes, sweep_durations, sweep_figure_multi, FigureSpec};

fn main() {
    let spec = FigureSpec {
        id: "fig1",
        title: "Routing overhead vs network size",
        x_label: "nodes",
    };
    let (dur, warm) = sweep_durations();
    let sides: Vec<f64> = if wmn_bench::quick_mode() {
        vec![5.0, 8.0]
    } else {
        vec![5.0, 7.0, 8.0, 10.0, 12.0, 14.0]
    };
    let xs: Vec<f64> = sides.iter().map(|s| s * s).collect();
    let schemes = standard_schemes();

    let build = |x: f64, scheme: &cnlr::Scheme, seed: u64| {
        let side = (x as usize).isqrt();
        cnlr::presets::backbone(side, 15, seed)
            .scheme(scheme.clone())
            .duration(dur)
            .warmup(warm)
    };
    let tables = sweep_figure_multi(
        &spec,
        &[
            ("RREQ tx per discovery", &|r: &cnlr::RunResults| {
                r.rreq_tx_per_discovery
            }),
            ("saved-rebroadcast ratio", &|r: &cnlr::RunResults| {
                r.saved_rebroadcast
            }),
        ],
        &xs,
        &schemes,
        build,
    );
    emit(&spec, "", &tables[0]);
    emit(&spec, "srb", &tables[1]);
}
