//! Fig. 5 — aggregate goodput vs offered load.
//!
//! Same sweep as Fig. 3. Expected shape: goodput tracks offered load until
//! the contention knee, then CNLR sustains the highest plateau.

use wmn_bench::{emit, standard_schemes, sweep_durations, sweep_figure, FigureSpec};

fn main() {
    let spec = FigureSpec {
        id: "fig5",
        title: "Aggregate goodput vs offered load",
        x_label: "flows",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 30.0, 40.0, 50.0]
    };
    let schemes = standard_schemes();
    let build = move |flows: f64, scheme: &cnlr::Scheme, seed: u64| {
        cnlr::presets::backbone(8, 0, seed)
            .scheme(scheme.clone())
            .flows(flows as usize, 8.0, 512)
            .duration(dur)
            .warmup(warm)
    };
    let t = sweep_figure(&spec, "goodput (kb/s)", &xs, &schemes, build, |r| {
        r.goodput_kbps
    });
    emit(&spec, "", &t);
}
