//! Fig. 14 — million-node ParMesh: wall-clock, peak RSS, and event volume
//! at {100k, 300k, 1M} routers.
//!
//! The scale story of the memory-lean ParMesh layout (flat SoA statics,
//! CSR adjacency, dense per-region loads, pre-sized queues) plus the
//! work-stealing scheduler. A merged telemetry trace cannot fit at this
//! size, so every run streams events into per-region `HashSink`
//! fingerprints instead; the figure *asserts* that the fingerprint — and
//! the full report — is bit-identical across worker counts and steal
//! schedules at the largest scale, which is the engine's determinism
//! guarantee measured at a million nodes, not just claimed.
//!
//! Peak RSS is read from `VmHWM` (a process-wide high-water mark, so it is
//! monotonic): scales run in ascending node order, making the value
//! sampled after each scale that scale's true peak. The manifest records
//! per-scale RSS budgets the CI smoke job holds future revisions to.
//!
//! `QUICK=1` shrinks to 20k nodes × {1, 2} threads for the CI smoke job.

use cnlr::parmesh::ParMesh;
use wmn_bench::{emit, quick_mode, record_bench, FigureSpec};
use wmn_metrics::ResultTable;
use wmn_sim::SimDuration;
use wmn_telemetry::{git_rev, Counters, RunManifest};

fn main() {
    let spec = FigureSpec {
        id: "fig14",
        title: "Million-node ParMesh: wall-clock, peak RSS, events",
        x_label: "threads",
    };
    let (node_counts, threads, duration): (Vec<usize>, Vec<usize>, SimDuration) = if quick_mode() {
        (vec![20_000], vec![1, 2], SimDuration::from_secs(2))
    } else {
        (
            vec![100_000, 300_000, 1_000_000],
            vec![1, 2],
            SimDuration::from_secs(3),
        )
    };
    let seed = 1u64;
    let largest = *node_counts.last().expect("at least one scale");
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut headers: Vec<String> = vec![spec.x_label.to_string()];
    headers.extend(node_counts.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut wall_table = ResultTable::new(
        format!("{} — {} (wall-clock s, steal on)", spec.id, spec.title),
        &header_refs,
    );
    let mut rate_table = ResultTable::new(
        format!("{} — {} (events per second)", spec.id, spec.title),
        &header_refs,
    );
    let mut rss_table = ResultTable::new(
        format!("{} — {} (peak RSS MiB after scale)", spec.id, spec.title),
        &["nodes", "peak_rss_mib", "events", "regions"],
    );
    let mut steal_table = ResultTable::new(
        format!("{} — {} (scheduler decisions)", spec.id, spec.title),
        &["nodes", "moved_per_epoch", "post_steal_imbalance"],
    );

    let t0 = std::time::Instant::now();
    let mut params: Vec<(String, String)> = vec![
        ("host_cores".to_string(), host_cores.to_string()),
        (
            "duration_s".to_string(),
            format!("{}", duration.as_secs_f64()),
        ),
        ("quick".to_string(), quick_mode().to_string()),
    ];
    let mut walls: Vec<Vec<f64>> = vec![Vec::new(); node_counts.len()];
    let mut events_at: Vec<u64> = vec![0; node_counts.len()];
    let mut total_events = 0u64;
    for (ni, &n) in node_counts.iter().enumerate() {
        let flows = (n / 20).max(1);
        // Baseline: 1 thread, stealing on; every other cell must match it.
        let mut baseline: Option<(cnlr::ParMeshOutcome, String)> = None;
        // Steal-off runs only at the largest scale: they exist to prove the
        // fingerprint ignores the steal schedule, not to sweep wall-clock.
        let mut cells: Vec<(usize, bool)> = threads.iter().map(|&t| (t, true)).collect();
        if n == largest {
            cells.extend(threads.iter().map(|&t| (t, false)));
        }
        for (t, steal) in cells {
            let run_t0 = std::time::Instant::now();
            let out = ParMesh::new(n)
                .seed(seed)
                .flows(flows)
                .duration(duration)
                .threads(t)
                .steal(steal)
                .trace_hash(true)
                .profile(true)
                .run();
            let wall = run_t0.elapsed().as_secs_f64();
            let r = &out.report;
            let events = r.events;
            let profile = out.profile.as_ref().expect("profiling enabled");
            let (fp_count, fp) = out.trace_fp.expect("trace_hash enabled");
            eprintln!(
                "[fig14] n={n} threads={t} steal={steal}: {:.2}s wall, {:.0} ev/s, \
                 pdr {:.3}, {} regions, {} epochs, fp {fp_count}/{fp:016x}, \
                 {:.1} moved/epoch, post-steal imbalance {:.2}",
                wall,
                r.events as f64 / wall.max(1e-9),
                r.pdr(),
                r.regions,
                r.epochs,
                profile.regions_moved_per_epoch(),
                profile.post_steal_imbalance(),
            );
            match &baseline {
                None => {
                    let sim_fp = profile.sim_fingerprint();
                    baseline = Some((out, sim_fp));
                }
                Some((base, base_sim_fp)) => {
                    let b = &base.report;
                    assert_eq!(
                        (b.originated, b.delivered, b.forwards, b.events, b.epochs),
                        (r.originated, r.delivered, r.forwards, r.events, r.epochs),
                        "results changed at n={n} threads={t} steal={steal}"
                    );
                    assert_eq!(
                        base.trace_fp,
                        Some((fp_count, fp)),
                        "trace fingerprint changed at n={n} threads={t} steal={steal}"
                    );
                    assert_eq!(
                        base_sim_fp.as_str(),
                        profile.sim_fingerprint(),
                        "profile sim fields changed at n={n} threads={t} steal={steal}"
                    );
                    if t == 2 && steal {
                        steal_table.add_row(vec![
                            format!("{n}"),
                            format!("{:.2}", profile.regions_moved_per_epoch()),
                            format!("{:.3}", profile.post_steal_imbalance()),
                        ]);
                    }
                }
            }
            if steal {
                walls[ni].push(wall);
            }
            total_events += events;
            record_bench(
                "million",
                &format!("{}_n{}_t{}_steal_{}", spec.id, n, t, steal),
                wall,
                1,
            );
        }
        let (base, _) = baseline.as_ref().expect("at least one run per scale");
        let r = &base.report;
        events_at[ni] = r.events;
        let (fp_count, fp) = base.trace_fp.expect("trace_hash enabled");
        // Ascending scales: VmHWM right after this scale is its true peak.
        let rss_mib = wmn_telemetry::sample_host().peak_rss_bytes as f64 / (1024.0 * 1024.0);
        rss_table.add_row(vec![
            format!("{n}"),
            format!("{rss_mib:.1}"),
            format!("{}", r.events),
            format!("{}", r.regions),
        ]);
        params.push((format!("pdr_n{n}"), format!("{:.4}", r.pdr())));
        params.push((format!("events_n{n}"), r.events.to_string()));
        params.push((format!("regions_n{n}"), r.regions.to_string()));
        params.push((format!("peak_rss_mib_n{n}"), format!("{rss_mib:.1}")));
        params.push((format!("trace_fp_n{n}"), format!("{fp_count}/{fp:016x}")));
    }

    for (ti, &t) in threads.iter().enumerate() {
        let mut wall_row = vec![format!("{t}")];
        let mut rate_row = vec![format!("{t}")];
        for (ni, _) in node_counts.iter().enumerate() {
            let wall = walls[ni][ti];
            wall_row.push(format!("{wall:.3}"));
            rate_row.push(format!("{:.0}", events_at[ni] as f64 / wall.max(1e-9)));
        }
        wall_table.add_row(wall_row);
        rate_table.add_row(rate_row);
    }

    let wall_s = t0.elapsed().as_secs_f64();
    record_bench("sweep", spec.id, wall_s, node_counts.len() * threads.len());
    let host = wmn_telemetry::sample_host();
    let manifest = RunManifest {
        id: spec.id.to_string(),
        title: spec.title.to_string(),
        git_rev: git_rev(),
        schemes: vec!["parmesh".to_string()],
        seeds: vec![seed],
        xs: threads.iter().map(|&t| t as f64).collect(),
        params,
        wall_s,
        events_processed: total_events,
        host_cores: host.host_cores,
        peak_rss_bytes: host.peak_rss_bytes,
        counters: Counters::new(),
        lineage: vec![],
    };
    match manifest.write(std::path::Path::new("results")) {
        Ok(path) => eprintln!("[{}] wrote {}", spec.id, path.display()),
        Err(e) => eprintln!("warning: could not write {} manifest: {e}", spec.id),
    }
    emit(&spec, "", &wall_table);
    emit(&spec, "events", &rate_table);
    emit(&spec, "rss", &rss_table);
    emit(&spec, "steal", &steal_table);
}
