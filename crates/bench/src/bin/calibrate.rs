//! CNLR calibration probe (not part of the figure set): PDR/delay at the
//! congestion knee for candidate cost/probability configurations.

use cnlr::{presets, CnlrConfig, Scheme};
use wmn_metrics::{run_replications, seeds_from, MeanCi};
use wmn_sim::SimDuration;

fn main() {
    let variants: Vec<(&str, Scheme)> = vec![
        ("flooding", Scheme::Flooding),
        ("cnlr b2.0", Scheme::Cnlr(CnlrConfig::default())),
        (
            "cnlr b1.0",
            Scheme::Cnlr(CnlrConfig {
                beta_load: 1.0,
                ..CnlrConfig::default()
            }),
        ),
        (
            "cnlr b0.5",
            Scheme::Cnlr(CnlrConfig {
                beta_load: 0.5,
                ..CnlrConfig::default()
            }),
        ),
        (
            "cnlr b1 pmin.45",
            Scheme::Cnlr(CnlrConfig {
                beta_load: 1.0,
                p_min: 0.45,
                ..CnlrConfig::default()
            }),
        ),
    ];
    for flows in [30usize, 40] {
        println!("--- {flows} flows @ 8 pkt/s, 60 s, 5 seeds ---");
        for (name, scheme) in &variants {
            let seeds = seeds_from(0xCA11, 5);
            let runs = run_replications(&seeds, 1, |seed| {
                presets::backbone(8, 0, seed)
                    .scheme(scheme.clone())
                    .flows(flows, 8.0, 512)
                    .duration(SimDuration::from_secs(60))
                    .warmup(SimDuration::from_secs(10))
                    .build()
                    .expect("build")
                    .run()
            });
            let pdr = MeanCi::from_samples(&runs.iter().map(|r| r.pdr()).collect::<Vec<_>>());
            let delay =
                MeanCi::from_samples(&runs.iter().map(|r| r.mean_delay_ms()).collect::<Vec<_>>());
            let rreq = MeanCi::from_samples(
                &runs
                    .iter()
                    .map(|r| r.rreq_tx_per_discovery)
                    .collect::<Vec<_>>(),
            );
            println!(
                "{:<16} pdr={} delay={} rreq/disc={}",
                name,
                pdr.display(3),
                delay.display(0),
                rreq.display(1)
            );
        }
    }
}
