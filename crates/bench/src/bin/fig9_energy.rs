//! Fig. 9 — energy per delivered packet vs offered load (extension).
//!
//! Radio energy under the Feeney–Nilsson WaveLAN model. Broadcast storms
//! burn energy in redundant receptions network-wide; expected shape: CNLR's
//! energy per delivered packet undercuts flooding increasingly with load.

use wmn_bench::{emit, standard_schemes, sweep_durations, sweep_figure_multi, FigureSpec};

fn main() {
    let spec = FigureSpec {
        id: "fig9",
        title: "Energy per delivered packet vs offered load",
        x_label: "flows",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 30.0, 40.0, 50.0]
    };
    let schemes = standard_schemes();
    let build = move |flows: f64, scheme: &cnlr::Scheme, seed: u64| {
        cnlr::presets::backbone(8, 0, seed)
            .scheme(scheme.clone())
            .flows(flows as usize, 8.0, 512)
            .duration(dur)
            .warmup(warm)
    };
    let tables = sweep_figure_multi(
        &spec,
        &[
            (
                "comm energy per delivered pkt (mJ)",
                &|r: &cnlr::RunResults| r.comm_energy_per_delivered_mj,
            ),
            ("max single-node energy (J)", &|r: &cnlr::RunResults| {
                r.energy_max_node_j
            }),
        ],
        &xs,
        &schemes,
        build,
    );
    emit(&spec, "", &tables[0]);
    emit(&spec, "max_node", &tables[1]);
}
