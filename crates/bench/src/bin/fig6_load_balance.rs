//! Fig. 6 — forwarding-load balance vs offered load.
//!
//! Jain's fairness index (higher = more even) and the hotspot factor
//! (max/mean, lower = better) of per-node forwarded-packet counts.
//! Expected shape: CNLR's load-aware route costs spread traffic, so its
//! Jain index dominates and its hotspot factor is lowest as load grows.

use wmn_bench::{emit, standard_schemes, sweep_durations, sweep_figure_multi, FigureSpec};

fn main() {
    let spec = FigureSpec {
        id: "fig6",
        title: "Forwarding-load balance vs offered load",
        x_label: "flows",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 30.0, 40.0, 50.0]
    };
    let schemes = standard_schemes();
    let build = move |flows: f64, scheme: &cnlr::Scheme, seed: u64| {
        cnlr::presets::backbone(8, 0, seed)
            .scheme(scheme.clone())
            .flows(flows as usize, 8.0, 512)
            .duration(dur)
            .warmup(warm)
    };
    let tables = sweep_figure_multi(
        &spec,
        &[
            ("Jain index", &|r: &cnlr::RunResults| r.jain_forwarding),
            ("hotspot factor (max/mean)", &|r: &cnlr::RunResults| {
                r.hotspot
            }),
        ],
        &xs,
        &schemes,
        build,
    );
    emit(&spec, "", &tables[0]);
    emit(&spec, "hotspot", &tables[1]);
}
