//! Fig. 10 — gateway backhaul (extension): structurally concentrated load.
//!
//! All flows converge on the centre gateway of a 7×7 mesh — the canonical
//! WMN deployment. Expected shape: CNLR's load-aware route costs spread the
//! approach paths, giving the lowest hotspot factor and the highest PDR as
//! the gateway region saturates.

use cnlr::routing::{FlowId, NodeId, RoutingConfig};
use cnlr::traffic::{FlowSpec, TrafficPattern};
use wmn_bench::{emit, standard_schemes, sweep_durations, sweep_figure_multi, FigureSpec};
use wmn_sim::SimTime;

fn main() {
    let spec = FigureSpec {
        id: "fig10",
        title: "Gateway backhaul: convergecast to the centre",
        x_label: "sources",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![8.0, 16.0]
    } else {
        vec![4.0, 8.0, 12.0, 16.0, 20.0]
    };
    let schemes = standard_schemes();
    let build = move |sources: f64, scheme: &cnlr::Scheme, seed: u64| {
        let gateway = NodeId(24); // centre of the 7×7 grid
                                  // Sources: the outermost ring, deterministic per count.
        let ring = [
            0u32, 6, 42, 48, 3, 21, 27, 45, 1, 5, 7, 13, 35, 41, 43, 47, 2, 4, 14, 20,
        ];
        let flows: Vec<FlowSpec> = ring
            .iter()
            .take(sources as usize)
            .enumerate()
            .map(|(i, &src)| FlowSpec {
                id: FlowId(i as u32),
                src: NodeId(src),
                dst: gateway,
                payload: 512,
                start: SimTime::from_millis(1000 + 137 * i as u64),
                stop: SimTime::ZERO + dur,
                pattern: TrafficPattern::cbr_pps(10.0),
            })
            .collect();
        cnlr::ScenarioBuilder::new()
            .seed(seed)
            .grid(7, 7, 180.0)
            .scheme(scheme.clone())
            .routing(RoutingConfig::default())
            .explicit_flows(flows)
            .duration(dur)
            .warmup(warm)
    };
    let tables = sweep_figure_multi(
        &spec,
        &[
            ("PDR", &|r: &cnlr::RunResults| r.pdr()),
            ("hotspot factor (max/mean)", &|r: &cnlr::RunResults| {
                r.hotspot
            }),
            ("mean delay (ms)", &|r: &cnlr::RunResults| r.mean_delay_ms()),
        ],
        &xs,
        &schemes,
        build,
    );
    emit(&spec, "", &tables[0]);
    emit(&spec, "hotspot", &tables[1]);
    emit(&spec, "delay", &tables[2]);
}
