//! Fig. 8 — HELLO-interval sensitivity (ablation).
//!
//! CNLR's cross-layer digests ride on HELLO beacons; this sweep shows the
//! staleness/overhead trade-off. Expected shape: PDR is flat-ish with a
//! mild optimum around 1–2 s; very frequent beacons burn airtime, very
//! sparse ones leave the load view stale and link breaks undetected.

use cnlr::{CnlrConfig, Scheme};
use wmn_bench::{emit, sweep_durations, sweep_figure_multi, FigureSpec};
use wmn_routing::RoutingConfig;
use wmn_sim::SimDuration;

fn main() {
    let spec = FigureSpec {
        id: "fig8",
        title: "CNLR HELLO-interval sensitivity",
        x_label: "hello_s",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![1.0, 4.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let schemes = vec![Scheme::Cnlr(CnlrConfig::default())];
    let build = move |hello_s: f64, scheme: &Scheme, seed: u64| {
        let hello = SimDuration::from_secs_f64(hello_s);
        let routing = RoutingConfig {
            hello_interval: hello,
            neighbor_timeout: hello * 3,
            ..RoutingConfig::default()
        };
        cnlr::presets::backbone(8, 0, seed)
            .scheme(scheme.clone())
            .routing(routing)
            .flows(30, 8.0, 512)
            .duration(dur)
            .warmup(warm)
    };
    let tables = sweep_figure_multi(
        &spec,
        &[
            ("PDR", &|r: &cnlr::RunResults| r.pdr()),
            ("control tx (total)", &|r: &cnlr::RunResults| {
                r.control_tx as f64
            }),
        ],
        &xs,
        &schemes,
        build,
    );
    emit(&spec, "", &tables[0]);
    emit(&spec, "control", &tables[1]);
}
