//! Fig. 11 — resilience under node churn.
//!
//! 6×6 backbone where every node crashes and reboots as a Poisson process
//! (exponential MTBF, 10 s mean repair), swept over the per-node churn
//! rate. Compares the full evaluation set on delivery (overall and during
//! outages) and on the recovery metrics the fault subsystem measures:
//! route-repair latency and time-to-reconverge. Expected shape: all
//! schemes lose PDR as churn grows; CNLR's load-adaptive forwarding keeps
//! discovery cheap enough to re-route faster than blind flooding.
//!
//! x = 0 runs fault-free (the byte-identical baseline); its recovery
//! metrics are reported as 0 (there is nothing to recover from).
//!
//! `--served SOCKET` submits the sweep to a running `wmn-served` daemon
//! instead; all four emitted CSVs are byte-identical to the in-process
//! path.

use cnlr::{FaultPlan, RunResults, Scheme};
use wmn_bench::{emit, parse_fig_args, sweep_durations, sweep_figure_multi, FigureSpec};
use wmn_served::ScenarioSpec;
use wmn_sim::SimDuration;

fn main() {
    let served = parse_fig_args("fig11_churn");
    let spec = FigureSpec {
        id: "fig11",
        title: "Node churn: delivery and recovery vs crash rate",
        x_label: "crashes_per_node_min",
    };
    let (dur, warm) = sweep_durations();
    let xs: Vec<f64> = if wmn_bench::quick_mode() {
        vec![0.0, 1.0, 2.0, 4.0]
    } else {
        vec![0.0, 0.5, 1.0, 2.0, 4.0]
    };
    let schemes = Scheme::evaluation_set();
    let tables = if let Some(socket) = served {
        let build = move |rate: f64, scheme: &Scheme, seed: u64| ScenarioSpec {
            seed,
            scheme: scheme.spec_string(),
            grid_rows: 6,
            grid_cols: 6,
            pitch_m: 180.0,
            flows: 12,
            pps: 4.0,
            payload: 512,
            duration_s: dur.as_secs_f64(),
            warmup_s: warm.as_secs_f64(),
            // `rate` crashes per node-minute of uptime ⇒ MTBF = 60/rate.
            churn: (rate > 0.0).then(|| (60.0 / rate, 10.0)),
            ..ScenarioSpec::default()
        };
        wmn_bench::served::sweep_figure_multi_served(
            &spec,
            &[
                ("PDR", "pdr"),
                ("PDR during outages", "pdr_outage"),
                ("route-repair latency s", "repair_latency_s"),
                ("time-to-reconverge s", "reconverge_s"),
            ],
            &xs,
            &schemes,
            &socket,
            build,
        )
    } else {
        let build = move |rate: f64, scheme: &Scheme, seed: u64| {
            let mut b = cnlr::ScenarioBuilder::new()
                .seed(seed)
                .grid(6, 6, 180.0)
                .scheme(scheme.clone())
                .flows(12, 4.0, 512)
                .duration(dur)
                .warmup(warm);
            if rate > 0.0 {
                // `rate` crashes per node-minute of uptime ⇒ MTBF = 60/rate.
                let plan = FaultPlan::new().churn(
                    SimDuration::from_secs_f64(60.0 / rate),
                    SimDuration::from_secs(10),
                );
                b = b.faults(plan);
            }
            b
        };
        sweep_figure_multi(
            &spec,
            &[
                ("PDR", &|r: &RunResults| r.pdr()),
                ("PDR during outages", &|r: &RunResults| {
                    r.pdr_during_outage.unwrap_or(0.0)
                }),
                ("route-repair latency s", &|r: &RunResults| {
                    let l = &r.repair_latency_s;
                    if l.is_empty() {
                        0.0
                    } else {
                        l.iter().sum::<f64>() / l.len() as f64
                    }
                }),
                ("time-to-reconverge s", &|r: &RunResults| {
                    r.reconverge_s.unwrap_or(0.0)
                }),
            ],
            &xs,
            &schemes,
            build,
        )
    };
    emit(&spec, "", &tables[0]);
    emit(&spec, "outage_pdr", &tables[1]);
    emit(&spec, "repair", &tables[2]);
    emit(&spec, "reconverge", &tables[3]);
}
