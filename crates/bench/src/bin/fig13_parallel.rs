//! Fig. 13 — shard-parallel engine: wall-clock vs worker threads.
//!
//! Runs the ParMesh scale model (the region-partitioned world the sharded
//! conservative engine executes) at 10k and 100k routers, sweeping the
//! worker-thread count over {1, 2, 4, 8}. For every cell the binary
//! records the honest wall-clock of that single run and asserts that the
//! results (delivered/forwarded/event counts) are bit-identical to the
//! 1-thread run — the engine's core guarantee.
//!
//! Speedup is a property of the *host*: the manifest records
//! `host_cores`, and on a single-core machine the expected curve is flat
//! (threads only add barrier overhead). The figure is honest either way —
//! it never extrapolates.
//!
//! `QUICK=1` shrinks to 1k nodes × {1, 2} threads for the CI smoke job.

use cnlr::parmesh::{ParMesh, ParMeshReport};
use wmn_bench::{emit, quick_mode, record_bench, FigureSpec};
use wmn_metrics::ResultTable;
use wmn_sim::SimDuration;
use wmn_telemetry::{git_rev, Counters, RunManifest};

fn main() {
    let spec = FigureSpec {
        id: "fig13",
        title: "Shard-parallel engine: wall-clock vs worker threads",
        x_label: "threads",
    };
    let (node_counts, threads, duration): (Vec<usize>, Vec<usize>, SimDuration) = if quick_mode() {
        (vec![1_000], vec![1, 2], SimDuration::from_secs(2))
    } else {
        (
            vec![10_000, 100_000],
            vec![1, 2, 4, 8],
            SimDuration::from_secs(10),
        )
    };
    let seed = 1u64;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut headers: Vec<String> = vec![spec.x_label.to_string()];
    headers.extend(node_counts.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut wall_table = ResultTable::new(
        format!("{} — {} (wall-clock s)", spec.id, spec.title),
        &header_refs,
    );
    let mut speedup_table = ResultTable::new(
        format!("{} — {} (speedup vs 1 thread)", spec.id, spec.title),
        &header_refs,
    );
    let mut rate_table = ResultTable::new(
        format!("{} — {} (events per second)", spec.id, spec.title),
        &header_refs,
    );
    let mut waitshare_table = ResultTable::new(
        format!("{} — {} (barrier-wait share)", spec.id, spec.title),
        &header_refs,
    );

    let t0 = std::time::Instant::now();
    // walls[ni][ti], baselines[ni] = 1-thread report for identity checks.
    let mut walls: Vec<Vec<f64>> = vec![Vec::new(); node_counts.len()];
    let mut wait_shares: Vec<Vec<f64>> = vec![Vec::new(); node_counts.len()];
    let mut baselines: Vec<Option<ParMeshReport>> = vec![None; node_counts.len()];
    let mut fingerprints: Vec<Option<String>> = vec![None; node_counts.len()];
    let mut imbalances: Vec<f64> = vec![0.0; node_counts.len()];
    let mut total_events = 0u64;
    let mut params: Vec<(String, String)> = vec![
        ("host_cores".to_string(), host_cores.to_string()),
        (
            "duration_s".to_string(),
            format!("{}", duration.as_secs_f64()),
        ),
        ("quick".to_string(), quick_mode().to_string()),
    ];
    for (ni, &n) in node_counts.iter().enumerate() {
        for &t in &threads {
            let run_t0 = std::time::Instant::now();
            let out = ParMesh::new(n)
                .seed(seed)
                .duration(duration)
                .threads(t)
                .profile(true)
                .run();
            let wall = run_t0.elapsed().as_secs_f64();
            let r = &out.report;
            let profile = out.profile.as_ref().expect("profiling enabled");
            eprintln!(
                "[fig13] n={n} threads={t}: {:.2}s wall, {:.0} ev/s, pdr {:.3}, \
                 {} regions, {} epochs, {} cross-region, imbalance {:.2}, wait share {:.3}",
                wall,
                r.events as f64 / wall.max(1e-9),
                r.pdr(),
                r.regions,
                r.epochs,
                r.cross_region,
                profile.imbalance_factor(),
                profile.barrier_wait_share(),
            );
            match &baselines[ni] {
                None => {
                    baselines[ni] = Some(r.clone());
                    fingerprints[ni] = Some(profile.sim_fingerprint());
                    imbalances[ni] = profile.imbalance_factor();
                }
                Some(base) => {
                    // The engine's guarantee, enforced in the figure itself.
                    assert_eq!(
                        (base.originated, base.delivered, base.forwards, base.events),
                        (r.originated, r.delivered, r.forwards, r.events),
                        "results changed with thread count at n={n} threads={t}"
                    );
                    // Same for the profile's simulation-derived fields.
                    assert_eq!(
                        fingerprints[ni].as_deref(),
                        Some(profile.sim_fingerprint().as_str()),
                        "profile sim fields changed with thread count at n={n} threads={t}"
                    );
                }
            }
            total_events += r.events;
            walls[ni].push(wall);
            wait_shares[ni].push(profile.barrier_wait_share());
            record_bench("parallel", &format!("{}_n{}_t{}", spec.id, n, t), wall, 1);
        }
        let r = baselines[ni].as_ref().expect("at least one run");
        params.push((format!("pdr_n{n}"), format!("{:.4}", r.pdr())));
        params.push((format!("events_n{n}"), r.events.to_string()));
        params.push((format!("regions_n{n}"), r.regions.to_string()));
        params.push((format!("imbalance_n{n}"), format!("{:.4}", imbalances[ni])));
        let mean_wait = wait_shares[ni].iter().sum::<f64>() / wait_shares[ni].len().max(1) as f64;
        params.push((format!("mean_wait_share_n{n}"), format!("{mean_wait:.4}")));
    }

    for (ti, &t) in threads.iter().enumerate() {
        let mut wall_row = vec![format!("{t}")];
        let mut speedup_row = vec![format!("{t}")];
        let mut rate_row = vec![format!("{t}")];
        let mut waitshare_row = vec![format!("{t}")];
        for (ni, _) in node_counts.iter().enumerate() {
            let wall = walls[ni][ti];
            let events = baselines[ni].as_ref().expect("baseline").events;
            wall_row.push(format!("{wall:.3}"));
            speedup_row.push(format!("{:.3}", walls[ni][0] / wall.max(1e-9)));
            rate_row.push(format!("{:.0}", events as f64 / wall.max(1e-9)));
            waitshare_row.push(format!("{:.3}", wait_shares[ni][ti]));
        }
        wall_table.add_row(wall_row);
        speedup_table.add_row(speedup_row);
        rate_table.add_row(rate_row);
        waitshare_table.add_row(waitshare_row);
    }

    let wall_s = t0.elapsed().as_secs_f64();
    record_bench("sweep", spec.id, wall_s, node_counts.len() * threads.len());
    let host = wmn_telemetry::sample_host();
    let manifest = RunManifest {
        id: spec.id.to_string(),
        title: spec.title.to_string(),
        git_rev: git_rev(),
        schemes: vec!["parmesh".to_string()],
        seeds: vec![seed],
        xs: threads.iter().map(|&t| t as f64).collect(),
        params,
        wall_s,
        events_processed: total_events,
        host_cores: host.host_cores,
        peak_rss_bytes: host.peak_rss_bytes,
        counters: Counters::new(),
        lineage: vec![],
    };
    match manifest.write(std::path::Path::new("results")) {
        Ok(path) => eprintln!("[{}] wrote {}", spec.id, path.display()),
        Err(e) => eprintln!("warning: could not write {} manifest: {e}", spec.id),
    }
    emit(&spec, "", &wall_table);
    emit(&spec, "speedup", &speedup_table);
    emit(&spec, "events", &rate_table);
    emit(&spec, "waitshare", &waitshare_table);
}
