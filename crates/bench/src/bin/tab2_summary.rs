//! Tab. 2 — full-metric summary at the reference operating point
//! (8×8 backbone, 30 flows @ 8 pkt/s — just past the contention knee).

use cnlr::Scheme;
use wmn_bench::{quick_mode, replication_seeds, sweep_durations};
use wmn_metrics::{run_replications, MeanCi, ResultTable};

fn main() {
    let (dur, warm) = sweep_durations();
    let flows = if quick_mode() { 15 } else { 30 };
    let mut table = ResultTable::new(
        "tab2 — Summary at the reference point (8×8, 30 flows @ 8 pkt/s)",
        &[
            "scheme",
            "PDR",
            "delay_ms",
            "goodput_kbps",
            "rreq/disc",
            "SRB",
            "NRL",
            "Jain",
            "disc_success",
        ],
    );
    for scheme in Scheme::evaluation_set() {
        let seeds = replication_seeds();
        let runs = run_replications(&seeds, wmn_metrics::default_threads(), |seed| {
            cnlr::presets::backbone(8, 0, seed)
                .scheme(scheme.clone())
                .flows(flows, 8.0, 512)
                .duration(dur)
                .warmup(warm)
                .build()
                .expect("build")
                .run()
        });
        let col = |f: &dyn Fn(&cnlr::RunResults) -> f64| {
            MeanCi::from_samples(&runs.iter().map(|r| f(r)).collect::<Vec<_>>()).display(3)
        };
        table.add_row(vec![
            scheme.label(),
            col(&|r| r.pdr()),
            col(&|r| r.mean_delay_ms()),
            col(&|r| r.goodput_kbps),
            col(&|r| r.rreq_tx_per_discovery),
            col(&|r| r.saved_rebroadcast),
            col(&|r| r.normalized_routing_load),
            col(&|r| r.jain_forwarding),
            col(&|r| r.discovery_success),
        ]);
        eprintln!("[tab2] {} done", scheme.label());
    }
    println!("{}", table.to_markdown());
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/tab2.csv", table.to_csv());
}
